"""Smoke tests: every shipped example runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

#: Examples that run large workloads (minutes, not seconds).
_SLOW_EXAMPLES = {"typed_optimization"}

_EXAMPLE_PARAMS = [
    pytest.param(p, marks=pytest.mark.slow) if p.stem in _SLOW_EXAMPLES
    else p
    for p in EXAMPLES
]


@pytest.mark.parametrize(
    "script", _EXAMPLE_PARAMS, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should print their results"


def test_quickstart_shows_paper_answers():
    script = next(p for p in EXAMPLES if p.stem == "quickstart")
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "newyork" in completed.stdout
    assert "uniSQL" in completed.stdout
    assert "ben" in completed.stdout
