"""Tests for the exception taxonomy and failure injection."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_xsql_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.XsqlError), name

    def test_schema_errors(self):
        assert issubclass(errors.CyclicHierarchyError, errors.SchemaError)
        assert issubclass(errors.UnknownClassError, errors.SchemaError)
        assert issubclass(errors.SignatureError, errors.SchemaError)

    def test_typing_errors(self):
        assert issubclass(errors.IllTypedQueryError, errors.TypingError)
        assert issubclass(errors.InapplicableMethodError, errors.TypingError)
        assert issubclass(errors.ValueTypeError, errors.TypingError)

    def test_query_errors(self):
        assert issubclass(errors.IllDefinedQueryError, errors.QueryError)
        assert issubclass(errors.UnsafeQueryError, errors.QueryError)

    def test_view_errors(self):
        assert issubclass(errors.NonUpdatableViewError, errors.ViewError)


class TestSyntaxErrorPositions:
    def test_position_embedded_in_message(self):
        error = errors.XsqlSyntaxError("boom", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7

    def test_position_optional(self):
        error = errors.XsqlSyntaxError("boom")
        assert str(error) == "boom"


class TestFailureInjection:
    """End-to-end: each failure mode surfaces as its declared exception."""

    def test_cycle(self):
        from repro.datamodel import ObjectStore
        from repro.oid import Atom

        store = ObjectStore()
        store.declare_class("A")
        store.declare_class("B", ["A"])
        with pytest.raises(errors.CyclicHierarchyError):
            store.hierarchy.add_edge(Atom("A"), Atom("B"))

    def test_parse_error_has_position(self):
        from repro.xsql.parser import parse_query

        with pytest.raises(errors.XsqlSyntaxError) as excinfo:
            parse_query("SELECT X FROM\nWHERE")
        assert excinfo.value.line == 2

    def test_one_failed_statement_leaves_session_usable(self, paper_session):
        with pytest.raises(errors.XsqlSyntaxError):
            paper_session.execute("SELECT FROM WHERE")
        result = paper_session.query("SELECT X FROM Company X")
        assert len(result) == 2

    def test_ill_defined_creation_partial_state_documented(
        self, paper_session
    ):
        # The run-time error of §4.1 aborts the statement; objects created
        # before the conflict was detected may remain (no transactions in
        # the paper's model) but the session keeps working.
        with pytest.raises(errors.IllDefinedQueryError):
            paper_session.execute(
                "SELECT CompName = X.Name, EmpSalary = W.Salary "
                "FROM Company X OID FUNCTION OF X "
                "WHERE X.Divisions.Employees[W]"
            )
        assert len(paper_session.query("SELECT X FROM Company X")) == 2
