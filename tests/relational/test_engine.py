"""Tests for the relational database and the Figure 1 mirror (§1)."""

import pytest

from repro.errors import RelationalError
from repro.relational import RelationalDatabase, mirror_figure1, project, select


class TestRelationalDatabase:
    def test_create_insert_query(self):
        db = RelationalDatabase()
        db.create("t", ["a", "b"])
        db.insert("t", (1, 2))
        db.insert_many("t", [(3, 4), (1, 2)])
        assert len(db.table("t")) == 2

    def test_duplicate_table_rejected(self):
        db = RelationalDatabase()
        db.create("t", ["a"])
        with pytest.raises(RelationalError):
            db.create("t", ["a"])

    def test_missing_table(self):
        db = RelationalDatabase()
        with pytest.raises(RelationalError):
            db.table("nope")
        assert "nope" not in db


class TestFigure1Mirror:
    def test_engine_type_becomes_data(self, shared_paper_session):
        # The §1 contrast: IS-A position flattened into a column.
        db = mirror_figure1(shared_paper_session.store)
        installed = project(db.table("vehicles"), ["engine_type"])
        assert {row[0] for row in installed} == {
            "TurboEngine",
            "DieselEngine",
            "FourStrokeEngine",
            "TwoStrokeEngine",
        }

    def test_engine_catalog_covers_schema(self, shared_paper_session):
        db = mirror_figure1(shared_paper_session.store)
        catalog = {row[0] for row in db.table("engine_catalog")}
        assert catalog == {
            "TurboEngine",
            "DieselEngine",
            "FourStrokeEngine",
            "TwoStrokeEngine",
        }

    def test_people_mirrored_with_employee_flag(self, shared_paper_session):
        db = mirror_figure1(shared_paper_session.store)
        employees = select(
            db.table("people"), lambda r: r["is_employee"]
        )
        names = {r[1] for r in employees}
        assert "'John'" not in names  # payloads, not rendered oids
        assert "John" in {r["name"] for r in employees.as_dicts()}

    def test_relational_join_reproduces_xsql_answer(
        self, shared_paper_session
    ):
        """The §3.2 some>-query, spelled relationally: join + filter."""
        from repro.relational import natural_join, rename

        db = mirror_figure1(shared_paper_session.store)
        fam = db.table("fam_members")
        members = rename(
            db.table("people"),
            {
                "pid": "member",
                "name": "mname",
                "age": "mage",
                "city": "mcity",
                "salary": "msalary",
                "is_employee": "memp",
            },
        )
        joined = natural_join(fam, members)
        over20 = select(joined, lambda r: (r["mage"] or 0) > 20)
        relational_answer = {r[0] for r in project(over20, ["pid"])}
        xsql_answer = {
            str(v)
            for v in shared_paper_session.query(
                "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"
            ).single_column()
        }
        assert relational_answer == xsql_answer

    def test_divisions_linkage(self, shared_paper_session):
        db = mirror_figure1(shared_paper_session.store)
        divisions = db.table("divisions")
        assert len(divisions) == 4
        memberships = db.table("division_employees")
        assert len(memberships) == 6
