"""Tests for the relational baseline: relations and algebra laws."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RelationalError
from repro.relational import (
    Relation,
    difference,
    intersection,
    natural_join,
    product,
    project,
    rename,
    select,
    theta_join,
    union,
)


@pytest.fixture
def people() -> Relation:
    return Relation(
        ["pid", "name", "age"],
        [
            ("p1", "Ann", 30),
            ("p2", "Bob", 40),
            ("p3", "Cy", 40),
        ],
    )


@pytest.fixture
def owns() -> Relation:
    return Relation(
        ["pid", "vid"],
        [("p1", "v1"), ("p2", "v2"), ("p2", "v3")],
    )


class TestRelation:
    def test_set_semantics(self):
        r = Relation(["x"], [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_duplicate_columns_rejected(self):
        with pytest.raises(RelationalError):
            Relation(["x", "x"])

    def test_arity_enforced(self):
        with pytest.raises(RelationalError):
            Relation(["x"], [(1, 2)])

    def test_column_values(self, people):
        assert people.column_values("age") == frozenset({30, 40})

    def test_as_dicts(self, people):
        dicts = people.as_dicts()
        assert {"pid": "p1", "name": "Ann", "age": 30} in dicts


class TestOperators:
    def test_select(self, people):
        adults = select(people, lambda row: row["age"] > 35)
        assert len(adults) == 2

    def test_project_eliminates_duplicates(self, people):
        ages = project(people, ["age"])
        assert len(ages) == 2

    def test_rename(self, people):
        renamed = rename(people, {"pid": "person_id"})
        assert "person_id" in renamed.columns
        assert len(renamed) == len(people)

    def test_product_disjointness(self, people, owns):
        with pytest.raises(RelationalError):
            product(people, owns)  # shares pid

    def test_natural_join(self, people, owns):
        joined = natural_join(people, owns)
        assert len(joined) == 3
        assert set(joined.columns) == {"pid", "name", "age", "vid"}

    def test_natural_join_without_shared_is_product(self, people):
        other = Relation(["color"], [("red",), ("blue",)])
        assert len(natural_join(people, other)) == 6

    def test_theta_join(self, people):
        older = theta_join(
            rename(people, {"pid": "a", "name": "an", "age": "aa"}),
            rename(people, {"pid": "b", "name": "bn", "age": "ba"}),
            lambda l, r: l["aa"] > r["ba"],
        )
        assert len(older) == 2  # Bob>Ann, Cy>Ann

    def test_set_operators(self, people):
        forty = select(people, lambda r: r["age"] == 40)
        thirty = select(people, lambda r: r["age"] == 30)
        assert len(union(forty, thirty)) == 3
        assert len(difference(people, forty)) == 1
        assert len(intersection(people, forty)) == 2

    def test_union_schema_checked(self, people, owns):
        with pytest.raises(RelationalError):
            union(people, owns)


rows_strategy = st.frozensets(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12
)


@given(a=rows_strategy, b=rows_strategy, c=rows_strategy)
def test_set_operator_laws(a, b, c):
    """Property: standard algebra laws on union/difference/intersection."""
    cols = ["x", "y"]
    ra, rb, rc = Relation(cols, a), Relation(cols, b), Relation(cols, c)
    assert union(ra, rb) == union(rb, ra)
    assert intersection(ra, rb) == intersection(rb, ra)
    assert union(ra, union(rb, rc)) == union(union(ra, rb), rc)
    # De Morgan-ish: A - (B ∪ C) == (A - B) ∩ (A - C)
    assert difference(ra, union(rb, rc)) == intersection(
        difference(ra, rb), difference(ra, rc)
    )


@given(a=rows_strategy, b=rows_strategy)
def test_join_project_laws(a, b):
    """Property: natural join on identical schemas is intersection."""
    cols = ["x", "y"]
    ra, rb = Relation(cols, a), Relation(cols, b)
    assert natural_join(ra, rb) == intersection(ra, rb)


@given(a=rows_strategy)
def test_project_idempotent(a):
    r = Relation(["x", "y"], a)
    once = project(r, ["x"])
    assert project(once, ["x"]) == once
