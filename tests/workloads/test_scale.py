"""Tests for the scale-population generator (``repro.workloads.scale``).

Determinism, class-mix accounting, Zipf skew sanity, queryability — and
the serialize/restore round-trip contract at 10^4 objects: restored
populations are bit-identical (same payload, same indexes, same
id-function registry, same rebuilt statistics modulo the generation
counter).
"""

import json

import pytest

from repro.datamodel.serialize import store_from_dict, store_to_dict
from repro.errors import XsqlError
from repro.workloads.scale import SCALE_TIERS, ScaleSpec, generate_scaled


class TestSpec:
    def test_counts_sum_to_budget(self):
        for n in (100, 1_000, 10_000):
            counts = ScaleSpec(n_objects=n).counts()
            assert counts.total == n

    def test_counts_embedded_in_as_dict(self):
        spec = ScaleSpec(n_objects=2_000, seed=5)
        payload = spec.as_dict()
        assert payload["counts"]["total"] == 2_000
        assert payload["seed"] == 5

    def test_rejects_bad_specs(self):
        with pytest.raises(XsqlError):
            ScaleSpec(n_objects=5)
        with pytest.raises(XsqlError):
            ScaleSpec(vehicle_share=0.9, company_share=0.2)
        with pytest.raises(XsqlError):
            ScaleSpec(zipf_s=-1.0)

    def test_tiers_are_ordered_powers(self):
        assert list(SCALE_TIERS) == ["1k", "10k", "100k", "1m"]
        assert SCALE_TIERS["1m"] == 1_000_000


class TestDeterminism:
    def test_same_seed_same_store(self):
        a = generate_scaled(ScaleSpec(n_objects=1_000, seed=11))
        b = generate_scaled(ScaleSpec(n_objects=1_000, seed=11))
        payload_a, _ = store_to_dict(a)
        payload_b, _ = store_to_dict(b)
        assert json.dumps(payload_a, sort_keys=True) == json.dumps(
            payload_b, sort_keys=True
        )

    def test_different_seed_different_store(self):
        a = generate_scaled(ScaleSpec(n_objects=1_000, seed=1))
        b = generate_scaled(ScaleSpec(n_objects=1_000, seed=2))
        payload_a, _ = store_to_dict(a)
        payload_b, _ = store_to_dict(b)
        assert payload_a != payload_b


class TestShape:
    def test_population_matches_spec_counts(self):
        spec = ScaleSpec(n_objects=2_000, seed=3)
        counts = spec.counts()
        store = generate_scaled(spec)
        assert len(store.extent("Person")) == counts.people
        assert len(store.extent("Employee")) == counts.employees
        assert len(store.extent("Company")) == counts.companies
        assert len(store.extent("Division")) == counts.divisions
        assert len(store.extent("Automobile")) == counts.vehicles
        assert len(store.extent("Address")) == counts.addresses

    def test_zipf_fanout_is_skewed(self):
        """Rank-1 entities dominate their relations at zipf_s > 1."""
        spec = ScaleSpec(n_objects=4_000, seed=9, zipf_s=1.3)
        store = generate_scaled(spec)
        per_company = [
            sum(
                1
                for vehicle in store.extent("Automobile")
                if store.invoke_scalar(vehicle, "Manufacturer") == company
            )
            for company in sorted(store.extent("Company"), key=str)
        ]
        top = max(per_company)
        mean = sum(per_company) / len(per_company)
        assert top > 2 * mean, per_company
        per_division = sorted(
            (
                len(store.invoke(division, "Employees"))
                for division in store.extent("Division")
            ),
            reverse=True,
        )
        assert per_division[0] > 2 * (
            sum(per_division) / len(per_division)
        ), per_division

    def test_uniform_when_zipf_zero(self):
        spec = ScaleSpec(n_objects=4_000, seed=9, zipf_s=0.0)
        store = generate_scaled(spec)
        per_division = [
            len(store.invoke(division, "Employees"))
            for division in store.extent("Division")
        ]
        mean = sum(per_division) / len(per_division)
        assert max(per_division) < 2 * mean, per_division

    def test_queryable_out_of_the_box(self):
        from repro.xsql.session import Session

        store = generate_scaled(ScaleSpec(n_objects=1_000, seed=4))
        session = Session(store)
        rows = session.query(
            "SELECT X FROM Employee X WHERE X.Salary > 100000"
        ).rows()
        assert rows
        chain = session.query(
            "SELECT Z FROM Employee X "
            "WHERE X.OwnedVehicles.Drivetrain.Engine[Z]"
        ).rows()
        assert chain


class TestRoundTrip:
    def test_round_trip_bit_identical_at_10k(self):
        """serialize → restore → serialize is a fixpoint at 10^4 objects.

        The payload covers objects, classes, signatures, indexes, and
        the id-function registry; statistics are not serialized but
        rebuilt by replaying writes, so their snapshots must agree on
        everything except the (write-order-dependent) generation
        counter.
        """
        spec = ScaleSpec(n_objects=10_000, seed=0)
        store = generate_scaled(spec)
        payload, report = store_to_dict(store)
        assert not report.skipped
        restored = store_from_dict(payload)
        payload_again, _ = store_to_dict(restored)
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            payload_again, sort_keys=True
        )
        # Statistics: rebuilt incrementally on restore; identical
        # estimates modulo the generation counter.
        original_stats = store.statistics.snapshot()
        restored_stats = restored.statistics.snapshot()
        original_stats.pop("generation")
        restored_stats.pop("generation")
        assert original_stats == restored_stats
        # Indexes answer identically after restore.
        assert store.known_objects() == restored.known_objects()
        for cls in ("Person", "Employee", "Automobile", "Division"):
            assert store.extent(cls) == restored.extent(cls)

    def test_restored_store_answers_queries_identically(self):
        from repro.xsql.session import Session

        store = generate_scaled(ScaleSpec(n_objects=1_000, seed=8))
        payload, _ = store_to_dict(store)
        restored = store_from_dict(payload)
        text = (
            "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']"
        )
        assert (
            Session(store).query(text).rows()
            == Session(restored).query(text).rows()
        )
