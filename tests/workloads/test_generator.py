"""Tests for the synthetic workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oid import Atom
from repro.workloads.generator import WorkloadConfig, generate_database


class TestDeterminism:
    def test_same_seed_same_database(self):
        a = generate_database(WorkloadConfig(n_people=30, seed=9))
        b = generate_database(WorkloadConfig(n_people=30, seed=9))
        assert a.known_objects() == b.known_objects()
        for obj in sorted(a.extent("Employee"), key=str):
            assert a.invoke(obj, "Salary") == b.invoke(obj, "Salary")

    def test_different_seed_different_data(self):
        a = generate_database(WorkloadConfig(n_people=30, seed=1))
        b = generate_database(WorkloadConfig(n_people=30, seed=2))
        salaries_a = sorted(
            str(a.invoke_scalar(o, "Salary")) for o in a.extent("Employee")
        )
        salaries_b = sorted(
            str(b.invoke_scalar(o, "Salary")) for o in b.extent("Employee")
        )
        assert salaries_a != salaries_b


class TestShape:
    def test_population_counts(self):
        config = WorkloadConfig(n_people=40, n_companies=3)
        store = generate_database(config)
        assert len(store.extent("Person")) == 40
        assert len(store.extent("Employee")) == config.n_employees
        assert len(store.extent("Company")) == 3
        assert (
            len(store.extent("Division"))
            == 3 * config.divisions_per_company
        )

    def test_structural_links_resolvable(self):
        store = generate_database(WorkloadConfig(n_people=20))
        for company in store.extent("Company"):
            for division in store.invoke(company, "Divisions"):
                manager = store.invoke_scalar(division, "Manager")
                assert manager is not None
                assert store.is_instance(manager, "Employee")

    def test_vehicles_have_full_drivetrains(self):
        store = generate_database(WorkloadConfig(n_people=20))
        for vehicle in store.extent("Automobile"):
            drivetrain = store.invoke_scalar(vehicle, "Drivetrain")
            assert drivetrain is not None
            engine = store.invoke_scalar(drivetrain, "Engine")
            assert engine is not None
            assert store.is_instance(engine, "PistonEngine")

    def test_queryable_out_of_the_box(self):
        from repro.xsql.session import Session

        store = generate_database(WorkloadConfig(n_people=25, seed=4))
        session = Session(store)
        result = session.query(
            "SELECT X FROM Employee X WHERE X.Salary > 100000"
        )
        assert len(result) > 0


@given(
    n_people=st.integers(1, 40),
    n_companies=st.integers(1, 4),
    seed=st.integers(0, 100),
)
@settings(max_examples=15, deadline=None)
def test_generator_never_violates_schema(n_people, n_companies, seed):
    """Property: generated data always respects the Figure 1 signatures.

    The store's arrow check would raise on any scalar/set confusion, so
    successful generation plus a sample of invocations is the invariant.
    """
    store = generate_database(
        WorkloadConfig(n_people=n_people, n_companies=n_companies, seed=seed)
    )
    for person in list(store.extent("Person"))[:5]:
        store.invoke(person, "Age")
        store.invoke(person, "OwnedVehicles")
    assert len(store.extent("Person")) == n_people
