"""A full end-to-end scenario on a fresh domain, driven through XSQL.

Builds a bookstore schema with CREATE CLASS, loads data, then exercises
the whole feature surface in one coherent story: path queries, schema
browsing, aggregates, a view, a query-defined method, an update method,
relations, typing analysis, and the typed evaluator — the workflow a
downstream user of the library would actually run.
"""

import pytest

from repro import Session
from repro.oid import Atom, FuncOid, Value
from repro.typing import TypedEvaluator, analyze
from repro.xsql.parser import parse_query


@pytest.fixture
def bookstore() -> Session:
    session = Session()
    session.execute_script(
        """
        CREATE CLASS Author SIGNATURE Name = String, BornIn = Numeral;
        CREATE CLASS Book SIGNATURE Title = String, Price = Numeral,
            WrittenBy = Author;
        CREATE CLASS Store SIGNATURE City = String, Stock =>> Book;
        CREATE CLASS Ebook AS SUBCLASS OF Book SIGNATURE SizeMb = Numeral;
        """
    )
    store = session.store
    twain = store.create_object(Atom("twain"), ["Author"])
    store.set_attr(twain, "Name", "Twain")
    store.set_attr(twain, "BornIn", 1835)
    woolf = store.create_object(Atom("woolf"), ["Author"])
    store.set_attr(woolf, "Name", "Woolf")
    store.set_attr(woolf, "BornIn", 1882)

    books = [
        ("b1", "Book", "Sawyer", 12, twain),
        ("b2", "Book", "Finn", 15, twain),
        ("b3", "Ebook", "Waves", 8, woolf),
    ]
    for name, cls, title, price, author in books:
        book = store.create_object(Atom(name), [cls])
        store.set_attr(book, "Title", title)
        store.set_attr(book, "Price", price)
        store.set_attr(book, "WrittenBy", author)
    store.set_attr(Atom("b3"), "SizeMb", 2)

    shop = store.create_object(Atom("mainShop"), ["Store"])
    store.set_attr(shop, "City", "boston")
    store.set_attr_set(shop, "Stock", [Atom("b1"), Atom("b2"), Atom("b3")])
    return session


class TestScenario:
    def test_path_queries(self, bookstore):
        result = bookstore.query(
            "SELECT B.Title FROM Store S "
            "WHERE S.City['boston'] and S.Stock[B] and B.Price < 14"
        )
        assert sorted(result.scalars()) == ["Sawyer", "Waves"]

    def test_schema_browsing_new_domain(self, bookstore):
        attrs = bookstore.query(
            "SELECT Y FROM Book B WHERE B.Y.Name['Twain']"
        )
        assert sorted(str(a) for a in attrs.single_column()) == ["WrittenBy"]
        classes = bookstore.query("SELECT #C WHERE Ebook subclassOf #C")
        assert sorted(str(c) for c in classes.single_column()) == [
            "Book",
            "Object",
        ]

    def test_aggregate(self, bookstore):
        result = bookstore.query(
            "SELECT S FROM Store S WHERE count(S.Stock) > 2 "
            "and sum(S.Stock.Price) > 30"
        )
        assert len(result) == 1

    def test_view_and_update(self, bookstore):
        bookstore.execute(
            """
            CREATE VIEW Catalog AS SUBCLASS OF Object
            SIGNATURE Title = String, Price = Numeral
            SELECT Title = B.Title, Price = B.Price
            FROM Book B
            OID FUNCTION OF B
            """
        )
        result = bookstore.query(
            "SELECT C.Title FROM Catalog C WHERE C.Price > 10"
        )
        assert sorted(result.scalars()) == ["Finn", "Sawyer"]
        target = FuncOid("Catalog", (Atom("b1"),))
        bookstore.update_view("Catalog", "Price", {target: Value(20)})
        assert bookstore.store.invoke_scalar(
            Atom("b1"), "Price"
        ) == Value(20)

    def test_query_defined_method(self, bookstore):
        bookstore.execute(
            """
            ALTER CLASS Store
            ADD SIGNATURE CheapestBy : String => Numeral
            SELECT (CheapestBy @ A.Name) = W
            FROM Store X, Author A
            OID X
            WHERE X.Stock[B] and B.WrittenBy[A]
            and W =some min(X.Stock.Price)
            and B.Price =some W
            """
        )
        value = bookstore.store.invoke(
            Atom("mainShop"), "CheapestBy", [Value("Woolf")]
        )
        assert value == frozenset({Value(8)})

    def test_update_method(self, bookstore):
        bookstore.execute(
            """
            ALTER CLASS Store
            ADD SIGNATURE Discount : Numeral => Object
            SELECT (Discount @ W) = nil
            FROM Store X, Numeral W
            OID X
            WHERE W < 50
            and (UPDATE CLASS Store
                 SET X.Stock[B].Price = B.Price - B.Price * W / 100)
            """
        )
        bookstore.store.invoke(Atom("mainShop"), "Discount", [Value(50)])
        # 50 is rejected by the guard
        assert bookstore.store.invoke_scalar(
            Atom("b1"), "Price"
        ) == Value(12)
        bookstore.store.invoke(Atom("mainShop"), "Discount", [Value(25)])
        assert bookstore.store.invoke_scalar(
            Atom("b1"), "Price"
        ) == Value(9)

    def test_relations(self, bookstore):
        bookstore.execute("CREATE RELATION Likes (who, book)")
        bookstore.execute("INSERT INTO Likes VALUES ('ann', b1), ('bob', b3)")
        result = bookstore.query(
            "SELECT W, B.Title FROM Book B WHERE Likes(W, B)"
        )
        rows = {(str(a), str(b)) for a, b in result.rows()}
        assert rows == {("'ann'", "'Sawyer'"), ("'bob'", "'Waves'")}

    def test_typing_and_typed_evaluation(self, bookstore):
        text = (
            "SELECT B FROM Store S WHERE S.Stock[B] and B.WrittenBy[A] "
            "and A.BornIn[W] and W < 1850"
        )
        report = analyze(text, bookstore.store)
        assert report.strict
        typed = TypedEvaluator(bookstore.store).run(parse_query(text))
        plain = bookstore.query(text)
        assert typed.rows() == plain.rows()
        assert sorted(str(b) for b in typed.single_column()) == ["b1", "b2"]

    def test_indexes_on_new_domain(self, bookstore):
        bookstore.store.enable_index("WrittenBy")
        result = bookstore.query("SELECT B WHERE B.WrittenBy[twain]")
        assert sorted(str(b) for b in result.single_column()) == ["b1", "b2"]
        assert bookstore.store.index_stats()["hits"] > 0
