"""Tests for the F-logic kernel: molecules, export, and evaluation."""

import pytest

from repro.datamodel import ObjectStore
from repro.errors import QueryError
from repro.flogic import (
    BuiltinAtom,
    DataAtom,
    FlogicDatabase,
    FlogicQuery,
    IsaAtom,
    SubclassAtom,
    evaluate,
)
from repro.oid import Atom, Value, Variable


@pytest.fixture
def store() -> ObjectStore:
    s = ObjectStore()
    s.declare_class("P")
    s.declare_class("Q", ["P"])
    s.declare_signature("P", "Age", "Numeral")
    s.declare_signature("P", "Knows", "P", set_valued=True)
    a = s.create_object(Atom("a"), ["P"])
    b = s.create_object(Atom("b"), ["Q"])
    s.set_attr(a, "Age", 30)
    s.set_attr(b, "Age", 40)
    s.add_to_set(a, "Knows", b)
    return s


@pytest.fixture
def db(store) -> FlogicDatabase:
    return FlogicDatabase.from_store(store)


class TestExport:
    def test_fact_count(self, db):
        assert db.fact_count() == 3  # two ages + one knows member

    def test_molecule_rendering(self, db):
        molecules = {str(m) for m in db.all_molecules()}
        assert "a[Age -> 30]" in molecules
        assert "a[Knows -> b]" in molecules

    def test_isa_closure(self, db):
        assert db.isa_holds(Atom("b"), Atom("P"))
        assert db.isa_holds(Atom("b"), Atom("Object"))
        assert not db.isa_holds(Atom("a"), Atom("Q"))

    def test_subclass_strict(self, db):
        assert db.subclass_holds(Atom("Q"), Atom("P"))
        assert not db.subclass_holds(Atom("P"), Atom("P"))


class TestEvaluation:
    def test_data_atom_ground(self, db):
        query = FlogicQuery(
            head=(Atom("a"),),
            body=(DataAtom(Atom("a"), Atom("Age"), (), Value(30)),),
        )
        assert evaluate(db, query) == frozenset({(Atom("a"),)})

    def test_data_atom_binds_variable(self, db):
        x = Variable("X")
        query = FlogicQuery(
            head=(x,),
            body=(DataAtom(x, Atom("Age"), (), Value(40)),),
        )
        assert evaluate(db, query) == frozenset({(Atom("b"),)})

    def test_method_variable(self, db):
        m = Variable("M")
        query = FlogicQuery(
            head=(m,),
            body=(DataAtom(Atom("a"), m, (), Atom("b")),),
        )
        assert evaluate(db, query) == frozenset({(Atom("Knows"),)})

    def test_isa_atom(self, db):
        x = Variable("X")
        query = FlogicQuery(
            head=(x,), body=(IsaAtom(x, Atom("Q")),)
        )
        assert evaluate(db, query) == frozenset({(Atom("b"),)})

    def test_subclass_atom_enumeration(self, db):
        c = Variable("C")
        query = FlogicQuery(
            head=(c,), body=(SubclassAtom(Atom("Q"), c),)
        )
        answers = {row[0] for row in evaluate(db, query)}
        assert answers == {Atom("P"), Atom("Object")}

    def test_join_across_atoms(self, db):
        x, y, w = Variable("X"), Variable("Y"), Variable("W")
        query = FlogicQuery(
            head=(x, w),
            body=(
                DataAtom(x, Atom("Knows"), (), y),
                DataAtom(y, Atom("Age"), (), w),
            ),
        )
        assert evaluate(db, query) == frozenset({(Atom("a"), Value(40))})

    def test_builtin_comparison(self, db):
        x, w = Variable("X"), Variable("W")
        query = FlogicQuery(
            head=(x,),
            body=(
                DataAtom(x, Atom("Age"), (), w),
                BuiltinAtom(">", w, Value(35)),
            ),
        )
        assert evaluate(db, query) == frozenset({(Atom("b"),)})

    def test_builtins_reordered_after_binders(self, db):
        x, w = Variable("X"), Variable("W")
        query = FlogicQuery(
            head=(x,),
            body=(
                BuiltinAtom(">", w, Value(35)),  # unbound here ...
                DataAtom(x, Atom("Age"), (), w),  # ... bound here
            ),
        )
        assert evaluate(db, query) == frozenset({(Atom("b"),)})

    def test_unbound_answer_variable_rejected(self, db):
        query = FlogicQuery(head=(Variable("Z"),), body=())
        with pytest.raises(QueryError):
            evaluate(db, query)
