"""Edge cases for the F-logic export: id-terms, arities, accessors."""

import pytest

from repro.datamodel import ObjectStore
from repro.flogic import FlogicDatabase, FlogicQuery, evaluate
from repro.flogic.molecules import DataAtom, atom_variables, IsaAtom, SubclassAtom, BuiltinAtom
from repro.oid import Atom, FuncOid, Value, Variable


@pytest.fixture
def store() -> ObjectStore:
    s = ObjectStore()
    s.declare_class("P")
    view_obj = FuncOid("V", (Atom("a"),))
    s.create_object(Atom("a"), ["P"])
    s.create_object(view_obj, ["P"])
    s.set_attr(view_obj, "Score", 7)
    s.set_attr(Atom("a"), "earns", Value(5), args=[Atom("projX")])
    return s


class TestExportEdges:
    def test_funcoid_hosts_exported(self, store):
        db = FlogicDatabase.from_store(store)
        x = Variable("X")
        query = FlogicQuery(
            head=(x,), body=(DataAtom(x, Atom("Score"), (), Value(7)),)
        )
        assert evaluate(db, query) == frozenset(
            {(FuncOid("V", (Atom("a"),)),)}
        )

    def test_method_arguments_matched_by_arity(self, store):
        db = FlogicDatabase.from_store(store)
        w = Variable("W")
        with_arg = FlogicQuery(
            head=(w,),
            body=(DataAtom(Atom("a"), Atom("earns"), (Atom("projX"),), w),),
        )
        assert evaluate(db, with_arg) == frozenset({(Value(5),)})
        without_arg = FlogicQuery(
            head=(w,), body=(DataAtom(Atom("a"), Atom("earns"), (), w),)
        )
        assert evaluate(db, without_arg) == frozenset()

    def test_argument_variables_bind(self, store):
        db = FlogicDatabase.from_store(store)
        arg = Variable("A")
        query = FlogicQuery(
            head=(arg,),
            body=(DataAtom(Atom("a"), Atom("earns"), (arg,), Value(5)),),
        )
        assert evaluate(db, query) == frozenset({(Atom("projX"),)})

    def test_universe_accessors(self, store):
        db = FlogicDatabase.from_store(store)
        assert Atom("a") in db.individuals()
        assert Atom("P") in db.classes()
        assert Atom("Score") in db.methods()
        assert Atom("P") not in db.individuals()


class TestMoleculeHelpers:
    def test_atom_variables(self):
        x, y = Variable("X"), Variable("Y")
        assert set(atom_variables(DataAtom(x, Atom("m"), (y,), Value(1)))) == {
            x,
            y,
        }
        assert set(atom_variables(IsaAtom(x, Atom("C")))) == {x}
        assert set(atom_variables(SubclassAtom(Atom("A"), Atom("B")))) == set()
        assert set(atom_variables(BuiltinAtom("<", x, Value(2)))) == {x}

    def test_rendering(self):
        atom = DataAtom(Atom("o"), Atom("m"), (Value(1),), Atom("r"))
        assert str(atom) == "o[m@1 -> r]"
        assert str(IsaAtom(Atom("o"), Atom("C"))) == "o : C"
        assert str(SubclassAtom(Atom("A"), Atom("B"))) == "A :: B"
