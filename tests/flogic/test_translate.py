"""Theorem 3.1: the translation P and its equivalence with the evaluator."""

import pytest

from repro.flogic import (
    FlogicDatabase,
    TranslationUnsupported,
    evaluate,
    translate,
)
from repro.flogic.molecules import BuiltinAtom, DataAtom, IsaAtom
from repro.xsql.parser import parse_query

#: Conjunctive paper queries covered by the executable fragment of P.
EQUIVALENCE_QUERIES = [
    "SELECT mary123.Residence.City",
    "SELECT uniSQL.President.FamMembers.Name",
    "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
    "SELECT Z FROM Employee X, Automobile Y "
    "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
    "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
    "SELECT X, Y FROM Company X "
    "WHERE X.Name =some X.Divisions.Employees[Y].Name",
    "SELECT #X WHERE TurboEngine subclassOf #X",
    "SELECT Y FROM Person X WHERE X.Y.City['newyork']",
    "SELECT X.Name, W.Salary FROM Company X WHERE X.Divisions.Employees[W]",
    "SELECT X FROM Employee X WHERE X.Salary < 35000",
    "SELECT X WHERE X instanceOf Employee",
]


class TestTranslationShape:
    def test_from_becomes_isa(self, shared_paper_session):
        query = parse_query("SELECT X FROM Person X")
        translated = translate(query)
        assert any(isinstance(a, IsaAtom) for a in translated.body)

    def test_path_becomes_molecule_chain(self, shared_paper_session):
        query = parse_query("SELECT mary123.Residence.City")
        translated = translate(query)
        data_atoms = [a for a in translated.body if isinstance(a, DataAtom)]
        assert len(data_atoms) == 2
        # chained through a fresh intermediate variable
        assert data_atoms[0].value == data_atoms[1].host

    def test_comparison_becomes_builtin(self, shared_paper_session):
        query = parse_query(
            "SELECT X FROM Employee X WHERE X.Salary > 1000"
        )
        translated = translate(query)
        assert any(
            isinstance(a, BuiltinAtom) and a.op == ">"
            for a in translated.body
        )

    def test_rendering(self, shared_paper_session):
        query = parse_query("SELECT X FROM Person X WHERE X.Age > 1")
        text = str(translate(query))
        assert "X : Person" in text
        assert "[Age ->" in text


class TestTheorem31Equivalence:
    @pytest.mark.parametrize("text", EQUIVALENCE_QUERIES)
    def test_flogic_equals_native(self, shared_paper_session, text):
        session = shared_paper_session
        query = parse_query(text)
        db = FlogicDatabase.from_store(session.store)
        flogic_answers = evaluate(db, translate(query))
        native_answers = session.query(text).rows()
        assert flogic_answers == native_answers, text


class TestUnsupportedFragment:
    """Each construct outside the fragment raises with a message that
    names the construct, so fuzzer skip reports are self-explanatory."""

    def test_universal_quantifier(self):
        query = parse_query(
            "SELECT X WHERE X.Residence =all X.FamMembers.Residence"
        )
        with pytest.raises(TranslationUnsupported, match="'all'-quantified"):
            translate(query)

    def test_disjunction(self):
        query = parse_query("SELECT X WHERE X.A or X.B")
        with pytest.raises(TranslationUnsupported, match=r"disjunction \('or'\)"):
            translate(query)

    def test_negation(self):
        query = parse_query("SELECT X WHERE not X.A")
        with pytest.raises(TranslationUnsupported, match=r"negation \('not'\)"):
            translate(query)

    def test_aggregates(self):
        query = parse_query("SELECT X WHERE count(X.FamMembers) > 4")
        with pytest.raises(TranslationUnsupported, match="aggregate count"):
            translate(query)

    def test_set_literals(self):
        query = parse_query("SELECT X WHERE X.Color = {'blue', 'red'}")
        with pytest.raises(TranslationUnsupported, match="set literal"):
            translate(query)

    def test_set_comparators(self):
        query = parse_query(
            "SELECT X WHERE X.FamMembers containsEq X.Dependents"
        )
        with pytest.raises(
            TranslationUnsupported, match="containsEq.*not elementary"
        ):
            translate(query)

    def test_creating_queries(self):
        query = parse_query(
            "SELECT N = X.Name FROM Company X OID FUNCTION OF X"
        )
        with pytest.raises(
            TranslationUnsupported, match="[Oo]bject-creating"
        ):
            translate(query)

    def test_path_variables(self):
        query = parse_query("SELECT X WHERE X.*P.City['a']")
        with pytest.raises(TranslationUnsupported, match="path variable"):
            translate(query)


class TestSupportedFragmentNeverRaises:
    """The fuzzer's skip-rate accounting assumes conjunctive queries
    always translate — pin that for each supported construct."""

    SUPPORTED = [
        "SELECT X FROM Person X",
        "SELECT X.Name FROM Employee X WHERE X.Salary > 100",
        "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
        "SELECT X WHERE X instanceOf Employee",
        "SELECT #X WHERE TurboEngine subclassOf #X",
        "SELECT X, Y FROM Person X, Person Y "
        "WHERE (X.Residence = Y.Residence) and (X.Age < Y.Age)",
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
        "SELECT X FROM Employee X WHERE X.Salary != 0",
    ]

    @pytest.mark.parametrize("text", SUPPORTED)
    def test_translates(self, text):
        translated = translate(parse_query(text))
        assert translated.head
