"""Session-level snapshot isolation: SnapshotSession / ConcurrentSession.

The acceptance tests behind the MVCC refactor's API story: snapshot
sessions answer queries at their pinned version while the base session
keeps writing, writers never block pinned readers, and the concurrent
fan-out helper returns per-query versions.
"""

import threading

import pytest

from repro.errors import SnapshotReadOnlyError
from repro.oid import Atom
from repro.xsql.session import ConcurrentSession, Session, SnapshotSession


def seeded_session() -> Session:
    session = Session()
    store = session.store
    store.declare_class("Person")
    store.declare_class("Employee", ["Person"])
    store.declare_signature("Person", "Name", "String")
    store.declare_signature("Person", "Age", "Numeral")
    store.declare_signature("Employee", "Salary", "Numeral")
    for i in range(10):
        name = Atom(f"p{i}")
        store.create_object(name, ["Employee" if i % 2 else "Person"])
        store.set_attr(name, "Name", f"P{i}")
        store.set_attr(name, "Age", 20 + i * 4)
    return session


QUERY = "SELECT X.Name FROM Person X WHERE X.Age > 30"


class TestSnapshotSession:
    def test_snapshot_answers_at_pinned_version(self):
        base = seeded_session()
        before = base.query(QUERY).rows()
        with base.snapshot_view() as snap:
            assert isinstance(snap, SnapshotSession)
            assert snap.pinned
            base.store.set_attr(Atom("p0"), "Age", 99)
            assert snap.query(QUERY).rows() == before
            assert base.query(QUERY).rows() != before

    def test_snapshot_session_is_read_only(self):
        base = seeded_session()
        with base.snapshot_view() as snap:
            with pytest.raises(SnapshotReadOnlyError):
                snap.execute("CREATE CLASS Robot")

    def test_version_surfaces_on_both_sessions(self):
        base = seeded_session()
        with base.snapshot_view() as snap:
            pinned = snap.version
            assert pinned == base.version
            base.store.set_attr(Atom("p0"), "Age", 77)
            assert snap.version == pinned
            assert base.version.ticket > pinned.ticket

    def test_close_releases_the_pin(self):
        base = seeded_session()
        snap = base.snapshot_view()
        assert base.version_status()["pins"] == 1
        snap.close()
        assert base.version_status()["pins"] == 0

    def test_stacked_snapshots_see_distinct_versions(self):
        base = seeded_session()
        with base.snapshot_view() as old:
            base.store.set_attr(Atom("p0"), "Age", 99)
            with base.snapshot_view() as new:
                rows_old = old.query(QUERY).rows()
                rows_new = new.query(QUERY).rows()
                assert rows_old != rows_new
                assert old.version.ticket < new.version.ticket

    def test_snapshot_shares_the_base_registry(self):
        base = seeded_session()
        base.execute(
            "CREATE VIEW Adults AS SUBCLASS OF Object "
            "SIGNATURE AName = String "
            "SELECT AName = X.Name FROM Person X "
            "OID FUNCTION OF X WHERE X.Age > 30"
        )
        with base.snapshot_view() as snap:
            assert snap.query("SELECT X.AName FROM Adults X").rows()


class TestWritersNeverBlockReaders:
    def test_reader_iterates_while_writer_commits_1000_mutations(self):
        base = seeded_session()
        store = base.store
        mutations = 1200
        writer_done = threading.Event()
        progress_seen = []
        errors = []

        def writer():
            try:
                for i in range(mutations):
                    store.set_attr(Atom(f"p{i % 10}"), "Age", 20 + i % 60)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                writer_done.set()

        def reader():
            try:
                with base.snapshot_view() as snap:
                    baseline = snap.query(QUERY).rows()
                    # Keep re-reading the pinned version until the
                    # writer has finished all its commits: every read
                    # must come back identical and none may deadlock.
                    while not writer_done.is_set():
                        assert snap.query(QUERY).rows() == baseline
                        progress_seen.append(store.version.ticket)
                    assert snap.query(QUERY).rows() == baseline
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        reader_thread = threading.Thread(target=reader)
        writer_thread = threading.Thread(target=writer)
        reader_thread.start()
        writer_thread.start()
        writer_thread.join(timeout=120)
        reader_thread.join(timeout=120)
        assert not writer_thread.is_alive(), "writer blocked by reader"
        assert not reader_thread.is_alive(), "reader blocked by writer"
        assert not errors, errors
        # The writer really did commit while the snapshot was pinned.
        assert store.version.ticket >= mutations
        assert len(set(progress_seen)) > 1, "no concurrent interleaving"

    def test_no_torn_reads_under_set_churn(self):
        base = seeded_session()
        store = base.store
        store.declare_signature("Person", "Tags", "String", set_valued=True)
        store.set_attr_set(Atom("p0"), "Tags", ["a", "b", "c"])
        stop = threading.Event()
        errors = []

        def writer():
            try:
                for i in range(400):
                    store.set_attr_set(
                        Atom("p0"), "Tags", [f"x{i}", f"y{i}", f"z{i}"]
                    )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    with base.snapshot_view() as snap:
                        values = snap.store.invoke(Atom("p0"), Atom("Tags"))
                        # Never a half-written set: always exactly 3.
                        assert len(values) == 3, values
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors


class TestConcurrentSession:
    def test_fan_out_returns_version_result_pairs(self):
        base = seeded_session()
        concurrent = ConcurrentSession(base)
        queries = [QUERY, "SELECT X FROM Employee X", QUERY]
        results = concurrent.run_concurrently(queries, workers=3)
        assert len(results) == 3
        for version, result in results:
            assert version.ticket >= 0
            assert result.rows() is not None
        assert results[0][1].rows() == results[2][1].rows()

    def test_fan_out_releases_every_pin(self):
        base = seeded_session()
        concurrent = ConcurrentSession(base)
        concurrent.run_concurrently([QUERY] * 8, workers=4)
        assert base.version_status()["pins"] == 0

    def test_empty_fan_out(self):
        base = seeded_session()
        assert ConcurrentSession(base).run_concurrently([]) == []
