"""The reified physical-operator tree (:mod:`repro.xsql.operators`).

Every plan/engine/join_mode combination lowers to one operator tree and
runs through :func:`repro.xsql.operators.execute`; these tests pin the
tree shapes per mode, the edge cases the set-at-a-time executor must get
right (empty extents, vacuous quantifiers), and re-execution after
mid-stream schema and data changes.
"""

import json

import pytest

from repro.errors import QueryError
from repro.xsql import operators
from repro.xsql.operators import (
    Batch,
    ExecContext,
    LowerSpec,
    _cross,
    merge_overlapping,
    execute,
    lower_query,
)
from tests.conftest import make_paper_session, names

JOIN_QUERY = (
    "SELECT X, Y FROM Employee X, Employee Y "
    "WHERE X.Salary =some Y.Salary"
)
STRICT_QUERY = (
    "SELECT X FROM Vehicle X "
    "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]"
)


def shape(tree):
    """The operator names of a tree_dict, root first, depth first."""
    out = [tree["operator"]]
    for child in tree.get("children", []):
        out.extend(shape(child))
    return out


class TestTreeShapesPerMode:
    def test_cost_hash_mode_builds_hash_join(self, paper_session):
        compiled = paper_session.prepare(JOIN_QUERY, plan="cost")
        compiled.run()
        assert shape(compiled.last_optree) == [
            "Project", "HashJoin", "ExtentScan", "ExtentScan",
        ]

    def test_cost_nested_mode_builds_quantify(self, paper_session):
        paper_session.join_mode = "nested"
        compiled = paper_session.prepare(JOIN_QUERY, plan="cost")
        compiled.run()
        assert shape(compiled.last_optree) == [
            "Project", "Quantify", "ExtentScan", "ExtentScan",
        ]

    def test_typed_mode_builds_restricted_scan(self, paper_session):
        compiled = paper_session.prepare(STRICT_QUERY, plan="typed")
        compiled.run()
        assert shape(compiled.last_optree) == [
            "Project", "PathEval", "PathEval", "RestrictedScan",
        ]

    def test_naive_engine_is_a_nested_loop_root(self, paper_session):
        compiled = paper_session.prepare(
            "SELECT X FROM Vehicle X", engine="naive"
        )
        compiled.run()
        assert shape(compiled.last_optree) == ["NestedLoop"]

    def test_all_modes_agree_on_the_join(self, paper_session):
        reference = paper_session.query(JOIN_QUERY, plan="none").rows()
        paper_session.join_mode = "nested"
        nested = paper_session.query(JOIN_QUERY, plan="cost").rows()
        paper_session.join_mode = "hash"
        hashed = paper_session.query(JOIN_QUERY, plan="cost").rows()
        assert nested == reference
        assert hashed == reference


class TestEmptyExtents:
    def test_empty_extent_scan_yields_no_rows(self, paper_session):
        paper_session.execute("CREATE CLASS Spacecraft")
        result = paper_session.query("SELECT X FROM Spacecraft X")
        assert len(result) == 0

    @pytest.mark.parametrize("plan", ["none", "greedy", "typed", "cost"])
    def test_join_against_empty_extent(self, paper_session, plan):
        paper_session.execute(
            "CREATE CLASS Spacecraft AS SUBCLASS OF Vehicle"
        )
        text = (
            "SELECT X, Y FROM Employee X, Spacecraft Y "
            "WHERE X.OwnedVehicles =some Y"
        )
        result = paper_session.query(text, plan=plan)
        assert len(result) == 0

    def test_empty_extent_operator_counters(self, paper_session):
        paper_session.execute("CREATE CLASS Spacecraft")
        compiled = paper_session.prepare(
            "SELECT X FROM Spacecraft X", plan="cost"
        )
        compiled.run()
        tree = compiled.last_optree
        scan = tree["children"][0]
        assert scan["operator"] == "ExtentScan"
        assert scan["rows_out"] == 0
        assert tree["rows_out"] == 0


class TestVacuousQuantifiers:
    # all-quantification over an empty set is vacuously true (§3.3): an
    # employee with no FamMembers satisfies ``FamMembers.Age all> N`` for
    # every N.  The set-at-a-time operators must preserve this.

    @pytest.mark.parametrize("plan", ["none", "greedy", "typed", "cost"])
    def test_universal_over_empty_set_is_true(
        self, shared_paper_session, plan
    ):
        text = (
            "SELECT X FROM Employee X WHERE X.FamMembers.Age all> 100000"
        )
        result = shared_paper_session.query(text, plan=plan)
        reference = shared_paper_session.query(text, plan="none")
        assert result.rows() == reference.rows()
        # Vacuously satisfied employees (no FamMembers) are present.
        assert len(result) > 0

    @pytest.mark.parametrize("plan", ["none", "greedy", "typed", "cost"])
    def test_existential_over_empty_set_is_false(
        self, shared_paper_session, plan
    ):
        text = "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 0"
        result = shared_paper_session.query(text, plan=plan)
        assert result.rows() == shared_paper_session.query(
            text, plan="none"
        ).rows()


class TestMidStreamInvalidation:
    def test_schema_change_recompiles_and_reruns(self, paper_session):
        compiled = paper_session.prepare(
            "SELECT X FROM Vehicle X", plan="cost"
        )
        before = compiled.run().rows()
        paper_session.execute(
            "CREATE CLASS Spacecraft AS SUBCLASS OF Vehicle"
        )
        assert compiled.is_stale
        # Re-running rebuilds plan and operator tree against the new
        # schema; the (still empty) subclass adds no rows.
        assert compiled.run().rows() == before
        assert not compiled.is_stale
        assert compiled.last_optree is not None

    def test_data_update_is_seen_by_next_run(self, paper_session):
        compiled = paper_session.prepare(
            "SELECT X FROM Employee X WHERE X.Salary > 90000", plan="cost"
        )
        before = len(compiled.run())
        paper_session.execute(
            "UPDATE CLASS Employee SET ben.Salary = 95000"
        )
        # Data updates do not invalidate compilation, but each run pulls
        # fresh batches from the store: operator outputs are per-run.
        assert len(compiled.run()) == before + 1

    def test_rerun_resets_operator_counters(self, paper_session):
        compiled = paper_session.prepare(JOIN_QUERY, plan="cost")
        compiled.run()
        first = json.dumps(
            compiled.last_optree, default=lambda o: 0
        )
        compiled.run()
        second = json.dumps(
            compiled.last_optree, default=lambda o: 0
        )
        # Counters are per-execution, not cumulative: identical rows in,
        # rows out, and batch counts on both runs (times differ).
        strip = lambda s: json.loads(s)

        def counts(tree):
            out = [(tree["operator"], tree["rows_in"], tree["rows_out"],
                    tree["batches"])]
            for child in tree.get("children", []):
                out.extend(counts(child))
            return out

        assert counts(strip(first)) == counts(strip(second))


class TestExplainAnalyzeSurface:
    def test_json_reports_est_vs_actual_per_operator(self, paper_session):
        compiled = paper_session.prepare(JOIN_QUERY, plan="cost")
        data = json.loads(compiled.explain(format="json", analyze=True))
        tree = data["operators"]
        join = tree["children"][0]
        assert join["operator"] == "HashJoin"
        assert {"rows_in", "rows_out", "batches", "time_ms",
                "cache_hits", "estimated_rows"} <= set(join)

    def test_text_has_operator_section(self, paper_session):
        rendered = paper_session.prepare(
            JOIN_QUERY, plan="cost"
        ).explain(analyze=True)
        assert "physical operators:" in rendered
        assert "HashJoin" in rendered

    def test_plain_explain_has_no_operator_section(self, paper_session):
        compiled = paper_session.prepare(JOIN_QUERY, plan="cost")
        assert "physical operators:" not in compiled.explain()

    def test_analyze_on_union_chain_shows_setop_root(self, paper_session):
        compiled = paper_session.prepare(
            "SELECT X FROM Motorbike X UNION SELECT X FROM Bicycle X"
        )
        rendered = compiled.explain(analyze=True)
        assert "physical operators:" in rendered
        assert shape(compiled.last_optree) == [
            "SetOp", "Project", "ExtentScan", "Project", "ExtentScan",
        ]


class TestFactoredBatches:
    # Unit-level checks on the factored binding-batch algebra.

    def test_merge_of_disjoint_batches(self):
        state = [
            Batch({"X"}, [{"X": 1}, {"X": 2}]),
            Batch({"Y"}, [{"Y": 10}]),
        ]
        merged, rest = merge_overlapping(state, {"X"})
        assert merged.vars == {"X"}
        assert [env["X"] for env in merged.envs] == [1, 2]
        assert rest == [state[1]]

    def test_merge_all_collapses_everything(self):
        state = [
            Batch({"X"}, [{"X": 1}, {"X": 2}]),
            Batch({"Y"}, [{"Y": 10}, {"Y": 20}]),
        ]
        merged, rest = merge_overlapping(state, set(), merge_all=True)
        assert rest == []
        assert len(merged.envs) == 4

    def test_cross_of_empty_state_is_one_empty_env(self):
        assert list(_cross([])) == [{}]

    def test_cross_of_empty_batch_is_no_envs(self):
        assert list(_cross([Batch({"X"}, [])])) == []

    def test_non_root_operator_rejects_result(self, paper_session):
        from repro.xsql.evaluator import Evaluator
        from repro.xsql.parser import parse_query

        query = parse_query("SELECT X FROM Vehicle X WHERE X.Weight > 0")
        root = lower_query(query, LowerSpec())
        evaluator = Evaluator(paper_session.store)
        ctx = ExecContext(evaluator, paper_session.metrics)
        root.open(ctx)
        with pytest.raises(QueryError):
            root.child.result()
        root.close()

    def test_execute_counts_operators(self, paper_session):
        from repro.xsql.evaluator import Evaluator
        from repro.xsql.parser import parse_query

        query = parse_query("SELECT X FROM Vehicle X")
        root = lower_query(query, LowerSpec())
        rows = execute(
            root, Evaluator(paper_session.store), paper_session.metrics
        )
        assert len(list(rows)) == 4
        counters = paper_session.metrics.counters
        assert counters.get("op.Project") == 1
        assert counters.get("op.ExtentScan") == 1
