"""Tests for aggregate functions (paper §3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.oid import Atom, Value
from repro.xsql.aggregates import apply_aggregate


def values(*items):
    return frozenset(Value(i) for i in items)


class TestCount:
    def test_counts_any_objects(self):
        assert apply_aggregate("count", frozenset({Atom("a"), Value(1)})) == Value(2)

    def test_empty(self):
        assert apply_aggregate("count", frozenset()) == Value(0)


class TestNumericAggregates:
    def test_sum(self):
        assert apply_aggregate("sum", values(1, 2, 3)) == Value(6)

    def test_sum_empty_is_zero(self):
        assert apply_aggregate("sum", frozenset()) == Value(0)

    def test_avg(self):
        assert apply_aggregate("avg", values(2, 4)) == Value(3)

    def test_avg_fractional(self):
        assert apply_aggregate("avg", values(1, 2)) == Value(1.5)

    def test_min_max(self):
        assert apply_aggregate("min", values(5, 1, 9)) == Value(1)
        assert apply_aggregate("max", values(5, 1, 9)) == Value(9)

    def test_non_numeral_rejected(self):
        with pytest.raises(QueryError):
            apply_aggregate("sum", frozenset({Atom("a")}))

    def test_empty_avg_undefined(self):
        with pytest.raises(QueryError):
            apply_aggregate("avg", frozenset())


class TestStringMinMax:
    def test_min_max_strings(self):
        names = values("bob", "anna", "zoe")
        assert apply_aggregate("min", names) == Value("anna")
        assert apply_aggregate("max", names) == Value("zoe")

    def test_mixed_rejected(self):
        with pytest.raises(QueryError):
            apply_aggregate("min", frozenset({Value(1), Value("a")}))


class TestErrors:
    def test_unknown_aggregate(self):
        with pytest.raises(QueryError):
            apply_aggregate("median", values(1))


@given(st.frozensets(st.integers(-1000, 1000).map(Value), min_size=1, max_size=8))
def test_aggregate_invariants(numbers):
    """Property: min <= avg <= max and sum = avg * count."""
    low = apply_aggregate("min", numbers).value
    high = apply_aggregate("max", numbers).value
    mean = apply_aggregate("avg", numbers).value
    total = apply_aggregate("sum", numbers).value
    count = apply_aggregate("count", numbers).value
    assert low <= mean <= high
    assert abs(total - mean * count) < 1e-9
