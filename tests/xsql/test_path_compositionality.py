"""Property: path-expression values compose step by step.

The §3.1 semantics makes a path's value the image of the head under the
composed step relations; these properties pin that compositionality on
random small databases — value(p.q) equals the union of values of q
started from each tail of p, and a trivial path is the identity.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datamodel import ObjectStore
from repro.oid import Atom
from repro.xsql import ast
from repro.xsql.parser import parse_query
from repro.xsql.paths import PathWalker

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

edges_strategy = st.lists(
    st.tuples(
        st.sampled_from(["R", "S"]),
        st.integers(0, 4),
        st.integers(0, 4),
    ),
    max_size=15,
)


def build(edges) -> ObjectStore:
    store = ObjectStore()
    store.declare_class("N")
    for index in range(5):
        store.create_object(Atom(f"n{index}"), ["N"])
    for method, src, dst in edges:
        store.add_to_set(Atom(f"n{src}"), method, Atom(f"n{dst}"))
    return store


def path_from(head: Atom, *methods: str) -> ast.PathExpr:
    return ast.PathExpr(
        head=head,
        steps=tuple(ast.Step(ast.MethodExpr(Atom(m))) for m in methods),
    )


@given(edges=edges_strategy, start=st.integers(0, 4))
@SETTINGS
def test_two_step_value_composes(edges, start):
    store = build(edges)
    walker = PathWalker(store)
    head = Atom(f"n{start}")
    composed = walker.value(path_from(head, "R", "S"))
    stepwise = frozenset(
        tail
        for mid in walker.value(path_from(head, "R"))
        for tail in walker.value(path_from(mid, "S"))
    )
    assert composed == stepwise


@given(edges=edges_strategy, start=st.integers(0, 4))
@SETTINGS
def test_trivial_path_is_identity(edges, start):
    store = build(edges)
    walker = PathWalker(store)
    head = Atom(f"n{start}")
    assert walker.value(ast.PathExpr(head=head)) == frozenset({head})


@given(edges=edges_strategy, start=st.integers(0, 4))
@SETTINGS
def test_selector_filters_value(edges, start):
    store = build(edges)
    walker = PathWalker(store)
    head = Atom(f"n{start}")
    full = walker.value(path_from(head, "R"))
    for candidate_index in range(5):
        candidate = Atom(f"n{candidate_index}")
        filtered_path = ast.PathExpr(
            head=head,
            steps=(ast.Step(ast.MethodExpr(Atom("R")), candidate),),
        )
        filtered = walker.value(filtered_path)
        if candidate in full:
            assert filtered == frozenset({candidate})
        else:
            assert filtered == frozenset()


@given(edges=edges_strategy)
@SETTINGS
def test_method_variable_union(edges):
    """X."M covers exactly the union of all per-method images."""
    store = build(edges)
    walker = PathWalker(store)
    head = Atom("n0")
    query = parse_query('SELECT W WHERE n0."M[W]')
    via_var = walker.value(query.where.path)
    via_union = walker.value(path_from(head, "R")) | walker.value(
        path_from(head, "S")
    )
    assert via_var == via_union
