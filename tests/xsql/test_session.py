"""Tests for the Session facade."""

import pytest

from repro import Session
from repro.errors import QueryError, XsqlSyntaxError
from repro.oid import Atom, Value
from tests.conftest import names


class TestDispatch:
    def test_query(self, shared_paper_session):
        result = shared_paper_session.query("SELECT X FROM Company X")
        assert set(names(result)) == {"uniSQL", "acme"}

    def test_create_class(self):
        session = Session()
        session.execute(
            "CREATE CLASS Robot SIGNATURE Serial => Numeral"
        )
        assert Atom("Robot") in session.store.class_universe()
        assert session.store.signatures_of("Robot", "Serial")

    def test_create_class_with_superclasses(self):
        session = Session()
        session.execute("CREATE CLASS Agent")
        session.execute("CREATE CLASS Robot AS SUBCLASS OF Agent")
        assert session.store.hierarchy.is_subclass(
            Atom("Robot"), Atom("Agent")
        )

    def test_creating_query_returns_created_oids(self, paper_session):
        result = paper_session.execute(
            "SELECT CompName = Y.Name FROM Company Y OID FUNCTION OF Y"
        )
        assert len(result.created) == 2
        assert all(str(o).startswith("qf") for o in result.created)

    def test_update_returns_status(self, paper_session):
        result = paper_session.execute(
            "UPDATE CLASS Division SET d_eng.Function = 'x'"
        )
        assert result.columns == ("status",)

    def test_syntax_error_propagates(self):
        session = Session()
        with pytest.raises(XsqlSyntaxError):
            session.execute("SELECT FROM")

    def test_script_execution(self, paper_session):
        results = paper_session.execute_script(
            "SELECT X FROM Company X; SELECT X FROM Division X;"
        )
        assert len(results) == 2
        assert len(results[1]) == 4

    def test_union_query(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Motorbike X UNION SELECT X FROM Automobile X"
        )
        assert len(result) == 4

    def test_minus_query(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Person X MINUS SELECT X FROM Employee X"
        )
        assert "mary123" in names(result)
        assert "john13" not in names(result)


class TestNaiveOracle:
    def test_naive_matches_smart_on_paper_query(self, shared_paper_session):
        text = "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']"
        assert (
            shared_paper_session.query(text, engine="naive").rows()
            == shared_paper_session.query(text).rows()
        )

    def test_naive_rejects_ddl(self, paper_session):
        with pytest.raises(QueryError):
            paper_session.query(
                "UPDATE CLASS Division SET d_eng.Function = 'x'",
                engine="naive",
            )


class TestSessionIsolation:
    def test_fresh_sessions_do_not_share_state(self):
        a = Session()
        b = Session()
        a.store.declare_class("OnlyInA")
        assert Atom("OnlyInA") not in b.store.class_universe()
