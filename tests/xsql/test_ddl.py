"""Tests for query-defined and update methods (paper §5)."""

import pytest

from repro.errors import QueryError
from repro.oid import NIL, Atom, Value
from tests.conftest import names

MNGR_SALARY = """
ALTER CLASS Company
ADD SIGNATURE MngrSalary : String => Numeral
SELECT (MngrSalary @ Y.Name) = W
FROM Company X
OID X
WHERE X.Divisions[Y].Manager.Salary[W]
"""

RAISE_MNGR = """
ALTER CLASS Company
ADD SIGNATURE RaiseMngrSalary : Numeral => Object
SELECT (RaiseMngrSalary @ W) = nil
FROM Company X, Numeral W
OID X
WHERE W < 20
and (UPDATE CLASS Company
     SET X.Divisions[Y].Manager.Salary = (1 + W/100) * X.(MngrSalary @ Y.Name))
"""


class TestQueryDefinedMethods:
    def test_method_definition_installs_signature(self, paper_session):
        paper_session.execute(MNGR_SALARY)
        sigs = paper_session.store.signatures_of("Company", "MngrSalary")
        assert len(sigs) == 1
        assert sigs[0].arity == 1

    def test_invocation_with_ground_argument(self, paper_session):
        paper_session.execute(MNGR_SALARY)
        result = paper_session.store.invoke(
            Atom("uniSQL"), "MngrSalary", [Value("Engineering")]
        )
        assert result == frozenset({Value(30000)})

    def test_invocation_no_match_is_undefined(self, paper_session):
        paper_session.execute(MNGR_SALARY)
        result = paper_session.store.invoke(
            Atom("uniSQL"), "MngrSalary", [Value("NoSuchDivision")]
        )
        assert result == frozenset()

    def test_method_usable_in_path_expressions(self, paper_session):
        paper_session.execute(MNGR_SALARY)
        result = paper_session.query(
            "SELECT W FROM Company X WHERE X.(MngrSalary @ 'Sales')[W]"
        )
        assert result.scalars() == [250000]

    def test_query_13_nested_subquery(self, paper_session):
        paper_session.execute(MNGR_SALARY)
        result = paper_session.query(
            """
            SELECT X
            FROM Vehicle X
            WHERE 200000 <all (SELECT W
                               FROM Division Y
                               WHERE X.Manufacturer.(MngrSalary @ Y.Name)[W])
            """
        )
        assert names(result) == ["carWhite", "moto1"]

    def test_method_arg_as_selector_variant(self, paper_session):
        # "using (MngrSalary @ 'Advertizing') ... will direct the system
        # to retrieve those vehicles whose manufacturers pay high salaries
        # to their advertizing chiefs" (§5).
        paper_session.execute(MNGR_SALARY)
        result = paper_session.query(
            """
            SELECT X FROM Vehicle X
            WHERE 200000 <all (SELECT W WHERE
                X.Manufacturer.(MngrSalary @ 'Advertizing')[W])
            """
        )
        assert names(result) == ["carWhite", "moto1"]


class TestUpdateMethods:
    def test_raise_applies_percentage(self, paper_session):
        paper_session.execute(MNGR_SALARY)
        paper_session.execute(RAISE_MNGR)
        result = paper_session.store.invoke(
            Atom("uniSQL"), "RaiseMngrSalary", [Value(10)]
        )
        assert result == frozenset({NIL})
        store = paper_session.store
        assert store.invoke_scalar(Atom("john13"), "Salary") == Value(33000)
        assert store.invoke_scalar(Atom("rich"), "Salary") == Value(99000)
        # other companies untouched
        assert store.invoke_scalar(Atom("pat"), "Salary") == Value(250000)

    def test_guard_rejects_large_raise(self, paper_session):
        paper_session.execute(MNGR_SALARY)
        paper_session.execute(RAISE_MNGR)
        result = paper_session.store.invoke(
            Atom("uniSQL"), "RaiseMngrSalary", [Value(25)]
        )
        assert result == frozenset()
        assert paper_session.store.invoke_scalar(
            Atom("john13"), "Salary"
        ) == Value(30000)


class TestDdlValidation:
    def test_signature_method_must_match_select(self, paper_session):
        with pytest.raises(QueryError):
            paper_session.execute(
                "ALTER CLASS Company ADD SIGNATURE Foo : String => Numeral "
                "SELECT (Bar @ W) = W FROM Company X OID X WHERE X.Name[W]"
            )

    def test_arity_must_match(self, paper_session):
        with pytest.raises(QueryError):
            paper_session.execute(
                "ALTER CLASS Company ADD SIGNATURE Foo : String => Numeral "
                "SELECT (Foo @) = W FROM Company X OID X WHERE X.Name[W]"
            )

    def test_oid_scope_required(self, paper_session):
        with pytest.raises(QueryError):
            paper_session.execute(
                "ALTER CLASS Company ADD SIGNATURE Foo : String => Numeral "
                "SELECT (Foo @ Z) = W FROM Company X WHERE X.Name[W]"
            )
