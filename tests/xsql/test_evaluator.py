"""Tests for query evaluation (paper §3.4, §5)."""

import pytest

from repro.errors import QueryError
from repro.oid import Atom, Value, Variable
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query, parse_statement
from repro.xsql import ast
from tests.conftest import names


class TestFromClause:
    def test_from_restricts_to_extent(self, shared_paper_session):
        result = shared_paper_session.query("SELECT X FROM Employee X")
        assert "mary123" not in names(result)
        assert "john13" in names(result)

    def test_from_inheritance(self, shared_paper_session):
        result = shared_paper_session.query("SELECT X FROM Person X")
        assert "john13" in names(result)  # employees are persons

    def test_from_class_variable(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT #C FROM #C X WHERE X.CylinderN[6]"
        )
        assert "TurboEngine" in names(result)

    def test_from_unknown_class_is_empty(self, shared_paper_session):
        result = shared_paper_session.query("SELECT X FROM Martian X")
        assert len(result) == 0

    def test_from_numeral_active_domain(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT W FROM Numeral W WHERE W > 200000"
        )
        assert Value(250000) in result.single_column()


class TestBooleans:
    def test_conjunction_binds_across_conjuncts(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT Y FROM Company X "
            "WHERE X.Divisions[Y] and Y.Name['Engineering']"
        )
        assert names(result) == ["d_eng"]

    def test_disjunction_unions_bindings(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT W FROM Company Y WHERE Y.Retirees[W] "
            "or Y.Divisions.Employees.Dependents[W]"
        )
        assert set(names(result)) == {"benfam1", "bob", "ret1"}

    def test_negation_ground(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Company X WHERE not X.Retirees"
        )
        assert names(result) == ["acme"]

    def test_negation_with_free_vars_is_ground_instance_semantics(
        self, shared_paper_session
    ):
        # ∃Y. not Residence(X, Y): true for every person, since some Y
        # fails to be their residence — the §3.4 substitution semantics.
        result = shared_paper_session.query(
            "SELECT X FROM Person X WHERE not X.Residence[Y]"
        )
        assert len(result) == len(
            shared_paper_session.query("SELECT X FROM Person X")
        )

    def test_nested_boolean_structure(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Employee X WHERE "
            "(X.Salary > 100000 or X.Salary < 25000) and X.Age < 50"
        )
        assert set(names(result)) == {"kim", "acmeEmp", "maria"}


class TestComparisonsEndToEnd:
    def test_free_variable_enumeration(self, shared_paper_session):
        # W appears only in the comparison; it is enumerated over the
        # universe per the naive semantics.
        result = shared_paper_session.query(
            "SELECT X FROM Employee X WHERE X.Salary =some W.Salary "
            "and X.Age > 50"
        )
        assert "pat" in names(result)

    def test_arithmetic_in_comparison(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Employee X WHERE X.Salary > 100 * 2000"
        )
        assert set(names(result)) == {"pat", "maria"}

    def test_set_operand_union(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Person X WHERE "
            "X.Residence.City =some ({'newyork'} UNION {'austin'}) "
            "and X.Age > 45"
        )
        assert "john13" in names(result)

    def test_division_by_zero_raises(self, shared_paper_session):
        with pytest.raises(QueryError):
            shared_paper_session.query("SELECT X FROM Person X WHERE X.Age > 1/0")


class TestSubqueries:
    def test_correlated_subquery(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Company X WHERE 100000 <all "
            "(SELECT W FROM Division Y WHERE X.Divisions[Y].Manager.Salary[W])"
        )
        assert names(result) == ["acme"]

    def test_subquery_must_be_single_column(self, shared_paper_session):
        with pytest.raises(Exception):
            shared_paper_session.query(
                "SELECT X FROM Company X WHERE 1 =some "
                "(SELECT Y, Z FROM Division Y WHERE Y.Name[Z])"
            )


class TestSelectSemantics:
    def test_duplicate_elimination(self, shared_paper_session):
        # Two Acme employees share no salary, but several share CompName.
        result = shared_paper_session.query(
            "SELECT X.Name FROM Company X WHERE X.Divisions.Employees[W]"
        )
        assert len(result) == 2  # one row per company name

    def test_shared_variables_across_select_items(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT W.Name, W.Salary FROM Employee W WHERE W.Salary > 200000"
        )
        rows = {(str(a), str(b)) for a, b in result.rows()}
        assert rows == {("'Pat'", "250000"), ("'Maria'", "300000")}

    def test_set_shaped_select_item_flattens(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT kim.FamMembers.Name"
        )
        assert result.scalars() == ["Lee", "Sue"]

    def test_column_naming(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT Who = X.Name FROM Company X"
        )
        assert result.columns == ("Who",)


class TestUpdates:
    def test_top_level_update(self, paper_session):
        paper_session.execute(
            "UPDATE CLASS Division SET d_eng.Function = 'research'"
        )
        assert paper_session.store.invoke_scalar(
            Atom("d_eng"), "Function"
        ) == Value("research")

    def test_update_with_variables(self, paper_session):
        paper_session.execute(
            "UPDATE CLASS Company SET uniSQL.Divisions[Y].Function = 'frozen'"
        )
        for name in ("d_eng", "d_adv"):
            assert paper_session.store.invoke_scalar(
                Atom(name), "Function"
            ) == Value("frozen")
        # acme divisions untouched
        assert paper_session.store.invoke_scalar(
            Atom("d_sales"), "Function"
        ) == Value("sales")

    def test_update_set_valued_attribute(self, paper_session):
        paper_session.execute(
            "UPDATE CLASS Employee SET ben.Qualifications = "
            "{'welder', 'driver'}"
        )
        values = paper_session.store.invoke(Atom("ben"), "Qualifications")
        assert values == frozenset({Value("welder"), Value("driver")})

    def test_update_requires_method_tail(self, paper_session):
        statement = parse_statement(
            "UPDATE CLASS Company SET uniSQL.Name = 'X'"
        )
        # fine: Name is a method step
        paper_session.evaluator().execute_update(statement)
        bad = ast.UpdateClass(
            cls="Company",
            assignments=(
                (ast.PathExpr(head=Atom("uniSQL")), ast.PathOperand(
                    ast.path_of_term(Value(1))
                )),
            ),
        )
        with pytest.raises(QueryError):
            paper_session.evaluator().execute_update(bad)


class TestRelationsInWhere:
    def test_relation_membership_condition(self, paper_session):
        store = paper_session.store
        store.declare_relation("Mentors", ["senior", "junior"])
        store.insert_tuple("Mentors", [Atom("pat"), Atom("acmeEmp")])
        store.insert_tuple("Mentors", [Atom("kim"), Atom("rich")])
        result = paper_session.query(
            "SELECT X, Y FROM Employee X WHERE Mentors(X, Y)"
        )
        assert {(str(a), str(b)) for a, b in result.rows()} == {
            ("pat", "acmeEmp"),
            ("kim", "rich"),
        }

    def test_relation_with_ground_argument(self, paper_session):
        store = paper_session.store
        store.declare_relation("Mentors", ["senior", "junior"])
        store.insert_tuple("Mentors", [Atom("pat"), Atom("acmeEmp")])
        result = paper_session.query("SELECT Y WHERE Mentors(pat, Y)")
        assert names(result) == ["acmeEmp"]


class TestGuards:
    def test_creating_query_rejected_by_plain_run(self, shared_paper_session):
        query = parse_query(
            "SELECT A = X.Name FROM Company X OID FUNCTION OF X"
        )
        with pytest.raises(QueryError):
            Evaluator(shared_paper_session.store).run(query)

    def test_method_item_rejected_by_plain_run(self, shared_paper_session):
        query = parse_query(
            "SELECT (M @ W) = W FROM Company X OID X WHERE X.Name[W]"
        )
        query = ast.Query(
            select=query.select,
            from_=query.from_,
            where=query.where,
            oid_vars=None,
            oid_scope=None,
        )
        with pytest.raises(QueryError):
            Evaluator(shared_paper_session.store).run(query)
