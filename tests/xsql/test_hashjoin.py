"""The set-at-a-time executor: parity, metrics, and cache invalidation.

Parity is checked three ways for every query: ``join_mode="hash"`` vs
``join_mode="nested"`` under ``plan="cost"`` (row sets *and* enumeration
order — the Sequence contract), and, where the fragment allows, vs the
:class:`~repro.xsql.evaluator.NaiveEvaluator` §3.4 semantics.
"""

import pytest

from repro import Session
from repro.errors import QueryError
from repro.schema.figure1 import build_figure1_schema
from repro.workloads.paper_db import populate_paper_database
from repro.oid import Atom, Value
from repro.xsql import build
from repro.xsql.operators import join_strategy_of
from repro.xsql.parser import parse_query

#: Explicit joins (examples (12)–(13) shapes) and quantified comparisons,
#: including vacuous-truth (`=all` over possibly-empty walks) edges.
JOIN_QUERIES = [
    # (13): self-join on a scalar attribute.
    "SELECT X, Y FROM Employee X, Employee Y WHERE X.Salary =some Y.Salary",
    # (12) shape: correlated equality (shared X) — nested fallback.
    "SELECT X, Y FROM Company X WHERE X.Name =some X.Divisions.Employees[Y].Name",
    # Fan-out chain join across two extents.
    "SELECT X, Y FROM Person X, Automobile Y "
    "WHERE X.Residence.City =some Y.Manufacturer.Headquarters.City",
    # Star: two joins hanging off one dimension variable.
    "SELECT D, X, Y FROM Division D, Employee X, Employee Y "
    "WHERE D.Manager.Salary =some X.Salary "
    "and D.Location.City =some Y.Residence.City",
    # Hash join followed by a nested-loop residual filter.
    "SELECT X, Y FROM Person X, Person Y "
    "WHERE X.Residence =some Y.Residence and X.Age < Y.Age",
    # `all` quantifiers stay on the nested path (not intersection).
    "SELECT X, Y FROM Employee X, Employee Y "
    "WHERE X.FamMembers.Age all<all Y.FamMembers.Age",
    "SELECT X, Y FROM Employee X, Employee Y "
    "WHERE X.OwnedVehicles.Color =all Y.OwnedVehicles.Color",
    # Inequality join: nested fallback.
    "SELECT X, Y FROM Division X, Division Y WHERE X.Function !=some Y.Function",
    # Semi-join against a ground path.
    "SELECT X FROM Person X WHERE X.Residence.City =some mary123.Residence.City",
    # Empty extent on one side: no rows, no crash.
    "SELECT X, Y FROM TurboEngine X, Employee Y WHERE X.HPpower =some Y.Salary",
]


@pytest.fixture(scope="module")
def stores():
    def fresh(join_mode):
        session = Session()
        build_figure1_schema(session.store)
        populate_paper_database(session.store)
        session.join_mode = join_mode
        return session

    return fresh


@pytest.mark.parametrize("text", JOIN_QUERIES)
def test_hash_matches_nested_and_naive(stores, text):
    hash_session = stores("hash")
    nested_session = stores("nested")
    hash_result = hash_session.query(text, plan="cost")
    nested_result = nested_session.query(text, plan="cost")
    assert hash_result.rows() == nested_result.rows(), text
    assert list(hash_result) == list(nested_result), text
    from repro.xsql import ast

    parsed = parse_query(text)
    n_vars = len(set(ast.free_variables(parsed)))
    if n_vars > 2:
        return  # naive enumerates universe**n: keep tier-1 fast
    naive = hash_session.naive_evaluator()
    try:
        naive_rows = naive.run(parsed).rows()
    except QueryError:
        return  # outside the naive fragment (e.g. SELECT of a raw var set)
    assert hash_result.rows() == naive_rows, text


def test_vacuous_truth_on_empty_walks(stores):
    # Both sides empty: `=all` holds vacuously, `=some` does not — the
    # executor must route these through compare(), not the hash table.
    session = stores("hash")
    nested = stores("nested")
    text = (
        "SELECT X, Y FROM TurboEngine X, TurboEngine Y "
        "WHERE X.HPpower =all Y.HPpower"
    )
    assert session.query(text, plan="cost").rows() == nested.query(
        text, plan="cost"
    ).rows()


def test_join_strategy_classification():
    x, y = build.ivar("X"), build.ivar("Y")
    xs = build.operand(build.path(x, "Salary"))
    ys = build.operand(build.path(y, "Salary"))
    ground = build.operand(build.path(Atom("mary123"), "Age"))
    assert join_strategy_of(build.compare(xs, "=", ys)) == "hash"
    assert join_strategy_of(build.compare(xs, "=", ys, rq="some")) == "hash"
    assert join_strategy_of(build.compare(xs, "=", ground)) == "semi"
    assert join_strategy_of(build.compare(ground, "=", ground)) == "nested"
    assert join_strategy_of(build.compare(xs, "=", ys, rq="all")) == "nested"
    assert join_strategy_of(build.compare(xs, "!=", ys)) == "nested"
    # Shared variable: correlation, not a join.
    xn = build.operand(build.path(x, "Name"))
    xd = build.operand(build.path(x, "Residence"))
    assert join_strategy_of(build.compare(xn, "=", xd)) == "nested"


def test_join_metrics_counted(stores):
    session = stores("hash")
    session.query(
        "SELECT X, Y FROM Employee X, Employee Y "
        "WHERE X.Salary =some Y.Salary",
        plan="cost",
    )
    counters = session.stats()["counters"]
    assert counters.get("join.hash", 0) >= 1


def test_path_cache_hit_miss_metrics(stores):
    session = stores("hash")
    text = "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"
    session.query(text, plan="cost")
    counters = session.stats()["counters"]
    assert counters.get("cache.path.miss", 0) >= 1
    before = counters.get("cache.path.hit", 0)
    session.query(text, plan="cost")
    after = session.stats()["counters"].get("cache.path.hit", 0)
    assert after > before  # the second run reuses memoized traversals


def test_path_cache_invalidated_by_data_writes(stores):
    session = stores("hash")
    store = session.store
    walker = session.evaluator().walker
    jane = next(iter(store.extent("Employee")))
    path = parse_query("SELECT X.Salary FROM Employee X").select[0].path
    env = {build.ivar("X"): jane}
    first = walker.value(path, env)
    assert walker.value(path, env) == first  # second call is a cache hit
    counters = session.stats()["counters"]
    assert counters.get("cache.path.hit", 0) >= 1
    store.set_attr(jane, "Salary", Value(99_000))
    assert walker.value(path, env) == frozenset({Value(99_000)})
    assert session.stats()["counters"].get("cache.path.invalidated", 0) >= 1


def test_path_cache_invalidated_by_schema_bumps(stores):
    session = stores("hash")
    walker = session.evaluator().walker
    from repro.oid import VarSort

    before = list(walker.universe(VarSort.CLASS))
    invalidated = session.stats()["counters"].get(
        "cache.path.invalidated", 0
    )
    session.store.declare_class("Hovercraft", ["Vehicle"])
    after = walker.universe(VarSort.CLASS)
    assert Atom("Hovercraft") in after
    assert len(after) == len(before) + 1
    assert (
        session.stats()["counters"].get("cache.path.invalidated", 0)
        > invalidated
    )


def test_path_cache_evicts_at_capacity():
    from repro.metrics import SessionMetrics
    from repro.xsql.paths import PathWalker

    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)
    metrics = SessionMetrics()
    walker = PathWalker(
        session.store, metrics=metrics, value_cache_size=2
    )
    path = parse_query("SELECT X.Age FROM Person X").select[0].path
    people = sorted(session.store.extent("Person"), key=str)[:3]
    for person in people:
        walker.value(path, {build.ivar("X"): person})
    counters = metrics.snapshot()["counters"]
    assert counters.get("cache.path.evict", 0) >= 1


def test_updates_keep_nested_semantics(stores):
    # WHERE clauses containing UPDATE conjuncts must never batch: the
    # pipeline routes them to the tuple-at-a-time reference engine even
    # under join_mode="hash", so effects are not reordered.
    hash_session = stores("hash")
    nested_session = stores("nested")
    text = (
        "SELECT X FROM Employee X "
        "WHERE UPDATE CLASS Employee SET X.Salary = 50000"
    )
    assert "engine=reference" in hash_session.explain(text, plan="cost")
    assert (
        hash_session.query(text, plan="cost").rows()
        == nested_session.query(text, plan="cost").rows()
    )


def test_join_mode_validation_and_cache_clear(stores):
    session = stores("hash")
    with pytest.raises(QueryError):
        session.join_mode = "sideways"
    assert session.join_mode == "hash"
    text = "SELECT X FROM Person X WHERE X.Age > 20"
    first = session.prepare(text, plan="cost")
    assert session.prepare(text, plan="cost") is first  # LRU hit
    session.join_mode = "nested"
    assert session.join_mode == "nested"
    # Switching executors drops cached compilations.
    assert session.prepare(text, plan="cost") is not first
