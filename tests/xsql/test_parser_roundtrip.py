"""Property: the parser's rendering re-parses to the same AST.

``str(query)`` is used in error messages, EXPLAIN output, and column
names; keeping it re-parseable means printed queries are always valid
XSQL.
"""

import pytest

from repro.xsql.parser import parse_query, parse_statement

CORPUS = [
    "SELECT mary123.Residence.City",
    "SELECT uniSQL.President.FamMembers.Name",
    "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
    "SELECT Z FROM Employee X, Automobile Y "
    "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
    "SELECT Y FROM Person X WHERE X.Y.City['newyork']",
    "SELECT #X WHERE TurboEngine subclassOf #X",
    "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
    "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] and "
    "X.President.OwnedVehicles.Color containsEq {'blue', 'red'} "
    "and X.President.Age < 30",
    "SELECT X WHERE X.Residence =all X.FamMembers.Residence",
    "SELECT X WHERE Y.FamMembers.Age all<all X.FamMembers.Age",
    "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4",
    "SELECT X.Name, W.Salary FROM Company X WHERE X.Divisions.Employees[W]",
    "SELECT X, Y FROM Company X "
    "WHERE X.Name =some X.Divisions.Employees[Y].Name",
    "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF X, W "
    "WHERE X.Divisions.Employees[W]",
    "SELECT CompName = Y.Name, Beneficiaries = {W} FROM Company Y "
    "OID FUNCTION OF Y WHERE Y.Retirees[W]",
    "SELECT X FROM Vehicle X WHERE 200000 <all "
    "(SELECT W FROM Division Y WHERE X.Manufacturer.(M @ Y.Name)[W])",
    "SELECT X WHERE X instanceOf Employee",
    "SELECT X WHERE not X.Retirees",
    "SELECT X WHERE X.A and (X.B or X.C)",
    "SELECT X FROM Person X WHERE X.*P.City['newyork']",
    "SELECT X FROM Person X UNION SELECT X FROM Company X",
]


@pytest.mark.parametrize("text", CORPUS)
def test_roundtrip(text):
    first = parse_statement(text)
    rendered = str(first)
    second = parse_statement(rendered)
    # Desugaring introduces fresh variables whose names depend on the
    # pass; compare the re-rendered forms, which normalizes them.
    assert str(second) == rendered, f"{text!r} -> {rendered!r}"
