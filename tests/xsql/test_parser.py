"""Tests for the XSQL parser, including every numbered paper query."""

import pytest

from repro.errors import XsqlSyntaxError
from repro.oid import Atom, Value, Variable, VarSort
from repro.xsql import ast
from repro.xsql.parser import parse_query, parse_statement, parse_statements


class TestPathExpressions:
    def test_simple_path(self):
        query = parse_query("SELECT mary123.Residence.City")
        item = query.select[0]
        assert isinstance(item, ast.PathItem)
        assert item.path.head == Atom("mary123")
        assert [s.method_expr.method.name for s in item.path.steps] == [
            "Residence",
            "City",
        ]

    def test_selectors(self):
        query = parse_query(
            "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']"
        )
        cond = query.where
        assert isinstance(cond, ast.PathCond)
        assert cond.path.steps[0].selector == Variable("Y")
        assert cond.path.steps[1].selector == Value("newyork")

    def test_variable_recognition_single_letters(self):
        query = parse_query("SELECT X WHERE X.WonNobelPrize")
        assert query.select[0].path.head == Variable("X")

    def test_from_declared_multiletter_variable(self):
        query = parse_query("SELECT Year FROM Numeral Year WHERE Year > 0")
        assert query.from_[0].var == Variable("Year")
        assert query.select[0].path.head == Variable("Year")

    def test_multiletter_names_are_atoms(self):
        query = parse_query("SELECT uniSQL.President")
        assert query.select[0].path.head == Atom("uniSQL")

    def test_method_expression_with_args(self):
        query = parse_query(
            "SELECT X FROM Company X WHERE X.(MngrSalary @ 'Sales')[W]"
        )
        step = query.where.path.steps[0]
        assert step.method_expr.method == Atom("MngrSalary")
        assert step.method_expr.args == (Value("Sales"),)

    def test_path_variable(self):
        query = parse_query("SELECT X WHERE X.*Y.City['newyork']")
        step = query.where.path.steps[0]
        method = step.method_expr.method
        assert isinstance(method, Variable) and method.sort == VarSort.PATH


class TestVariableSortUnification:
    def test_bare_variable_in_method_position_becomes_method_var(self):
        # Query (3): X.Y.City is shorthand for X."Y.City.
        query = parse_query(
            "SELECT Y FROM Person X WHERE X.Y.City['newyork']"
        )
        select_head = query.select[0].path.head
        assert select_head.sort == VarSort.METHOD
        step_method = query.where.path.steps[0].method_expr.method
        assert step_method == select_head

    def test_class_variable_unified(self):
        query = parse_query("SELECT #X WHERE TurboEngine subclassOf #X")
        assert query.select[0].path.head.sort == VarSort.CLASS

    def test_incompatible_sorts_rejected(self):
        with pytest.raises(XsqlSyntaxError):
            parse_query('SELECT #X WHERE Y."X and TurboEngine subclassOf #X')


class TestComparisons:
    def test_quantifier_positions(self):
        query = parse_query(
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"
        )
        comparison = query.where
        assert comparison.lq == "some" and comparison.rq is None
        assert comparison.op == ">"

    def test_eq_all(self):
        query = parse_query(
            "SELECT X WHERE X.Residence =all X.FamMembers.Residence"
        )
        assert query.where.lq is None and query.where.rq == "all"

    def test_all_lt_all(self):
        query = parse_query(
            "SELECT X WHERE Y.FamMembers.Age all<all X.FamMembers.Age"
        )
        assert query.where.lq == "all" and query.where.rq == "all"

    def test_set_comparators(self):
        query = parse_query(
            "SELECT X WHERE X.Colors containsEq {'blue', 'red'}"
        )
        assert query.where.op == "containsEq"
        assert isinstance(query.where.rhs, ast.SetLitOperand)

    def test_aggregates(self):
        query = parse_query("SELECT X WHERE count(X.FamMembers) > 4")
        assert isinstance(query.where.lhs, ast.AggOperand)
        assert query.where.lhs.fn == "count"

    def test_subquery_operand(self):
        query = parse_query(
            "SELECT X FROM Vehicle X WHERE 200000 <all "
            "(SELECT W FROM Division Y WHERE X.Age[W])"
        )
        assert isinstance(query.where.rhs, ast.SubQueryOperand)
        sub = query.where.rhs.query
        assert sub.from_[0].cls == Atom("Division")

    def test_arithmetic(self):
        query = parse_query("SELECT X WHERE X.Age > (1 + 2) * 3")
        rhs = query.where.rhs
        assert isinstance(rhs, ast.ArithOperand) and rhs.op == "*"

    def test_schema_conditions(self):
        query = parse_query("SELECT #X WHERE TurboEngine subclassOf #X")
        assert isinstance(query.where, ast.SchemaCond)
        query = parse_query("SELECT X WHERE X instanceOf Person")
        assert query.where.kind == "instanceOf"


class TestBooleans:
    def test_precedence_or_over_and(self):
        query = parse_query("SELECT X WHERE X.A and X.B or X.C")
        assert isinstance(query.where, ast.OrCond)
        assert isinstance(query.where.items[0], ast.AndCond)

    def test_not(self):
        query = parse_query("SELECT X WHERE not X.Retirees")
        assert isinstance(query.where, ast.NotCond)

    def test_parenthesized_condition(self):
        query = parse_query("SELECT X WHERE X.A and (X.B or X.C)")
        assert isinstance(query.where, ast.AndCond)
        assert isinstance(query.where.items[1], ast.OrCond)


class TestSelectClause:
    def test_named_items(self):
        query = parse_query(
            "SELECT CompName = Y.Name FROM Company Y OID FUNCTION OF Y"
        )
        assert query.select[0].name == "CompName"
        assert query.oid_vars == (Variable("Y"),)

    def test_set_item(self):
        query = parse_query(
            "SELECT Beneficiaries = {W} FROM Company Y OID FUNCTION OF Y"
        )
        assert isinstance(query.select[0], ast.SetItem)
        assert query.select[0].var == Variable("W")

    def test_method_item_with_desugared_path_argument(self):
        # §5: (MngrSalary @ Y.Name) adds the conjunct Y.Name[Z].
        query = parse_query(
            "SELECT (MngrSalary @ Y.Name) = W FROM Company X OID X "
            "WHERE X.Divisions[Y].Manager.Salary[W]"
        )
        item = query.select[0]
        assert isinstance(item, ast.MethodItem)
        (arg,) = item.args
        assert isinstance(arg, Variable)
        conjuncts = query.where.items
        assert any(
            isinstance(c, ast.PathCond)
            and c.path.head == Variable("Y")
            and c.path.steps[0].selector == arg
            for c in conjuncts
        )
        assert query.oid_scope == Variable("X")

    def test_multiple_items(self):
        query = parse_query("SELECT X.Name, W.Salary FROM Company X")
        assert len(query.select) == 2


class TestIdTerms:
    def test_view_id_term_selector_desugars(self):
        # §4.2: CompSalaries(X.Manufacturer, W) becomes CompSalaries(Y, W)
        # plus the conjunct X.Manufacturer[Y].
        query = parse_query(
            "SELECT X FROM Automobile X, Employee W "
            "WHERE CompSalaries(X.Manufacturer, W).Salary > 35000"
        )
        conjuncts = query.where.items
        app_conds = [
            c
            for c in conjuncts
            if isinstance(c, ast.Comparison)
        ]
        assert len(app_conds) == 1
        lhs_path = app_conds[0].lhs.path
        assert isinstance(lhs_path.head, ast.App)
        assert lhs_path.head.functor == "CompSalaries"
        assert all(
            isinstance(a, (Variable,)) for a in lhs_path.head.args
        )

    def test_ground_id_term(self):
        query = parse_query("SELECT secretary(dept77).Name")
        head = query.select[0].path.head
        assert isinstance(head, ast.App)
        assert head.args == (Atom("dept77"),)


class TestStatements:
    def test_create_view(self):
        statement = parse_statement(
            "CREATE VIEW V AS SUBCLASS OF Object "
            "SIGNATURE A = String, B : Numeral => Numeral "
            "SELECT A = X.Name FROM Company X OID FUNCTION OF X"
        )
        assert isinstance(statement, ast.CreateView)
        assert statement.superclass == "Object"
        assert statement.signatures[0].method == "A"
        assert statement.signatures[1].args == ("Numeral",)

    def test_create_class(self):
        statement = parse_statement(
            "CREATE CLASS Robot AS SUBCLASS OF Person "
            "SIGNATURE Serial => Numeral, Skills =>> String"
        )
        assert isinstance(statement, ast.CreateClass)
        assert statement.signatures[1].set_valued

    def test_alter_class(self):
        statement = parse_statement(
            "ALTER CLASS Company ADD SIGNATURE M : String => Numeral "
            "SELECT (M @ W) = W FROM Company X OID X WHERE X.Name[W]"
        )
        assert isinstance(statement, ast.AlterClass)
        assert statement.signature.method == "M"

    def test_update_class(self):
        statement = parse_statement(
            "UPDATE CLASS Company SET X.Divisions[Y].Manager.Salary = 10"
        )
        assert isinstance(statement, ast.UpdateClass)
        path, expr = statement.assignments[0]
        assert path.steps[-1].method_expr.method == Atom("Salary")

    def test_union(self):
        statement = parse_statement(
            "SELECT X FROM Person X UNION SELECT X FROM Company X"
        )
        assert isinstance(statement, ast.QueryOp)
        assert statement.op == "union"

    def test_script_splitting(self):
        statements = parse_statements(
            "SELECT X FROM Person X; SELECT Y FROM Company Y;"
        )
        assert len(statements) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XsqlSyntaxError):
            parse_query("SELECT X FROM Person X garbage garbage")

    def test_unknown_statement_rejected(self):
        with pytest.raises(XsqlSyntaxError):
            parse_statement("DROP TABLE Person")


class TestRoundTripRendering:
    def test_query_str_is_stable(self):
        text = "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"
        rendered = str(parse_query(text))
        assert "SELECT X" in rendered
        assert "FROM Employee X" in rendered
        assert "some" in rendered and ">" in rendered
