"""Property tests: the production evaluator matches the §3.4 oracle.

:class:`NaiveEvaluator` enumerates every sort-respecting substitution — the
paper's literal semantics.  These tests generate small random databases and
random queries from a §3-shaped grammar and require identical answers.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datamodel import ObjectStore
from repro.oid import Atom, Value
from repro.xsql.evaluator import Evaluator, NaiveEvaluator
from repro.xsql.parser import parse_query

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_store(people, edges, ages) -> ObjectStore:
    """A small Person/knows/Age database from generated data."""
    store = ObjectStore()
    store.declare_class("P")
    store.declare_class("Q", ["P"])
    store.declare_signature("P", "Age", "Numeral")
    store.declare_signature("P", "Knows", "P", set_valued=True)
    store.declare_signature("P", "Best", "P")
    atoms = [Atom(f"o{i}") for i in people]
    for index, atom in enumerate(atoms):
        cls = "Q" if index % 2 else "P"
        store.create_object(atom, [cls])
    for index, atom in enumerate(atoms):
        if index < len(ages):
            store.set_attr(atom, "Age", ages[index])
    for a, b in edges:
        if a < len(atoms) and b < len(atoms):
            store.add_to_set(atoms[a], "Knows", atoms[b])
            store.set_attr(atoms[a], "Best", atoms[b])
    return store


db_strategy = st.tuples(
    st.lists(st.integers(0, 5), min_size=1, max_size=5, unique=True),
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=8
    ),
    st.lists(st.integers(0, 99), max_size=5),
)

QUERIES = [
    "SELECT X FROM P X",
    "SELECT X FROM Q X",
    "SELECT X, Y FROM P X WHERE X.Knows[Y]",
    "SELECT X FROM P X WHERE X.Knows.Age some> 40",
    "SELECT X FROM P X WHERE X.Best[Y] and Y.Age > 30",
    "SELECT Y FROM P X WHERE X.Y.Age[W] and W < 50",
    "SELECT X.Age FROM P X WHERE X.Knows[X]",
    "SELECT X FROM P X WHERE X.Age =some Y.Age and X.Knows[Y]",
    "SELECT X FROM P X WHERE not X.Knows[Y]",
    "SELECT X FROM P X WHERE X.Knows[Y] or X.Best[Y]",
    "SELECT X FROM P X WHERE count(X.Knows) > 1",
    "SELECT X FROM P X WHERE X.Age all<all Y.Knows.Age and Y.Knows[X]",
    "SELECT #C FROM #C X WHERE X.Age > 50",
]


@pytest.mark.parametrize("query_text", QUERIES)
@given(data=db_strategy)
@SETTINGS
def test_smart_equals_naive(query_text, data):
    store = build_store(*data)
    query = parse_query(query_text)
    smart = Evaluator(store).run(query)
    naive = NaiveEvaluator(store).run(query)
    assert smart.rows() == naive.rows(), query_text
