"""The public index API on Session, and index-maintenance regressions."""

import pytest

from repro.errors import QueryError
from repro.oid import Atom, Value


class TestSessionIndexApi:
    def test_enable_and_list(self, paper_session):
        assert paper_session.indexes() == []
        paper_session.enable_index("Residence")
        paper_session.enable_index("Name")
        assert paper_session.indexes() == ["Name", "Residence"]
        paper_session.disable_index("Name")
        assert paper_session.indexes() == ["Residence"]

    def test_index_mode_default_and_validation(self, paper_session):
        assert paper_session.index_mode == "auto"
        paper_session.index_mode = "off"
        assert paper_session.index_mode == "off"
        with pytest.raises(QueryError):
            paper_session.index_mode = "sometimes"

    def test_index_mode_change_drops_cached_plans(self, paper_session):
        text = "SELECT X FROM Person X WHERE X.Name['mary']"
        paper_session.query(text, plan="cost")
        assert len(paper_session.pipeline) == 1
        paper_session.index_mode = "manual"
        assert len(paper_session.pipeline) == 0

    def test_store_indexes_attribute_is_gone(self, paper_session):
        # The deprecated read-only ``store.indexes`` property was removed;
        # ``session.indexes()`` is the supported surface.
        with pytest.raises(AttributeError):
            paper_session.store.indexes  # noqa: B018


class TestIndexMaintenanceUnderUpdates:
    def test_execute_update_maintains_index(self, paper_session):
        paper_session.enable_index("Salary")
        paper_session.execute(
            "UPDATE CLASS Employee SET ben.Salary = 95000"
        )
        owners = paper_session.store.lookup_by_value(
            "Salary", Value(95000)
        )
        assert owners == frozenset({Atom("ben")})

    def test_update_moves_old_index_entry(self, paper_session):
        paper_session.enable_index("Salary")
        store = paper_session.store
        old = store.invoke_scalar(Atom("ben"), "Salary")
        paper_session.execute(
            "UPDATE CLASS Employee SET ben.Salary = 95000"
        )
        assert Atom("ben") not in (
            store.lookup_by_value("Salary", old) or frozenset()
        )


class TestIndexesAcrossRestore:
    def test_restore_back_fills_session_indexes(self, paper_session):
        # Snapshot *before* the index exists: the restored store's payload
        # carries no index, so the session must re-enable and back-fill.
        payload = paper_session.snapshot()
        paper_session.enable_index("Residence")
        paper_session.restore(payload)
        assert paper_session.indexes() == ["Residence"]
        store = paper_session.store
        address = store.invoke_scalar(Atom("mary123"), "Residence")
        owners = store.lookup_by_value("Residence", address)
        assert owners is not None and Atom("mary123") in owners

    def test_snapshot_round_trips_indexes(self, paper_session):
        paper_session.enable_index("Residence")
        payload = paper_session.snapshot()
        paper_session.disable_index("Residence")
        paper_session.restore(payload)
        assert "Residence" in paper_session.indexes()

    def test_restored_index_tracks_new_writes(self, paper_session):
        payload = paper_session.snapshot()
        paper_session.enable_index("Salary")
        paper_session.restore(payload)
        paper_session.execute(
            "UPDATE CLASS Employee SET ben.Salary = 123"
        )
        assert paper_session.store.lookup_by_value(
            "Salary", Value(123)
        ) == frozenset({Atom("ben")})


class TestIndexesUnderDdl:
    def test_computed_method_makes_reverse_lookup_unsound(
        self, paper_session
    ):
        from repro.datamodel import PythonMethod

        store = paper_session.store
        store.enable_index("Salary")
        assert store.index_is_complete_for("Salary")
        # Installing a computed implementation means objects may carry
        # values with no stored cell: the index can no longer answer
        # reverse lookups exactly.
        store.define_method(
            "Employee",
            PythonMethod(name=Atom("Salary"), fn=lambda s, o: Value(0)),
        )
        assert not store.index_is_complete_for("Salary")
        assert store.lookup_by_value("Salary", Value(1)) is None

    def test_ddl_invalidates_cached_cost_plans(self, paper_session):
        text = "SELECT X FROM Person X WHERE X.Name['mary']"
        compiled = paper_session.prepare(text, plan="cost")
        assert not compiled.is_stale
        paper_session.execute(
            "CREATE CLASS Robot AS SUBCLASS OF Person"
        )
        assert compiled.is_stale
        compiled.run()
        assert not compiled.is_stale
