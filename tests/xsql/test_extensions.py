"""Tests for the language-margin extensions.

Covers features the paper mentions without fully developing: first-class
relation DDL/DML (§2 "Relations", upward compatibility with relational
SQL), id-terms as method arguments (footnote 11), path variables in the
SELECT clause (§3.1's "details of this extension are easy"), the
``explain`` introspection helper, and the conservative value-checking
store mode.
"""

import pytest

from repro.errors import QueryError, ValueTypeError, XsqlSyntaxError
from repro.oid import Atom, FuncOid, Value
from repro.datamodel import ObjectStore
from tests.conftest import names


class TestRelationStatements:
    def test_create_relation_and_insert_values(self, paper_session):
        paper_session.execute("CREATE RELATION Mentors (senior, junior)")
        paper_session.execute(
            "INSERT INTO Mentors VALUES (pat, acmeEmp), (kim, rich)"
        )
        result = paper_session.query("SELECT Y WHERE Mentors(pat, Y)")
        assert names(result) == ["acmeEmp"]

    def test_insert_from_query(self, paper_session):
        paper_session.execute("CREATE RELATION Salaries (who, amount)")
        paper_session.execute(
            "INSERT INTO Salaries SELECT W, W.Salary FROM Employee W"
        )
        relation = paper_session.store.relation("Salaries")
        assert (Atom("pat"), Value(250000)) in relation

    def test_insert_literal_values(self, paper_session):
        paper_session.execute("CREATE RELATION Limits (kind, cap)")
        paper_session.execute(
            "INSERT INTO Limits VALUES ('raise', 20)"
        )
        assert (Value("raise"), Value(20)) in paper_session.store.relation(
            "Limits"
        )

    def test_insert_arity_mismatch(self, paper_session):
        paper_session.execute("CREATE RELATION Solo (one)")
        with pytest.raises(QueryError):
            paper_session.execute(
                "INSERT INTO Solo SELECT W, W.Salary FROM Employee W"
            )

    def test_insert_into_unknown_relation(self, paper_session):
        with pytest.raises(Exception):
            paper_session.execute("INSERT INTO Ghost VALUES (1)")

    def test_relation_joined_with_paths(self, paper_session):
        paper_session.execute("CREATE RELATION Mentors (senior, junior)")
        paper_session.execute("INSERT INTO Mentors VALUES (pat, acmeEmp)")
        result = paper_session.query(
            "SELECT Y.Name FROM Employee X "
            "WHERE Mentors(X, Y) and X.Salary > 200000"
        )
        assert result.scalars() == ["Acme"]


class TestIdTermArguments:
    def test_ground_id_term_as_method_argument(self, paper_session):
        # footnote 11: "a method expression or an argument could even be
        # an id-term".
        store = paper_session.store
        store.declare_class("Committee")
        committee = FuncOid("committee", (Atom("uniSQL"),))
        store.create_object(committee, ["Committee"])
        store.declare_signature(
            "Employee", "ServesOn", "Boolean", args=["Committee"]
        )
        store.set_attr(Atom("kim"), "ServesOn", True, args=[committee])
        result = paper_session.query(
            "SELECT X FROM Employee X "
            "WHERE X.(ServesOn @ committee(uniSQL))[true]"
        )
        assert names(result) == ["kim"]


class TestPathVariableProjection:
    def test_select_path_variable(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT P WHERE mary123.*P.City['newyork']"
        )
        projected = {str(v) for v in result.single_column()}
        assert "attrpath(Residence)" in projected

    def test_empty_sequence_projected(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT P WHERE mary123.*P[mary123]"
        )
        assert "attrpath()" in {str(v) for v in result.single_column()}


class TestExplain:
    def test_strict_query_explained(self, shared_paper_session):
        text = shared_paper_session.explain(
            "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
            "and M.President.OwnedVehicles[X]"
        )
        assert "typing: strict" in text
        assert "coherent plan" in text
        assert "instantiations of M" in text

    def test_liberal_query_explained(self, nobel_session):
        text = nobel_session.explain("SELECT X WHERE X.WonNobelPrize")
        assert "typing: liberal-only" in text

    def test_outside_fragment_explained(self, shared_paper_session):
        text = shared_paper_session.explain("SELECT X WHERE X.A or X.B")
        assert "outside-fragment" in text

    def test_ddl_explained_as_statement(self, shared_paper_session):
        text = shared_paper_session.explain(
            "UPDATE CLASS Division SET d_eng.Function = 'x'"
        )
        assert text.startswith("statement:")


class TestValueValidationMode:
    def build(self) -> ObjectStore:
        store = ObjectStore(validate_values=True)
        store.declare_class("P")
        store.declare_class("Addr")
        store.declare_signature("P", "Residence", "Addr")
        store.declare_signature("P", "Age", "Numeral")
        return store

    def test_conforming_value_accepted(self):
        store = self.build()
        home = store.create_object(Atom("home"), ["Addr"])
        person = store.create_object(Atom("p1"), ["P"])
        store.set_attr(person, "Residence", home)
        store.set_attr(person, "Age", 33)

    def test_wrong_class_rejected(self):
        store = self.build()
        person = store.create_object(Atom("p1"), ["P"])
        stranger = store.create_object(Atom("s1"), ["P"])
        with pytest.raises(ValueTypeError):
            store.set_attr(person, "Residence", stranger)

    def test_wrong_literal_rejected(self):
        store = self.build()
        person = store.create_object(Atom("p1"), ["P"])
        with pytest.raises(ValueTypeError):
            store.set_attr(person, "Age", "not a number")

    def test_undeclared_attribute_unchecked(self):
        # no signature -> nothing to validate against (liberal stance).
        store = self.build()
        person = store.create_object(Atom("p1"), ["P"])
        store.set_attr(person, "Nickname", "zed")

    def test_default_store_never_validates(self):
        store = ObjectStore()
        store.declare_class("P")
        store.declare_signature("P", "Age", "Numeral")
        person = store.create_object(Atom("p1"), ["P"])
        store.set_attr(person, "Age", "free-form")  # no error
