"""Tests for quantified comparisons (paper §3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.oid import Atom, Value
from repro.xsql.comparisons import compare, element_compare


def values(*items):
    return frozenset(Value(i) for i in items)


class TestElementCompare:
    def test_numeric_ordering(self):
        assert element_compare("<", Value(1), Value(2))
        assert element_compare(">=", Value(2), Value(2))
        assert not element_compare(">", Value(1), Value(2))

    def test_int_float_equality(self):
        assert element_compare("=", Value(2), Value(2.0))

    def test_string_ordering(self):
        assert element_compare("<", Value("abc"), Value("abd"))

    def test_oid_equality(self):
        assert element_compare("=", Atom("a"), Atom("a"))
        assert element_compare("!=", Atom("a"), Atom("b"))

    def test_incomparable_pairs_fail_quietly(self):
        # metalogical typing: an ill-typed comparison yields no answers.
        assert not element_compare("<", Atom("a"), Value(1))
        assert not element_compare("<", Value("x"), Value(1))

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            element_compare("~", Value(1), Value(2))


class TestQuantifiers:
    def test_default_is_some(self):
        assert compare(">", values(10, 30), values(20))
        assert not compare(">", values(10, 15), values(20))

    def test_some_explicit(self):
        # _john13.FamMembers.Age some> 20 (§3.2).
        assert compare(">", values(22, 15), values(20), lq="some")

    def test_all_left(self):
        assert compare(">", values(25, 30), values(20), lq="all")
        assert not compare(">", values(25, 15), values(20), lq="all")

    def test_all_right(self):
        # 200000 <all (...): every element of the right exceeds the left.
        assert compare("<", values(200000), values(250000, 300000), rq="all")
        assert not compare(
            "<", values(200000), values(250000, 100000), rq="all"
        )

    def test_all_lt_all(self):
        assert compare("<", values(1, 2), values(3, 4), lq="all", rq="all")
        assert not compare(
            "<", values(1, 5), values(3, 4), lq="all", rq="all"
        )

    def test_all_vacuous_on_empty(self):
        # An empty nested result "contains only numerals greater than
        # $200,000" vacuously — query (13) depends on this.
        assert compare("<", values(200000), frozenset(), rq="all")
        assert compare(">", frozenset(), values(1), lq="all")

    def test_some_false_on_empty(self):
        assert not compare("<", values(1), frozenset(), rq="some")
        assert not compare("=", frozenset(), frozenset())

    def test_eq_all(self):
        # X.Residence =all X.FamMembers.Residence (§3.2).
        home = frozenset({Atom("addr1")})
        assert compare("=", home, frozenset({Atom("addr1")}), rq="all")
        assert not compare(
            "=", home, frozenset({Atom("addr1"), Atom("addr2")}), rq="all"
        )


class TestSetComparators:
    def test_containsEq(self):
        owned = frozenset({Value("blue"), Value("red"), Value("white")})
        wanted = frozenset({Value("blue"), Value("red")})
        assert compare("containsEq", owned, wanted)
        assert compare("containsEq", wanted, wanted)

    def test_contains_is_strict(self):
        s = frozenset({Value(1)})
        assert not compare("contains", s, s)
        assert compare("contains", s | {Value(2)}, s)

    def test_subset_pair(self):
        small = frozenset({Value(1)})
        big = frozenset({Value(1), Value(2)})
        assert compare("subset", small, big)
        assert compare("subsetEq", small, small)
        assert not compare("subset", small, small)


@given(
    st.frozensets(st.integers(-50, 50).map(Value), max_size=6),
    st.frozensets(st.integers(-50, 50).map(Value), max_size=6),
)
def test_quantifier_duality(left, right):
    """Property: all-quantified < is the negation of some-quantified >=.

    not (∀x∀y. x < y) == ∃x∃y. x >= y — standard duality, which pins the
    empty-set conventions (all vacuous-true, some false).
    """
    forall = compare("<", left, right, lq="all", rq="all")
    exists_ge = compare(">=", left, right, lq="some", rq="some")
    assert forall == (not exists_ge) or (not left or not right)
    if left and right:
        assert forall == (not exists_ge)


@given(
    st.frozensets(st.integers(0, 20).map(Value), max_size=5),
    st.frozensets(st.integers(0, 20).map(Value), max_size=5),
)
def test_set_comparator_consistency(left, right):
    """Property: contains == containsEq and not equal, etc."""
    assert compare("containsEq", left, right) == (
        compare("contains", left, right) or left == right
    )
    assert compare("subsetEq", left, right) == compare(
        "containsEq", right, left
    )
