"""Tests for the greedy (untyped) conjunct planner."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.typing.occurrences import flatten_conjunction
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql import ast
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query
from repro.xsql.planner import GreedyPlanner

UNFAVOURABLE = (
    "SELECT X FROM Vehicle X "
    "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]"
)


class TestReordering:
    def test_bound_head_scheduled_first(self):
        query = parse_query(UNFAVOURABLE)
        planned = GreedyPlanner().reorder(query)
        conjuncts = flatten_conjunction(planned.where)
        assert "Manufacturer" in str(conjuncts[0])

    def test_single_conjunct_untouched(self):
        query = parse_query("SELECT X FROM Person X WHERE X.Age > 3")
        assert GreedyPlanner().reorder(query) is query

    def test_updates_never_reordered(self):
        query = parse_query(
            "SELECT (M @ W) = nil FROM Company X, Numeral W OID X "
            "WHERE W < 20 and (UPDATE CLASS Company SET X.Name = 'x')"
        )
        planner = GreedyPlanner()
        assert not planner.applicable(query)
        assert planner.reorder(query) is query

    def test_comparisons_after_binders(self):
        query = parse_query(
            "SELECT X FROM Employee X WHERE W > 50000 and X.Salary[W]"
        )
        planned = GreedyPlanner().reorder(query)
        conjuncts = flatten_conjunction(planned.where)
        assert isinstance(conjuncts[0], ast.PathCond)
        assert isinstance(conjuncts[1], ast.Comparison)

    def test_no_where_is_noop(self):
        query = parse_query("SELECT X FROM Person X")
        assert GreedyPlanner().reorder(query) is query


class TestEquivalence:
    CORPUS = [
        UNFAVOURABLE,
        "SELECT X FROM Employee X WHERE W > 50000 and X.Salary[W]",
        "SELECT X FROM Company X WHERE D.Manager[M] and X.Divisions[D] "
        "and M.Salary[W] and W > 100000",
        "SELECT Y FROM Person X WHERE Y.City['newyork'] and X.Residence[Y]",
    ]

    @pytest.mark.parametrize("text", CORPUS)
    def test_planned_equals_unplanned(self, shared_paper_session, text):
        store = shared_paper_session.store
        query = parse_query(text)
        plain = Evaluator(store).run(query)
        planned = Evaluator(store).run(GreedyPlanner().reorder(query))
        assert planned.rows() == plain.rows()

    def test_session_plan_kwarg(self, shared_paper_session):
        plain = shared_paper_session.query(UNFAVOURABLE)
        optimized = shared_paper_session.query(UNFAVOURABLE, plan="greedy")
        assert optimized.rows() == plain.rows()

    @given(seed=st.integers(0, 5000))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_equivalence_on_random_databases(self, seed):
        store = generate_database(WorkloadConfig(n_people=14, seed=seed))
        query = parse_query(self.CORPUS[2])
        plain = Evaluator(store).run(query)
        planned = Evaluator(store).run(GreedyPlanner().reorder(query))
        assert planned.rows() == plain.rows()


class TestPerformanceShape:
    def test_greedy_beats_textual_order(self):
        import time

        store = generate_database(WorkloadConfig(n_people=80, seed=2))
        query = parse_query(UNFAVOURABLE)
        start = time.perf_counter()
        plain = Evaluator(store).run(query)
        plain_s = time.perf_counter() - start
        planned_query = GreedyPlanner().reorder(query)
        start = time.perf_counter()
        planned = Evaluator(store).run(planned_query)
        planned_s = time.perf_counter() - start
        assert planned.rows() == plain.rows()
        assert planned_s < plain_s
