"""Edge-case tests for the evaluator: operators, guards, rare shapes."""

import pytest

from repro.errors import QueryError, UnsafeQueryError
from repro.oid import Atom, Value, Variable, VarSort
from repro.xsql import ast
from repro.xsql.evaluator import Evaluator, NaiveEvaluator
from repro.xsql.parser import parse_query
from tests.conftest import names


class TestSetOperandOperators:
    def test_intersect(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Person X WHERE X.Residence.City =some "
            "({'newyork', 'austin'} INTERSECT {'austin'}) and X.Age > 45"
        )
        assert "john13" in names(result)
        assert "ben" not in names(result)  # ben lives in newyork

    def test_minus(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Person X WHERE X.Residence.City =some "
            "({'newyork', 'austin'} MINUS {'austin'})"
        )
        cities = {"mary123", "ben"} | {f"benfam{i}" for i in range(1, 6)}
        assert set(names(result)) == cities

    def test_path_union_path(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT W FROM Company X WHERE "
            "W =some (X.Retirees UNION X.Divisions.Employees) "
            "and X.Name['UniSQL']"
        )
        assert set(names(result)) == {"ret1", "john13", "ben", "rich"}


class TestComparisonFastPath:
    def test_membership_binding_matches_enumeration(
        self, shared_paper_session
    ):
        # Z =some <subquery> uses the bind-from-values fast path; the
        # equivalent filter formulation enumerates. Answers must agree.
        fast = shared_paper_session.query(
            "SELECT Z WHERE Z =some (SELECT W FROM Employee W "
            "WHERE W.Salary > 200000)"
        )
        slow = shared_paper_session.query(
            "SELECT W FROM Employee W WHERE W.Salary > 200000"
        )
        assert fast.single_column() == slow.single_column()

    def test_class_atom_not_bound_to_individual_var(
        self, shared_paper_session
    ):
        # the subquery yields class atoms; an individual variable must
        # not receive them through the fast path.
        result = shared_paper_session.query(
            "SELECT Z WHERE Z =some (SELECT #C WHERE "
            "TurboEngine subclassOf #C)"
        )
        assert len(result) == 0

    def test_ne_not_fast_pathed(self, shared_paper_session):
        # != with an unbound side keeps full enumeration semantics.
        smart = shared_paper_session.query(
            "SELECT X FROM Division X WHERE X.Name !=some "
            "(SELECT W WHERE d_eng.Name[W])"
        )
        assert "d_sales" in names(smart)


class TestPathVarGuards:
    def test_path_var_in_comparison_rejected(self, shared_paper_session):
        path_var = Variable("P", VarSort.PATH)
        comparison = ast.Comparison(
            lhs=ast.PathOperand(ast.path_of_term(path_var)),
            op="!=",
            rhs=ast.PathOperand(ast.path_of_term(Value(1))),
        )
        query = ast.Query(
            select=(ast.PathItem(ast.path_of_term(Value(1))),),
            where=comparison,
        )
        with pytest.raises(UnsafeQueryError):
            Evaluator(shared_paper_session.store).run(query)

    def test_naive_rejects_path_vars(self, shared_paper_session):
        with pytest.raises(UnsafeQueryError):
            shared_paper_session.query(
                "SELECT X FROM Person X WHERE X.*P.City['newyork']",
                engine="naive",
            )


class TestUpdateEdgeCases:
    def test_update_unknown_class(self, paper_session):
        with pytest.raises(Exception):
            paper_session.execute(
                "UPDATE CLASS Martian SET x.Foo = 1"
            )

    def test_update_assigning_empty_unsets(self, paper_session):
        store = paper_session.store
        assert store.invoke_scalar(Atom("d_eng"), "Function") is not None
        # RHS path with no value: the attribute becomes undefined.
        paper_session.execute(
            "UPDATE CLASS Division SET d_eng.Function = ghost99.Name"
        )
        assert store.invoke_scalar(Atom("d_eng"), "Function") is None

    def test_multiple_assignments(self, paper_session):
        paper_session.execute(
            "UPDATE CLASS Division SET d_eng.Function = 'a', "
            "d_adv.Function = 'b'"
        )
        store = paper_session.store
        assert store.invoke_scalar(Atom("d_eng"), "Function") == Value("a")
        assert store.invoke_scalar(Atom("d_adv"), "Function") == Value("b")


class TestResultColumnShapes:
    def test_default_column_is_path_text(self, shared_paper_session):
        result = shared_paper_session.query("SELECT mary123.Residence.City")
        assert result.columns == ("mary123.Residence.City",)

    def test_union_of_three(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Motorbike X UNION SELECT X FROM Bicycle X "
            "UNION SELECT X FROM Automobile X"
        )
        assert len(result) == 4

    def test_intersect_queries(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Employee X INTERSECT "
            "SELECT X FROM Person X WHERE X.Age > 50"
        )
        assert set(names(result)) == {"pat", "ret1"}
