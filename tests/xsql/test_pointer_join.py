"""PointerJoin: fusion selection rules, parity, and EXPLAIN surface.

A conjunct equating an oid-valued path with a range variable can skip
the joined extent entirely: forward navigation dereferences the stored
cell, backward navigation probes the index inverse.  Every mode must
stay bit-identical to hash and nested execution.
"""

import json

import pytest

from repro import Session
from repro.schema.figure1 import build_figure1_schema
from repro.workloads.paper_db import populate_paper_database

#: Forward-fusable on the paper database in auto mode: Employee's
#: extent (8) meets the minimum-extent gate.
FORWARD_QUERY = (
    "SELECT D, Y FROM Division D, Employee Y WHERE D.Manager =some Y"
)
#: Vehicle's restricted extent (4) is under the auto gate: fuses only
#: under force.
SMALL_EXTENT_QUERY = (
    "SELECT X, Y FROM Employee X, Vehicle Y WHERE X.OwnedVehicles =some Y"
)
#: C occurs twice, so forward fusion of C is impossible; the backward
#: head X.Manufacturer fuses X iff the Manufacturer index answers
#: reverse lookups completely.
BACKWARD_QUERY = (
    "SELECT X, C FROM Automobile X, Company C "
    "WHERE X.Manufacturer =some C and C.Name['Acme']"
)
#: Two navigation edges off one dimension variable.
STAR_QUERY = (
    "SELECT D, M, A FROM Division D, Employee M, Address A "
    "WHERE D.Manager =some M and D.Location =some A"
)

PARITY_QUERIES = [
    FORWARD_QUERY,
    SMALL_EXTENT_QUERY,
    BACKWARD_QUERY,
    STAR_QUERY,
    # Scalar (non-oid) equality: classified pointer-ineligible, must
    # still agree everywhere.
    "SELECT X, Y FROM Employee X, Employee Y WHERE X.Salary =some Y.Salary",
]


def fresh_session() -> Session:
    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)
    return session


def cost_entries(session, text, **kwargs):
    compiled = session.prepare(text, plan="cost", **kwargs)
    payload = json.loads(compiled.explain(format="json"))
    return payload["cost"]["entries"]


def strategies(entries):
    return [
        entry["join_strategy"] for entry in entries if entry["kind"] == "cond"
    ]


def access_paths(entries):
    return {
        entry["label"]: entry["access_path"]
        for entry in entries
        if entry["kind"] == "from"
    }


class TestSelection:
    def test_forward_fusion_in_auto_mode(self):
        entries = cost_entries(fresh_session(), FORWARD_QUERY)
        assert strategies(entries) == ["pointer"]
        paths = access_paths(entries)
        assert paths["FROM Employee Y"] == "pointer-fused"
        assert paths["FROM Division D"] == "extent-scan"
        cond = [e for e in entries if e["kind"] == "cond"][0]
        assert cond["access_path"] == "pointer-forward"
        assert cond["direction"] == "forward"

    def test_small_extent_skipped_in_auto_but_forced(self):
        auto = cost_entries(fresh_session(), SMALL_EXTENT_QUERY)
        assert strategies(auto) == ["hash"]
        forced = cost_entries(
            fresh_session(), SMALL_EXTENT_QUERY, pointer_join="force"
        )
        assert strategies(forced) == ["pointer"]

    def test_off_mode_never_fuses(self):
        entries = cost_entries(
            fresh_session(), FORWARD_QUERY, pointer_join="off"
        )
        assert strategies(entries) == ["hash"]
        assert "pointer-fused" not in access_paths(entries).values()

    def test_sole_occurrence_rule(self):
        # Y also appears in a second conjunct: its scan cannot be
        # skipped, so no fusion even under force.
        text = (
            "SELECT D, Y FROM Division D, Employee Y "
            "WHERE D.Manager =some Y and Y.Salary > 0"
        )
        entries = cost_entries(
            fresh_session(), text, pointer_join="force"
        )
        assert "pointer" not in strategies(entries)
        assert "pointer-fused" not in access_paths(entries).values()

    def test_backward_requires_complete_index(self):
        unindexed = cost_entries(
            fresh_session(), BACKWARD_QUERY, pointer_join="force"
        )
        assert "pointer" not in strategies(unindexed)

        session = fresh_session()
        session.enable_index("Manufacturer")
        entries = cost_entries(
            session, BACKWARD_QUERY, pointer_join="force"
        )
        conds = {e["label"]: e for e in entries if e["kind"] == "cond"}
        fused = conds["X.Manufacturer =some C"]
        assert fused["join_strategy"] == "pointer"
        assert fused["direction"] == "backward"
        assert access_paths(entries)["FROM Automobile X"] == "pointer-fused"

    def test_invalid_mode_rejected(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            fresh_session().prepare(
                FORWARD_QUERY, plan="cost", pointer_join="sideways"
            )


class TestParity:
    @pytest.mark.parametrize("text", PARITY_QUERIES)
    def test_pointer_matches_hash_nested_and_columnar(self, text):
        def run(**kwargs):
            session = fresh_session()
            session.enable_index("Manufacturer")
            return session.query(text, plan="cost", **kwargs)

        hash_result = run(pointer_join="off")
        pointer_result = run(pointer_join="force")
        nested_session = fresh_session()
        nested_session.enable_index("Manufacturer")
        nested_session.join_mode = "nested"
        nested_result = nested_session.query(text, plan="cost")
        columnar_result = run(
            pointer_join="force", batch_format="columnar", workers=2
        )
        assert pointer_result.rows() == hash_result.rows(), text
        assert pointer_result.rows() == nested_result.rows(), text
        assert pointer_result.rows() == columnar_result.rows(), text
        # The Sequence contract: enumeration order must not leak the
        # join machinery either.
        assert list(pointer_result) == list(hash_result), text
        assert list(pointer_result) == list(columnar_result), text

    def test_nested_join_mode_ignores_fusion_marks(self):
        session = fresh_session()
        session.join_mode = "nested"
        nested = session.query(
            FORWARD_QUERY, plan="cost", pointer_join="force"
        )
        reference = fresh_session().query(FORWARD_QUERY, plan="cost")
        assert nested.rows() == reference.rows()
        assert list(nested) == list(reference)

    def test_ddl_after_prepare_recompiles_correctly(self):
        # Losing the backward index is DDL: the prepared statement is
        # transparently recompiled without fusion, same rows.
        session = fresh_session()
        session.enable_index("Manufacturer")
        compiled = session.prepare(
            BACKWARD_QUERY, plan="cost", pointer_join="force"
        )
        before = compiled.run().rows()
        session.disable_index("Manufacturer")
        after = session.query(
            BACKWARD_QUERY, plan="cost", pointer_join="force"
        )
        assert after.rows() == before


class TestExplainSurface:
    def test_analyze_shows_direction_and_derefs(self):
        session = fresh_session()
        report = session.explain(FORWARD_QUERY, plan="cost", analyze=True)
        assert "join=pointer" in report
        assert "pointer-fused" in report
        assert "PointerJoin" in report
        assert "forward derefs=4 derefs/batch=4" in report
        assert "forward navigation binds Y" in report
        assert "pointer_join=auto" in report

    def test_options_cache_key_separates_modes(self):
        session = fresh_session()
        auto = session.prepare(FORWARD_QUERY, plan="cost")
        off = session.prepare(
            FORWARD_QUERY, plan="cost", pointer_join="off"
        )
        assert auto is not off
        assert session.prepare(FORWARD_QUERY, plan="cost") is auto
