"""Fuzz property: the parser is total over arbitrary input.

Whatever bytes arrive, the parser either returns an AST or raises
:class:`XsqlSyntaxError` (with position info) — never an internal
exception.  This is the robustness contract the REPL and Session rely on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XsqlError
from repro.xsql.lexer import tokenize
from repro.xsql.parser import parse_statement

# plausible XSQL fragments plus noise, to reach deep parser states
_TOKENS = st.sampled_from(
    [
        "SELECT", "FROM", "WHERE", "OID", "FUNCTION", "OF", "AND", "OR",
        "NOT", "CREATE", "VIEW", "CLASS", "ALTER", "UPDATE", "SET",
        "INSERT", "INTO", "VALUES", "UNION", "X", "Y", "Person", "Name",
        "mary123", "42", "'text'", ".", ",", "(", ")", "[", "]", "{", "}",
        "@", "=", "<", ">", "<=", "!=", "=>", "=>>", "#X", '"Y', "*", "+",
        "-", "/", "some", "all", "count", "subclassOf", "nil", ";", ":",
    ]
)


@given(st.lists(_TOKENS, max_size=25).map(" ".join))
@settings(max_examples=300, deadline=None)
def test_parser_never_raises_internal_errors(source):
    try:
        parse_statement(source)
    except XsqlError:
        pass  # the declared failure mode


@given(st.text(max_size=60))
@settings(max_examples=300, deadline=None)
def test_lexer_total_over_arbitrary_text(source):
    try:
        tokens = tokenize(source)
    except XsqlError:
        return
    assert tokens[-1].kind == "EOF"


@given(st.text(alphabet="SELECT FROMWHERE.XY[]()'#\"*=<>", max_size=40))
@settings(max_examples=300, deadline=None)
def test_parser_total_over_query_like_noise(source):
    try:
        parse_statement(source)
    except XsqlError:
        pass
