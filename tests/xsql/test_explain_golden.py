"""Golden-file tests for ``CompiledQuery.explain`` across the §6.2 spectrum.

One golden file per typing discipline (strict, liberal-only, ill-typed,
outside-fragment) in both renderings (``.txt`` for ``format="text"``,
``.json`` for ``format="json"``), plus a ``plan="cost"`` golden showing
the join order / access-path section.  Regenerate after an intentional
format change with::

    REGEN_EXPLAIN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/xsql/test_explain_golden.py
"""

import json
import os
import re
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"

STRICT_QUERY = (
    "SELECT X FROM Vehicle X "
    "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]"
)
ILL_TYPED_QUERY = "SELECT X FROM Person X WHERE X.Divisions[D]"
OUTSIDE_FRAGMENT_QUERY = "SELECT X WHERE X.A or X.B"
LIBERAL_ONLY_QUERY = "SELECT X WHERE X.WonNobelPrize"


def _check(name: str, actual: str, suffix: str = "txt") -> None:
    path = GOLDEN_DIR / f"explain_{name}.{suffix}"
    if os.environ.get("REGEN_EXPLAIN_GOLDENS"):
        path.write_text(actual + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), f"missing golden file {path}"
    assert actual + "\n" == path.read_text(), (
        f"explain output drifted from {path.name}; regenerate with "
        f"REGEN_EXPLAIN_GOLDENS=1 if the change is intentional"
    )


def test_strict_discipline_golden(shared_paper_session):
    compiled = shared_paper_session.prepare(STRICT_QUERY, plan="typed")
    _check("strict", compiled.explain())
    assert compiled.discipline == "strict"


def test_strict_discipline_json_golden(shared_paper_session):
    compiled = shared_paper_session.prepare(STRICT_QUERY, plan="typed")
    rendered = compiled.explain(format="json")
    json.loads(rendered)  # must be valid JSON regardless of golden state
    _check("strict", rendered, suffix="json")


def test_ill_typed_discipline_golden(shared_paper_session):
    compiled = shared_paper_session.prepare(ILL_TYPED_QUERY)
    _check("ill_typed", compiled.explain())
    assert compiled.discipline == "ill-typed"


def test_outside_fragment_discipline_golden(shared_paper_session):
    compiled = shared_paper_session.prepare(OUTSIDE_FRAGMENT_QUERY)
    _check("outside_fragment", compiled.explain())
    assert compiled.discipline == "outside-fragment"


def test_liberal_only_discipline_golden(nobel_session):
    compiled = nobel_session.prepare(LIBERAL_ONLY_QUERY)
    _check("liberal_only", compiled.explain())
    assert compiled.discipline == "liberal-only"


def test_cost_plan_golden(paper_session):
    # A fresh (non-shared) session: cost planning under index_mode="auto"
    # may enable indexes, and the golden pins est= and act= columns after
    # one execution.
    compiled = paper_session.prepare(STRICT_QUERY, plan="cost")
    compiled.run()
    _check("cost", compiled.explain())


def test_cost_plan_json_golden(paper_session):
    compiled = paper_session.prepare(STRICT_QUERY, plan="cost")
    compiled.run()
    rendered = compiled.explain(format="json")
    data = json.loads(rendered)
    entries = data["cost"]["entries"]
    assert all("actual_rows" in entry for entry in entries)
    _check("cost", rendered, suffix="json")


JOIN_QUERY = (
    "SELECT X, Y FROM Employee X, Employee Y "
    "WHERE X.Salary =some Y.Salary"
)


def test_hashjoin_plan_golden(paper_session):
    # An explicit join (example (13) shape): the cond entry must carry
    # the planner's join=hash annotation and the traced actual rows.
    compiled = paper_session.prepare(JOIN_QUERY, plan="cost")
    compiled.run()
    _check("hashjoin", compiled.explain())


def test_hashjoin_plan_json_golden(paper_session):
    compiled = paper_session.prepare(JOIN_QUERY, plan="cost")
    compiled.run()
    rendered = compiled.explain(format="json")
    data = json.loads(rendered)
    strategies = [
        entry.get("join_strategy")
        for entry in data["cost"]["entries"]
        if entry["kind"] == "cond"
    ]
    assert strategies == ["hash"]
    _check("hashjoin", rendered, suffix="json")


# EXPLAIN ANALYZE goldens: wall times vary run to run, so both renderings
# are normalized (time=...ms / "time_ms": ...) before comparison — and
# before regeneration, so the checked-in goldens are already normalized.
_TIME_TEXT = re.compile(r"time=\d+(?:\.\d+)?ms")
_TIME_JSON = re.compile(r'"time_ms": \d+(?:\.\d+)?')


def _normalize_times(rendered: str) -> str:
    rendered = _TIME_TEXT.sub("time=<t>ms", rendered)
    return _TIME_JSON.sub('"time_ms": 0', rendered)


def test_explain_analyze_golden(paper_session):
    # plan="cost" on a fresh session with the default join_mode="hash":
    # the operator tree carries a HashJoin with est= and act= columns.
    compiled = paper_session.prepare(JOIN_QUERY, plan="cost")
    rendered = compiled.explain(analyze=True)
    assert "physical operators:" in rendered
    _check("analyze", _normalize_times(rendered))


def test_explain_analyze_json_golden(paper_session):
    compiled = paper_session.prepare(JOIN_QUERY, plan="cost")
    rendered = compiled.explain(format="json", analyze=True)
    tree = json.loads(rendered)["operators"]
    assert tree["operator"] == "Project"
    join = tree["children"][0]
    assert join["operator"] == "HashJoin"
    # est-vs-actual is readable per operator straight from the JSON.
    assert join["estimated_rows"] == 32.0
    assert join["rows_out"] == 10
    _check("analyze", _normalize_times(rendered), suffix="json")


def test_explain_analyze_is_repeatable(paper_session):
    compiled = paper_session.prepare(JOIN_QUERY, plan="cost")
    first = _normalize_times(compiled.explain(analyze=True))
    second = _normalize_times(compiled.explain(analyze=True))
    assert first == second


def test_explain_analyze_rejects_ddl(paper_session):
    from repro.errors import QueryError

    compiled = paper_session.prepare("CREATE CLASS Spaceship")
    with pytest.raises(QueryError):
        compiled.explain(analyze=True)


def test_explain_rejects_unknown_format(shared_paper_session):
    from repro.errors import QueryError

    compiled = shared_paper_session.prepare(STRICT_QUERY)
    with pytest.raises(QueryError):
        compiled.explain(format="yaml")


def test_session_explain_matches_compiled_explain(shared_paper_session):
    # Session.explain is a convenience over prepare().explain().
    assert shared_paper_session.explain(
        STRICT_QUERY, plan="typed"
    ) == shared_paper_session.prepare(STRICT_QUERY, plan="typed").explain()


def test_explain_on_non_query_statement(paper_session):
    text = "CREATE CLASS Spaceship AS SUBCLASS OF Vehicle"
    assert paper_session.explain(text).startswith("statement:")
