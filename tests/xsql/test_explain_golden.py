"""Golden-file tests for ``CompiledQuery.explain`` across the §6.2 spectrum.

One golden file per typing discipline (strict, liberal-only, ill-typed,
outside-fragment).  Regenerate after an intentional format change with::

    REGEN_EXPLAIN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/xsql/test_explain_golden.py
"""

import os
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"

STRICT_QUERY = (
    "SELECT X FROM Vehicle X "
    "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]"
)
ILL_TYPED_QUERY = "SELECT X FROM Person X WHERE X.Divisions[D]"
OUTSIDE_FRAGMENT_QUERY = "SELECT X WHERE X.A or X.B"
LIBERAL_ONLY_QUERY = "SELECT X WHERE X.WonNobelPrize"


def _check(name: str, actual: str) -> None:
    path = GOLDEN_DIR / f"explain_{name}.txt"
    if os.environ.get("REGEN_EXPLAIN_GOLDENS"):
        path.write_text(actual + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), f"missing golden file {path}"
    assert actual + "\n" == path.read_text(), (
        f"explain output drifted from {path.name}; regenerate with "
        f"REGEN_EXPLAIN_GOLDENS=1 if the change is intentional"
    )


def test_strict_discipline_golden(shared_paper_session):
    compiled = shared_paper_session.prepare(STRICT_QUERY, plan="typed")
    _check("strict", compiled.explain())
    assert compiled.discipline == "strict"


def test_ill_typed_discipline_golden(shared_paper_session):
    compiled = shared_paper_session.prepare(ILL_TYPED_QUERY)
    _check("ill_typed", compiled.explain())
    assert compiled.discipline == "ill-typed"


def test_outside_fragment_discipline_golden(shared_paper_session):
    compiled = shared_paper_session.prepare(OUTSIDE_FRAGMENT_QUERY)
    _check("outside_fragment", compiled.explain())
    assert compiled.discipline == "outside-fragment"


def test_liberal_only_discipline_golden(nobel_session):
    compiled = nobel_session.prepare(LIBERAL_ONLY_QUERY)
    _check("liberal_only", compiled.explain())
    assert compiled.discipline == "liberal-only"


def test_session_explain_matches_compiled_explain(shared_paper_session):
    # Session.explain is a convenience over prepare().explain().
    assert shared_paper_session.explain(
        STRICT_QUERY, plan="typed"
    ) == shared_paper_session.prepare(STRICT_QUERY, plan="typed").explain()


def test_explain_on_non_query_statement(paper_session):
    text = "CREATE CLASS Spaceship AS SUBCLASS OF Vehicle"
    assert paper_session.explain(text).startswith("statement:")
