"""The staged pipeline: CompiledQuery, the statement cache, and metrics."""

import pytest

from repro.errors import QueryError
from repro.xsql.pipeline import ENGINES, PLAN_MODES, CompiledQuery
from tests.conftest import names

STRICT_QUERY = (
    "SELECT X FROM Vehicle X "
    "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]"
)
FAMILY_QUERY = "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"


class TestCompiledQuery:
    def test_prepare_returns_runnable_compiled_query(self, paper_session):
        compiled = paper_session.prepare(FAMILY_QUERY)
        assert isinstance(compiled, CompiledQuery)
        assert names(compiled.run()) == ["john13", "kim"]
        # Re-running yields the same answer without recompiling.
        assert names(compiled.run()) == ["john13", "kim"]
        assert paper_session.stats()["timers"]["parse"]["count"] == 1

    def test_compiled_query_is_callable(self, paper_session):
        compiled = paper_session.prepare(FAMILY_QUERY)
        assert compiled().rows() == compiled.run().rows()

    def test_prepared_query_sees_later_data_updates(self, paper_session):
        compiled = paper_session.prepare(
            "SELECT X FROM Employee X WHERE X.Salary > 90000"
        )
        before = len(compiled.run())
        paper_session.execute("UPDATE CLASS Employee SET ben.Salary = 95000")
        # Data updates do not invalidate the plan, but the execution
        # always runs against current state.
        assert len(compiled.run()) == before + 1

    def test_ddl_marks_compilation_stale(self, paper_session):
        compiled = paper_session.prepare(FAMILY_QUERY)
        assert not compiled.is_stale
        paper_session.execute("CREATE CLASS Spacecraft")
        assert compiled.is_stale
        assert names(compiled.run()) == ["john13", "kim"]
        assert not compiled.is_stale
        assert (
            paper_session.stats()["counters"]["cache.invalidated"] >= 1
        )


class TestPlanAndEngineMatrix:
    @pytest.mark.parametrize("plan", PLAN_MODES)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_modes_agree(self, shared_paper_session, plan, engine):
        result = shared_paper_session.query(
            STRICT_QUERY, plan=plan, engine=engine
        )
        reference = shared_paper_session.query(STRICT_QUERY)
        assert result.rows() == reference.rows()

    def test_typed_plan_applies_restrictions(self, paper_session):
        paper_session.query(STRICT_QUERY, plan="typed")
        stats = paper_session.stats()
        assert stats["observations"]["restriction"]["count"] >= 1
        assert "plan.typed.fallback" not in stats["counters"]

    def test_typed_plan_falls_back_outside_strict(self, paper_session):
        # Ill-typed per §6.2, but evaluable: typed planning must fall
        # back to the greedy planner instead of raising.
        text = "SELECT X FROM Person X WHERE X.Divisions[D]"
        result = paper_session.query(text, plan="typed")
        assert result.rows() == paper_session.query(text).rows()
        assert paper_session.stats()["counters"]["plan.typed.fallback"] == 1

    def test_naive_engine_rejects_ddl(self, paper_session):
        with pytest.raises(QueryError):
            paper_session.query("CREATE CLASS Oddity", engine="naive")

    def test_unknown_plan_and_engine_raise(self, shared_paper_session):
        with pytest.raises(QueryError):
            shared_paper_session.query(FAMILY_QUERY, plan="bogus")
        with pytest.raises(QueryError):
            shared_paper_session.query(FAMILY_QUERY, engine="bogus")


class TestStatementCache:
    def test_repeated_query_hits_cache(self, paper_session):
        paper_session.query(FAMILY_QUERY)
        paper_session.query(FAMILY_QUERY)
        counters = paper_session.stats()["counters"]
        assert counters["cache.miss"] == 1
        assert counters["cache.hit"] == 1
        assert paper_session.stats()["timers"]["parse"]["count"] == 1

    def test_plan_modes_cache_separately(self, paper_session):
        paper_session.query(FAMILY_QUERY, plan="none")
        paper_session.query(FAMILY_QUERY, plan="greedy")
        assert paper_session.stats()["counters"]["cache.miss"] == 2

    def test_ddl_invalidates_cached_statement(self, paper_session):
        paper_session.query(FAMILY_QUERY)
        paper_session.execute("CREATE CLASS Starbase")
        paper_session.query(FAMILY_QUERY)
        counters = paper_session.stats()["counters"]
        assert counters["cache.invalidated"] >= 1

    def test_data_updates_do_not_invalidate(self, paper_session):
        paper_session.query(FAMILY_QUERY)
        paper_session.execute("UPDATE CLASS Employee SET ben.Salary = 1")
        paper_session.query(FAMILY_QUERY)
        counters = paper_session.stats()["counters"]
        assert "cache.invalidated" not in counters
        assert counters["cache.hit"] == 1

    def test_lru_eviction(self, paper_session):
        paper_session.pipeline.cache_size = 2
        paper_session.query("SELECT X FROM Company X")
        paper_session.query("SELECT X FROM Division X")
        paper_session.query("SELECT X FROM Vehicle X")
        assert len(paper_session.pipeline) == 2
        assert paper_session.stats()["counters"]["cache.evicted"] == 1
        # The evicted (oldest) entry misses again.
        paper_session.query("SELECT X FROM Company X")
        assert paper_session.stats()["counters"]["cache.miss"] == 4

    def test_replace_store_clears_cache(self, paper_session):
        paper_session.query(FAMILY_QUERY)
        assert len(paper_session.pipeline) == 1
        paper_session.restore(paper_session.snapshot())
        assert len(paper_session.pipeline) == 0


class TestRemovedShims:
    """The deprecation shims are gone; the replacements are the API."""

    def test_optimize_kwarg_is_removed(self, paper_session):
        with pytest.raises(TypeError):
            paper_session.query(FAMILY_QUERY, optimize=True)
        # The replacement spelling works.
        result = paper_session.query(FAMILY_QUERY, plan="greedy")
        assert names(result) == ["john13", "kim"]

    def test_naive_method_is_removed(self, paper_session):
        assert not hasattr(paper_session, "naive")
        result = paper_session.query(
            "SELECT X FROM Vehicle X", engine="naive"
        )
        assert result.rows() == paper_session.query(
            "SELECT X FROM Vehicle X"
        ).rows()


class TestScriptSplitting:
    def test_semicolon_inside_string_literal(self, paper_session):
        results = paper_session.execute_script(
            "SELECT X FROM Person X WHERE X.Name['a;b']; "
            "SELECT X FROM Vehicle X;"
        )
        assert len(results) == 2
        assert len(results[0]) == 0
        assert len(results[1]) == 4

    def test_semicolon_inside_comment(self, paper_session):
        results = paper_session.execute_script(
            "SELECT X FROM Vehicle X  -- trailing; comment\n;"
            "SELECT X FROM Company X;"
        )
        assert len(results) == 2

    def test_update_with_semicolon_in_value(self, paper_session):
        from repro.oid import Atom, Value

        paper_session.execute_script(
            "UPDATE CLASS Division SET d_eng.Function = 'R;D';"
        )
        assert paper_session.store.invoke_scalar(
            Atom("d_eng"), "Function"
        ) == Value("R;D")

    def test_trailing_statement_without_semicolon(self, paper_session):
        results = paper_session.execute_script(
            "SELECT X FROM Vehicle X; SELECT X FROM Company X"
        )
        assert len(results) == 2


class TestStats:
    def test_stats_snapshot_shape(self, paper_session):
        paper_session.query(FAMILY_QUERY, plan="typed")
        stats = paper_session.stats()
        assert set(stats) == {"counters", "timers", "observations"}
        for stage in ("parse", "normalize", "analyze", "plan", "execute"):
            assert stats["timers"][stage]["count"] >= 1
        assert stats["observations"]["rows"]["count"] == 1
        assert stats["counters"]["statements"] == 1

    def test_statement_line_reports_stages(self, paper_session):
        paper_session.query(FAMILY_QUERY)
        line = paper_session.metrics.statement_line()
        assert "parse=" in line and "execute=" in line
        assert "cache=miss" in line

    def test_summary_mentions_counters(self, paper_session):
        paper_session.query(FAMILY_QUERY)
        paper_session.query(FAMILY_QUERY)
        summary = paper_session.metrics.summary()
        assert "cache.hit" in summary
        assert "stage parse" in summary


class TestPercentileCurve:
    """The scale-keyed percentile curves the bench harness reports."""

    def test_curve_reads_off_one_statistic_per_key(self):
        from repro.metrics import PercentileCurve

        curve = PercentileCurve()
        for tier, values in (("1k", [1, 2, 3]), ("10k", [10, 20, 30])):
            for value in values:
                curve.observe(tier, value)
        assert curve.curve("p50") == [("1k", 2), ("10k", 20)]
        assert curve.curve("max") == [("1k", 3), ("10k", 30)]
        assert curve.curve("count") == [("1k", 3), ("10k", 3)]
        assert curve.curve("mean") == [("1k", 2.0), ("10k", 20.0)]

    def test_as_dict_keeps_key_order(self):
        from repro.metrics import PercentileCurve

        curve = PercentileCurve()
        curve.observe("10k", 5.0)
        curve.observe("1k", 1.0)
        dumped = curve.as_dict()
        assert list(dumped) == ["10k", "1k"]
        assert dumped["10k"]["p95"] == 5.0
