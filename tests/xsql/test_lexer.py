"""Tests for the XSQL tokenizer."""

import pytest

from repro.errors import XsqlSyntaxError
from repro.xsql.lexer import Token, tokenize, unescape_string


def kinds(source: str):
    return [t.kind for t in tokenize(source) if t.kind != "EOF"]


def texts(source: str):
    return [t.text for t in tokenize(source) if t.kind != "EOF"]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert texts("SELECT select SeLeCt") == ["select"] * 3
        assert kinds("SELECT") == ["KEYWORD"]

    def test_identifiers_case_sensitive(self):
        assert texts("Person mary123 OO_Forum") == [
            "Person",
            "mary123",
            "OO_Forum",
        ]

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].kind == "NUMBER" and tokens[0].text == "42"
        assert tokens[1].kind == "NUMBER" and tokens[1].text == "3.5"

    def test_strings(self):
        token = tokenize("'newyork'")[0]
        assert token.kind == "STRING"
        assert unescape_string(token.text) == "newyork"

    def test_string_escapes(self):
        token = tokenize(r"'it\'s'")[0]
        assert unescape_string(token.text) == "it's"

    def test_eof_always_appended(self):
        assert tokenize("")[-1].kind == "EOF"


class TestVariableMarkers:
    def test_class_variable(self):
        token = tokenize("#X")[0]
        assert token.kind == "CLASSVAR" and token.text == "X"

    def test_method_variable(self):
        token = tokenize('"Y')[0]
        assert token.kind == "METHODVAR" and token.text == "Y"

    def test_star_is_op_for_parser_to_interpret(self):
        # `*` is both multiplication and the path-variable marker; the
        # lexer always emits OP and the parser decides by context.
        tokens = tokenize("X.*Y")
        assert [t.kind for t in tokens[:4]] == ["IDENT", "PUNCT", "OP", "IDENT"]


class TestOperators:
    def test_comparators(self):
        assert texts("= != <> < <= > >=") == [
            "=",
            "!=",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ]

    def test_arrows(self):
        assert kinds("=> =>> ->>") == ["ARROW"] * 3

    def test_quantified_comparator_splits(self):
        # `some>` lexes as the keyword SOME then OP `>`.
        assert texts("some> =all all<all") == [
            "some",
            ">",
            "=",
            "all",
            "all",
            "<",
            "all",
        ]

    def test_punctuation(self):
        assert kinds(". , ( ) [ ] { } @ ;") == ["PUNCT"] * 10


class TestErrorsAndPositions:
    def test_unexpected_character(self):
        with pytest.raises(XsqlSyntaxError):
            tokenize("SELECT ?")

    def test_line_column_tracking(self):
        tokens = tokenize("SELECT X\nFROM Person X")
        from_token = next(t for t in tokens if t.text == "from")
        assert from_token.line == 2 and from_token.column == 1

    def test_comments_skipped(self):
        assert texts("SELECT X -- the answer\n, Y") == [
            "select",
            "X",
            ",",
            "Y",
        ]
