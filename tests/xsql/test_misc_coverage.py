"""Coverage for remaining corners: method protocols, shared path
variables, views over views, correlated initial bindings."""

import pytest

from repro.datamodel import ObjectStore, PythonMethod
from repro.datamodel.methods import UNDEFINED
from repro.oid import Atom, FuncOid, Value, Variable, VarSort
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query
from tests.conftest import names


class TestPythonMethodProtocol:
    def build(self):
        store = ObjectStore()
        store.declare_class("P")
        obj = store.create_object(Atom("o"), ["P"])
        return store, obj

    def test_scalar_must_return_oid(self):
        store, obj = self.build()
        store.define_method(
            "P", PythonMethod(name=Atom("Bad"), fn=lambda s, o: 42)
        )
        with pytest.raises(TypeError):
            store.invoke(obj, "Bad")

    def test_set_valued_members_must_be_oids(self):
        store, obj = self.build()
        store.define_method(
            "P",
            PythonMethod(
                name=Atom("Bad"), fn=lambda s, o: [1, 2], set_valued=True
            ),
        )
        with pytest.raises(TypeError):
            store.invoke(obj, "Bad")

    def test_none_means_undefined(self):
        store, obj = self.build()
        store.define_method(
            "P", PythonMethod(name=Atom("Nothing"), fn=lambda s, o: None)
        )
        assert store.invoke(obj, "Nothing") == frozenset()

    def test_set_valued_empty_iterable(self):
        store, obj = self.build()
        store.define_method(
            "P",
            PythonMethod(
                name=Atom("Empty"), fn=lambda s, o: [], set_valued=True
            ),
        )
        values, set_valued = store.invoke_kinded(obj, "Empty")
        assert values == frozenset() and set_valued

    def test_method_with_arguments(self):
        store, obj = self.build()
        store.define_method(
            "P",
            PythonMethod(
                name=Atom("Plus"),
                fn=lambda s, o, x: Value(x.value + 1),
                arity=1,
            ),
        )
        assert store.invoke(obj, "Plus", [Value(4)]) == frozenset(
            {Value(5)}
        )


class TestSharedPathVariables:
    def test_path_variable_shared_across_conjuncts(self, shared_paper_session):
        # *P bound by the first path must replay identically in the
        # second: people reachable from both mary123 and ben via the SAME
        # attribute sequence ending in 'newyork'.
        result = shared_paper_session.query(
            "SELECT P WHERE mary123.*P.City['newyork'] "
            "and ben.*P.City['newyork']"
        )
        projected = {str(v) for v in result.single_column()}
        assert "attrpath(Residence)" in projected

    def test_replay_filters_mismatched_sequences(self, shared_paper_session):
        # kim reaches 'austin' via Residence.City; mary does not.
        result = shared_paper_session.query(
            "SELECT P WHERE kim.*P.City['austin'] "
            "and mary123.*P.City['austin']"
        )
        projected = {str(v) for v in result.single_column()}
        assert "attrpath(Residence)" not in projected


class TestViewsOverViews:
    def test_view_defined_over_a_view(self, paper_session):
        # views are classes, so a second view can range over the first —
        # the germ of the view hierarchies the paper defers to [KSK92].
        paper_session.execute(
            """
            CREATE VIEW Salaries AS SUBCLASS OF Object
            SIGNATURE Amount = Numeral
            SELECT Amount = W.Salary
            FROM Employee W
            OID FUNCTION OF W
            """
        )
        paper_session.execute(
            """
            CREATE VIEW HighSalaries AS SUBCLASS OF Salaries
            SIGNATURE Amount = Numeral
            SELECT Amount = V.Amount
            FROM Salaries V
            OID FUNCTION OF V
            WHERE V.Amount > 200000
            """
        )
        result = paper_session.query(
            "SELECT H.Amount FROM HighSalaries H"
        )
        assert sorted(result.scalars()) == [250000, 300000]
        # and the sub-view is a subclass of the first view's class.
        assert paper_session.store.hierarchy.is_subclass(
            Atom("HighSalaries"), Atom("Salaries")
        )


class TestInitialBindings:
    def test_env_stream_with_initial_binding(self, shared_paper_session):
        evaluator = Evaluator(shared_paper_session.store)
        query = parse_query(
            "SELECT W FROM Company X WHERE X.Divisions.Employees[W]"
        )
        initial = {Variable("X"): Atom("acme")}
        bound = {
            env[Variable("W")]
            for env in evaluator.env_stream(query, initial)
        }
        assert bound == {Atom("pat"), Atom("acmeEmp"), Atom("maria")}

    def test_run_with_initial_binding(self, shared_paper_session):
        evaluator = Evaluator(shared_paper_session.store)
        query = parse_query("SELECT X.Name FROM Company X")
        result = evaluator.run(query, {Variable("X"): Atom("uniSQL")})
        assert result.scalars() == ["UniSQL"]


class TestScripts:
    def test_execute_script_returns_all_results(self, paper_session):
        results = paper_session.execute_script(
            """
            CREATE CLASS Tag;
            SELECT X FROM Company X;
            SELECT X FROM Division X;
            """
        )
        assert len(results) == 3
        assert len(results[1]) == 2 and len(results[2]) == 4
