"""Tests for query-result relations and their operators (§3.3)."""

import pytest

from repro.errors import RelationalError
from repro.oid import Atom, Value
from repro.xsql.result import QueryResult


def result_of(columns, rows):
    return QueryResult(columns, rows)


class TestBasics:
    def test_duplicates_eliminated(self):
        result = result_of(["x"], [(Value(1),), (Value(1),)])
        assert len(result) == 1

    def test_arity_checked(self):
        with pytest.raises(RelationalError):
            result_of(["x"], [(Value(1), Value(2))])

    def test_sorted_iteration_deterministic(self):
        result = result_of(["x"], [(Value(3),), (Value(1),), (Atom("a"),)])
        assert list(result) == [(Value(1),), (Value(3),), (Atom("a"),)]

    def test_single_column(self):
        result = result_of(["x"], [(Value(1),), (Value(2),)])
        assert result.single_column() == frozenset({Value(1), Value(2)})

    def test_single_column_requires_one_column(self):
        result = result_of(["x", "y"], [])
        with pytest.raises(RelationalError):
            result.single_column()

    def test_scalars_unwraps_payloads(self):
        result = result_of(["x"], [(Value(2),), (Value("a"),)])
        assert result.scalars() == [2, "a"]

    def test_membership(self):
        result = result_of(["x"], [(Value(1),)])
        assert (Value(1),) in result
        assert (Value(9),) not in result


class TestOperators:
    def test_union(self):
        a = result_of(["x"], [(Value(1),)])
        b = result_of(["x"], [(Value(2),)])
        assert len(a.union(b)) == 2

    def test_minus(self):
        a = result_of(["x"], [(Value(1),), (Value(2),)])
        b = result_of(["x"], [(Value(2),)])
        assert a.minus(b).single_column() == frozenset({Value(1)})

    def test_intersect(self):
        a = result_of(["x"], [(Value(1),), (Value(2),)])
        b = result_of(["x"], [(Value(2),), (Value(3),)])
        assert a.intersect(b).single_column() == frozenset({Value(2)})

    def test_arity_mismatch_rejected(self):
        a = result_of(["x"], [])
        b = result_of(["x", "y"], [])
        with pytest.raises(RelationalError):
            a.union(b)

    def test_equality_ignores_column_names(self):
        # equality is on the tuple sets (names are presentation).
        a = result_of(["x"], [(Value(1),)])
        b = result_of(["y"], [(Value(1),)])
        assert a == b


class TestPretty:
    def test_renders_headers_and_rows(self):
        result = result_of(
            ["name", "salary"], [(Value("Pat"), Value(250000))]
        )
        text = result.pretty()
        assert "name" in text and "salary" in text
        assert "'Pat'" in text and "250000" in text

    def test_limit(self):
        result = result_of(["x"], [(Value(i),) for i in range(10)])
        text = result.pretty(limit=3)
        assert "(7 more)" in text

    def test_empty_result(self):
        text = result_of(["x"], []).pretty()
        assert "x" in text
