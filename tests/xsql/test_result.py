"""Tests for query-result relations and their operators (§3.3)."""

import pytest

from repro.errors import RelationalError
from repro.oid import Atom, Value
from repro.xsql.result import QueryResult


def result_of(columns, rows):
    return QueryResult(columns, rows)


class TestBasics:
    def test_duplicates_eliminated(self):
        result = result_of(["x"], [(Value(1),), (Value(1),)])
        assert len(result) == 1

    def test_arity_checked(self):
        with pytest.raises(RelationalError):
            result_of(["x"], [(Value(1), Value(2))])

    def test_sorted_iteration_deterministic(self):
        result = result_of(["x"], [(Value(3),), (Value(1),), (Atom("a"),)])
        assert list(result) == [(Value(1),), (Value(3),), (Atom("a"),)]

    def test_single_column(self):
        result = result_of(["x"], [(Value(1),), (Value(2),)])
        assert result.single_column() == frozenset({Value(1), Value(2)})

    def test_single_column_requires_one_column(self):
        result = result_of(["x", "y"], [])
        with pytest.raises(RelationalError):
            result.single_column()

    def test_scalars_unwraps_payloads(self):
        result = result_of(["x"], [(Value(2),), (Value("a"),)])
        assert result.scalars() == [2, "a"]

    def test_membership(self):
        result = result_of(["x"], [(Value(1),)])
        assert (Value(1),) in result
        assert (Value(9),) not in result


class TestOperators:
    def test_union(self):
        a = result_of(["x"], [(Value(1),)])
        b = result_of(["x"], [(Value(2),)])
        assert len(a.union(b)) == 2

    def test_minus(self):
        a = result_of(["x"], [(Value(1),), (Value(2),)])
        b = result_of(["x"], [(Value(2),)])
        assert a.minus(b).single_column() == frozenset({Value(1)})

    def test_intersect(self):
        a = result_of(["x"], [(Value(1),), (Value(2),)])
        b = result_of(["x"], [(Value(2),), (Value(3),)])
        assert a.intersect(b).single_column() == frozenset({Value(2)})

    def test_arity_mismatch_rejected(self):
        a = result_of(["x"], [])
        b = result_of(["x", "y"], [])
        with pytest.raises(RelationalError):
            a.union(b)

    def test_equality_ignores_column_names(self):
        # equality is on the tuple sets (names are presentation).
        a = result_of(["x"], [(Value(1),)])
        b = result_of(["y"], [(Value(1),)])
        assert a == b


class TestPretty:
    def test_renders_headers_and_rows(self):
        result = result_of(
            ["name", "salary"], [(Value("Pat"), Value(250000))]
        )
        text = result.pretty()
        assert "name" in text and "salary" in text
        assert "'Pat'" in text and "250000" in text

    def test_limit(self):
        result = result_of(["x"], [(Value(i),) for i in range(10)])
        text = result.pretty(limit=3)
        assert "(7 more)" in text

    def test_empty_result(self):
        text = result_of(["x"], []).pretty()
        assert "x" in text


class TestSequenceContract:
    def rows(self):
        return [(Value(3),), (Value(1),), (Value(2),)]

    def test_is_a_sequence(self):
        from collections.abc import Sequence

        assert isinstance(result_of(["x"], self.rows()), Sequence)

    def test_getitem_and_negative_index(self):
        result = result_of(["x"], self.rows())
        assert result[0] == (Value(1),)
        assert result[-1] == (Value(3),)

    def test_slicing(self):
        result = result_of(["x"], self.rows())
        assert result[1:] == [(Value(2),), (Value(3),)]

    def test_index_and_count(self):
        result = result_of(["x"], self.rows())
        assert result.index((Value(2),)) == 1
        assert result.count((Value(2),)) == 1
        assert result.count((Value(9),)) == 0

    def test_iteration_is_sorted_and_stable(self):
        result = result_of(["x"], self.rows())
        assert list(result) == result.sorted_rows()
        # Insertion order must not leak into enumeration order.
        reversed_insert = result_of(["x"], list(reversed(self.rows())))
        assert list(result) == list(reversed_insert)

    def test_add_invalidates_cached_order(self):
        result = result_of(["x"], self.rows())
        assert result[0] == (Value(1),)
        result.add((Value(0),))
        assert result[0] == (Value(0),)
        assert len(result) == 4

    def test_to_dicts(self):
        result = result_of(
            ["name", "age"], [(Value("b"), Value(2)), (Value("a"), Value(1))]
        )
        assert result.to_dicts() == [
            {"name": Value("a"), "age": Value(1)},
            {"name": Value("b"), "age": Value(2)},
        ]
