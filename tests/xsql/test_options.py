"""The unified ExecutionOptions API and the columnar execution mode.

Covers the satellite contract of the columnar PR:

* :class:`ExecutionOptions` validation and the ``coerce`` rules (loose
  kwargs as thin aliases, ``None`` meaning "keep the base value");
* the statement cache keyed on the frozen options tuple — equivalent
  calls share one compiled entry, differing options do not;
* columnar execution returning bit-identical results to rows mode —
  equal row *sets* and equal ordered *enumeration* — across plans and
  worker counts;
* EXPLAIN ANALYZE surfacing rows-per-batch and morsel/worker counters.
"""

import json

import pytest

from repro.errors import QueryError
from repro.schema.figure1 import build_figure1_schema
from repro.workloads.paper_db import populate_paper_database
from repro.xsql import ExecutionOptions
from repro.xsql.session import Session


@pytest.fixture()
def session():
    s = Session()
    build_figure1_schema(s.store)
    populate_paper_database(s.store)
    return s


Q_JOIN = (
    "SELECT Z FROM Employee X, Automobile Y "
    "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]"
)
Q_QUANT = (
    "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
    "and X.Residence =all X.FamMembers.Residence and X.Salary < 35000"
)
Q_OR = (
    "SELECT X FROM Vehicle X "
    "WHERE X.Manufacturer.Name['toyotaCo'] or X.Drivetrain.Engine.HP > 150"
)


class TestValidation:
    def test_defaults_validate(self):
        opts = ExecutionOptions()
        assert opts.validate() is opts
        assert opts.plan == "none"
        assert opts.batch_format == "rows"
        assert opts.workers == 1
        assert opts.join_mode is None

    @pytest.mark.parametrize(
        "bad",
        [
            dict(plan="speedy"),
            dict(engine="turbo"),
            dict(join_mode="sort"),
            dict(batch_format="parquet"),
            dict(workers=0),
            dict(workers=-1),
            dict(workers=65),
            dict(workers=True),
            dict(workers="2"),
        ],
    )
    def test_rejects_bad_values(self, bad):
        with pytest.raises(QueryError):
            ExecutionOptions(**bad).validate()

    def test_with_overrides_revalidates(self):
        opts = ExecutionOptions(plan="cost")
        assert opts.with_overrides(workers=4).workers == 4
        with pytest.raises(QueryError):
            opts.with_overrides(workers=0)

    def test_session_rejects_bad_options_early(self, session):
        with pytest.raises(QueryError):
            session.query("SELECT X FROM Person X", plan="speedy")
        with pytest.raises(QueryError):
            session.query("SELECT X FROM Person X", options="columnar")


class TestCoerce:
    def test_kwargs_override_base(self):
        base = ExecutionOptions(plan="cost", workers=4)
        merged = ExecutionOptions.coerce(base, plan="greedy")
        assert merged.plan == "greedy"
        assert merged.workers == 4

    def test_none_keeps_base_value(self):
        base = ExecutionOptions(batch_format="columnar", workers=2)
        merged = ExecutionOptions.coerce(
            base, plan=None, batch_format=None, workers=None
        )
        assert merged == base

    def test_loose_kwargs_equal_explicit_record(self, session):
        via_kwargs = session.prepare(
            Q_JOIN, plan="cost", batch_format="columnar", workers=2
        )
        via_record = session.prepare(
            Q_JOIN,
            options=ExecutionOptions(
                plan="cost", batch_format="columnar", workers=2
            ),
        )
        assert via_kwargs.options == via_record.options
        assert via_kwargs is via_record  # same statement-cache entry


class TestStatementCache:
    def test_cache_keyed_on_options(self, session):
        rows = session.prepare(Q_JOIN, plan="cost")
        cols = session.prepare(Q_JOIN, plan="cost", batch_format="columnar")
        again = session.prepare(Q_JOIN, plan="cost")
        assert rows is again
        assert cols is not rows
        assert cols.options.cache_key() != rows.options.cache_key()

    def test_join_mode_none_defers_to_session(self, session):
        compiled = session.prepare(Q_JOIN, plan="cost")
        assert compiled.options.join_mode is None
        session.join_mode = "nested"
        assert compiled.join_mode == "nested"
        session.join_mode = "hash"
        assert compiled.join_mode == "hash"
        pinned = session.prepare(Q_JOIN, plan="cost", join_mode="nested")
        assert pinned.join_mode == "nested"


class TestColumnarEquivalence:
    @pytest.mark.parametrize("plan", ["none", "greedy", "typed", "cost"])
    @pytest.mark.parametrize("text", [Q_JOIN, Q_QUANT, Q_OR])
    def test_matches_rows_mode_ordered(self, session, plan, text):
        reference = session.query(text, plan=plan)
        for workers in (1, 2, 4):
            columnar = session.query(
                text, plan=plan, batch_format="columnar", workers=workers
            )
            assert columnar.rows() == reference.rows()
            assert list(columnar) == list(reference)

    def test_warm_rerun_is_stable(self, session):
        compiled = session.prepare(
            Q_JOIN, plan="cost", batch_format="columnar", workers=2
        )
        first = compiled.run()
        second = compiled.run()
        assert list(first) == list(second)

    def test_naive_engine_ignores_batch_format(self, session):
        ref = session.query(Q_JOIN, engine="naive")
        col = session.query(
            Q_JOIN, engine="naive", batch_format="columnar", workers=2
        )
        assert col.rows() == ref.rows()


class TestExplainCounters:
    def test_analyze_shows_morsel_and_worker_counters(self, session):
        compiled = session.prepare(
            Q_JOIN,
            options=ExecutionOptions(
                plan="cost", batch_format="columnar", workers=2
            ),
        )
        text = compiled.explain(analyze=True)
        assert "rows/batch=" in text
        assert "morsels=" in text
        assert "workers=" in text
        assert "batch_format=columnar workers=2" in text
        data = json.loads(compiled.explain(format="json", analyze=True))
        ops = [data["operators"]]
        flat = []
        while ops:
            node = ops.pop()
            flat.append(node)
            ops.extend(node.get("children", []))
        scans = [node for node in flat if "morsels" in node]
        assert scans, "no scan operator recorded morsel counters"
        for node in scans:
            assert node["morsels"] >= 1
            assert node["workers"] >= 1

    def test_rows_mode_has_no_morsel_counters(self, session):
        compiled = session.prepare(Q_JOIN, plan="cost")
        text = compiled.explain(analyze=True)
        assert "morsels=" not in text
        assert "batch_format=rows workers=1" in text

    def test_explain_with_options_recompiles(self, session):
        compiled = session.prepare(Q_JOIN, plan="cost")
        text = compiled.explain(
            options=ExecutionOptions(
                plan="cost", batch_format="columnar", workers=2
            ),
            analyze=True,
        )
        assert "batch_format=columnar workers=2" in text
