"""Tests for the ``applicableTo`` schema condition.

§2 distinguishes three states of an attribute on an object: *defined*
(has a value), *undefined* (applicable but null), and *inapplicable* (a
type error).  §3.1 motivates querying applicability and defers the
machinery to [KSK92]; ``applicableTo`` realizes it.
"""

import pytest

from repro.flogic import TranslationUnsupported, translate
from repro.oid import Atom
from repro.xsql.parser import parse_query
from tests.conftest import names


@pytest.fixture
def session(nobel_session):
    # curie: a Scientist with *no* stored prize — applicable, undefined.
    store = nobel_session.store
    curie = store.create_object(Atom("curie"), ["Scientist"])
    store.set_attr(curie, "Name", "Curie")
    return nobel_session


class TestApplicability:
    def test_applicable_methods_of_object(self, session):
        result = session.query("SELECT M WHERE M applicableTo einstein")
        assert names(result) == ["Name", "WonNobelPrize"]

    def test_inapplicable_excluded(self, session):
        # WonNobelPrize is declared on Scientist and Fund only; for a
        # Politician it is *inapplicable*.
        result = session.query("SELECT M WHERE M applicableTo smith")
        assert names(result) == ["Name"]

    def test_applicable_but_undefined(self, session):
        # curie: applicable (Scientist signature) yet no stored value —
        # the §2 null, distinct from inapplicability.
        applicable = session.query("SELECT M WHERE M applicableTo curie")
        assert "WonNobelPrize" in names(applicable)
        defined = session.query("SELECT M WHERE curie.M")
        assert "WonNobelPrize" not in names(defined)

    def test_objects_an_attribute_applies_to(self, session):
        result = session.query(
            "SELECT X WHERE WonNobelPrize applicableTo X"
        )
        assert set(names(result)) == {"einstein", "unicef", "curie"}

    def test_ground_check(self, session):
        assert len(
            session.query("SELECT X WHERE Name applicableTo einstein")
        ) > 0
        assert (
            len(
                session.query(
                    "SELECT X WHERE WonNobelPrize applicableTo smith"
                )
            )
            == 0
        )

    def test_inherited_applicability(self, shared_paper_session):
        # Name is declared on Person; it is applicable to employees too.
        result = shared_paper_session.query(
            "SELECT X FROM Employee X WHERE Name applicableTo X "
            "and X.Salary > 200000"
        )
        assert set(names(result)) == {"pat", "maria"}

    def test_conservative_nobel_reformulation(self, session):
        # The introduction's dilemma, resolved with applicability: find
        # winners without naming classes, but staying schema-aware.
        result = session.query(
            "SELECT X WHERE WonNobelPrize applicableTo X "
            "and X.WonNobelPrize"
        )
        assert names(result) == ["einstein", "unicef"]

    def test_not_translatable_to_data_molecules(self, session):
        query = parse_query("SELECT M WHERE M applicableTo einstein")
        with pytest.raises(TranslationUnsupported):
            translate(query)

    def test_naive_agreement(self, session):
        text = "SELECT M WHERE M applicableTo einstein"
        assert (
            session.query(text, engine="naive").rows()
            == session.query(text).rows()
        )
