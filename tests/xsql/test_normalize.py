"""Tests for AST normalization: sort unification and §5 desugaring."""

import pytest

from repro.errors import XsqlSyntaxError
from repro.oid import Atom, Variable, VarSort
from repro.xsql import ast
from repro.xsql.normalize import (
    desugar,
    rewrite_variables,
    unify_variable_sorts,
    with_tail_variable,
)
from repro.xsql.parser import parse_query, parse_statement


class TestWithTailVariable:
    def test_appends_selector(self):
        query = parse_query("SELECT X WHERE X.Name[Z]")
        # build a selector-less path manually
        path = ast.PathExpr(
            head=Variable("Y"),
            steps=(ast.Step(ast.MethodExpr(Atom("Name"))),),
        )
        rewritten = with_tail_variable(path, Variable("W"))
        assert rewritten.steps[-1].selector == Variable("W")

    def test_trivial_path_rejected(self):
        with pytest.raises(ValueError):
            with_tail_variable(ast.PathExpr(head=Variable("Y")), Variable("W"))

    def test_existing_selector_rejected(self):
        path = ast.PathExpr(
            head=Variable("Y"),
            steps=(ast.Step(ast.MethodExpr(Atom("Name")), Variable("Z")),),
        )
        with pytest.raises(ValueError):
            with_tail_variable(path, Variable("W"))


class TestSortUnification:
    def test_method_position_propagates(self):
        query = parse_query("SELECT Y FROM Person X WHERE X.Y.City")
        head = query.select[0].path.head
        assert head.sort == VarSort.METHOD

    def test_path_var_propagates(self):
        query = parse_query("SELECT P FROM Person X WHERE X.*P.City")
        head = query.select[0].path.head
        assert head.sort == VarSort.PATH

    def test_class_and_method_conflict(self):
        with pytest.raises(XsqlSyntaxError):
            parse_query('SELECT X WHERE Y."Z and W.Z[V] and #Z subclassOf #Q')

    def test_rewrite_variables_generic(self):
        query = parse_query("SELECT X FROM Person X WHERE X.Age > 3")
        renamed = rewrite_variables(
            query, lambda v: Variable(v.name + "_r", v.sort)
        )
        assert renamed.from_[0].var.name == "X_r"


class TestDesugaring:
    def test_method_argument_path_extracted(self):
        from repro.typing.occurrences import flatten_conjunction

        query = parse_query(
            "SELECT W FROM Company X "
            "WHERE X.(MngrSalary @ Y.Name)[W] and X.Divisions[Y]"
        )
        conjuncts = flatten_conjunction(query.where)
        # the argument Y.Name became a fresh variable + a binding conjunct
        binding = [
            c
            for c in conjuncts
            if isinstance(c, ast.PathCond)
            and c.path.head == Variable("Y")
            and c.path.steps[0].method_expr.method == Atom("Name")
        ]
        assert binding, [str(c) for c in conjuncts]
        # and the binding conjunct precedes the use (left-to-right, §5).
        use_index = next(
            i
            for i, c in enumerate(conjuncts)
            if isinstance(c, ast.PathCond)
            and c.path.steps
            and c.path.steps[0].method_expr.args
        )
        bind_index = conjuncts.index(binding[0])
        assert bind_index < use_index

    def test_id_term_argument_path_extracted(self):
        query = parse_query(
            "SELECT X FROM Automobile X, Employee W "
            "WHERE CompSalaries(X.Manufacturer, W).Salary > 1"
        )
        conjuncts = query.where.items
        manufacturer_bind = [
            c
            for c in conjuncts
            if isinstance(c, ast.PathCond)
            and c.path.steps
            and c.path.steps[0].method_expr.method == Atom("Manufacturer")
        ]
        assert manufacturer_bind

    def test_select_item_argument_appended_to_where(self):
        statement = parse_statement(
            "ALTER CLASS Company ADD SIGNATURE M : String => Numeral "
            "SELECT (M @ Y.Name) = W FROM Company X OID X "
            "WHERE X.Divisions[Y].Manager.Salary[W]"
        )
        conjuncts = statement.query.where.items
        assert any(
            isinstance(c, ast.PathCond)
            and c.path.head == Variable("Y")
            for c in conjuncts
        )

    def test_fresh_variables_do_not_collide(self):
        query = parse_query(
            "SELECT W FROM Company X WHERE X.(M @ Y.Name)[W] "
            "and X.(M @ Z.Name)[W]"
        )
        fresh = {
            v.name
            for v in ast.free_variables(query)
            if v.name.startswith("_")
        }
        assert len(fresh) == 2

    def test_nested_subquery_desugared(self):
        query = parse_query(
            "SELECT X FROM Vehicle X WHERE 1 <all "
            "(SELECT W FROM Division Y "
            "WHERE X.Manufacturer.(M @ Y.Name)[W])"
        )
        sub = query.where.rhs.query
        assert isinstance(sub.where, ast.AndCond)

    def test_top_level_update_with_path_arg_rejected(self):
        with pytest.raises(XsqlSyntaxError):
            parse_statement(
                "UPDATE CLASS Company SET X.Salary = X.(M @ Y.Name)"
            )
