"""Vacuous truth of ``all``-quantified comparisons over empty sets (§3.3).

Query (13) of the paper selects employees whose ``Dependents.Age`` set
"contains only numerals greater than $200,000-style bounds" — and an
employee with *no* dependents qualifies, because ``all`` over the empty
set is vacuously true.  These tests pin that reading end-to-end: in
``compare()`` (the full quantifier/emptiness matrix) and through the
``Evaluator`` and ``NaiveEvaluator`` on a real store.
"""

import pytest

from repro.datamodel.store import ObjectStore
from repro.oid import Atom
from repro.schema.figure1 import build_figure1_schema
from repro.xsql.comparisons import compare
from repro.xsql.evaluator import Evaluator, NaiveEvaluator
from repro.xsql.parser import parse_query

EMPTY = frozenset()
SOME_VALUES = frozenset({Atom("a")})


@pytest.mark.parametrize(
    "lq,rq,left,right,expected",
    [
        # Empty left side: the left quantifier alone decides.
        ("all", "all", EMPTY, SOME_VALUES, True),
        ("all", "some", EMPTY, SOME_VALUES, True),
        ("some", "all", EMPTY, SOME_VALUES, False),
        ("some", "some", EMPTY, SOME_VALUES, False),
        # Non-empty left, empty right: the right quantifier decides.
        ("all", "all", SOME_VALUES, EMPTY, True),
        ("some", "all", SOME_VALUES, EMPTY, True),
        ("all", "some", SOME_VALUES, EMPTY, False),
        ("some", "some", SOME_VALUES, EMPTY, False),
        # Both empty: the left quantifier short-circuits.
        ("all", "all", EMPTY, EMPTY, True),
        ("all", "some", EMPTY, EMPTY, True),
        ("some", "all", EMPTY, EMPTY, False),
        ("some", "some", EMPTY, EMPTY, False),
    ],
)
def test_empty_set_quantifier_matrix(lq, rq, left, right, expected):
    assert compare("=", left, right, lq=lq, rq=rq) is expected


@pytest.fixture()
def store():
    store = ObjectStore()
    build_figure1_schema(store)
    rich = store.create_object(Atom("rich"), ["Employee"])
    store.set_attr(rich, "Name", "rich")
    store.set_attr(rich, "Salary", 300000)
    poor = store.create_object(Atom("poor"), ["Employee"])
    store.set_attr(poor, "Name", "poor")
    store.set_attr(poor, "Salary", 10000)
    loner = store.create_object(Atom("loner"), ["Employee"])
    store.set_attr(loner, "Name", "loner")
    # rich dependents: only highly-paid ones; poor dependents: not.
    store.set_attr_set(rich, "Dependents", [rich])
    store.set_attr_set(poor, "Dependents", [poor])
    # loner has NO dependents at all — the vacuous case.
    return store


QUERY_13_STYLE = (
    "SELECT X.Name FROM Employee X WHERE X.Dependents.Salary all> 200000"
)


def test_evaluator_vacuous_all(store):
    """An employee with no dependents satisfies the all-comparison."""
    result = Evaluator(store).run(parse_query(QUERY_13_STYLE))
    names = {row[0].value for row in result.rows()}
    assert names == {"rich", "loner"}


def test_naive_evaluator_agrees_on_vacuous_all(store):
    reference = Evaluator(store).run(parse_query(QUERY_13_STYLE)).rows()
    naive = NaiveEvaluator(store).run(parse_query(QUERY_13_STYLE)).rows()
    assert naive == reference


def test_evaluator_some_on_empty_is_false(store):
    result = Evaluator(store).run(
        parse_query(
            "SELECT X.Name FROM Employee X "
            "WHERE X.Dependents.Salary some> 0"
        )
    )
    names = {row[0].value for row in result.rows()}
    assert "loner" not in names
    assert names == {"rich", "poor"}
