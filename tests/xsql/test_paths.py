"""Tests for path-expression walking (paper §3.1, §5)."""

import pytest

from repro.datamodel import ObjectStore
from repro.oid import Atom, Value, Variable, VarSort
from repro.xsql.parser import parse_query
from repro.xsql.paths import PathWalker


def path_of(text: str):
    """Extract the WHERE path of ``SELECT X WHERE <path>``."""
    return parse_query(text).where.path


def select_path(text: str):
    return parse_query(text).select[0].path


@pytest.fixture
def store() -> ObjectStore:
    s = ObjectStore()
    s.declare_class("Person")
    s.declare_class("Address")
    s.declare_signature("Person", "Residence", "Address")
    s.declare_signature("Person", "FamMembers", "Person", set_valued=True)
    s.declare_signature("Address", "City", "String")
    mary = s.create_object(Atom("mary"), ["Person"])
    bob = s.create_object(Atom("bob"), ["Person"])
    sue = s.create_object(Atom("sue"), ["Person"])
    addr1 = s.create_object(Atom("addr1"), ["Address"])
    addr2 = s.create_object(Atom("addr2"), ["Address"])
    s.set_attr(addr1, "City", "newyork")
    s.set_attr(addr2, "City", "austin")
    s.set_attr(mary, "Residence", addr1)
    s.set_attr(bob, "Residence", addr2)
    s.set_attr_set(mary, "FamMembers", [bob, sue])
    return s


@pytest.fixture
def walker(store) -> PathWalker:
    return PathWalker(store)


class TestGroundPaths:
    def test_scalar_chain(self, walker):
        path = select_path("SELECT mary.Residence.City")
        assert walker.value(path) == frozenset({Value("newyork")})

    def test_trivial_path_is_its_head(self, walker):
        path = select_path("SELECT mary")
        assert walker.value(path) == frozenset({Atom("mary")})

    def test_literal_trivial_path(self, walker):
        path = select_path("SELECT 20")
        assert walker.value(path) == frozenset({Value(20)})

    def test_missing_object_yields_empty(self, walker):
        path = select_path("SELECT ghost47.Residence.City")
        assert walker.value(path) == frozenset()

    def test_undefined_attribute_yields_empty(self, walker):
        path = select_path("SELECT sue.Residence.City")
        assert walker.value(path) == frozenset()

    def test_set_valued_fanout(self, walker):
        path = select_path("SELECT mary.FamMembers")
        assert walker.value(path) == frozenset({Atom("bob"), Atom("sue")})

    def test_flattening_through_sets(self, walker):
        path = select_path("SELECT mary.FamMembers.Residence.City")
        assert walker.value(path) == frozenset({Value("austin")})


class TestSelectors:
    def test_ground_selector_filters(self, walker):
        hits = list(
            walker.walk(path_of("SELECT X WHERE mary.FamMembers[bob]"))
        )
        assert [h.tail for h in hits] == [Atom("bob")]

    def test_ground_selector_mismatch(self, walker):
        assert (
            walker.value(path_of("SELECT X WHERE mary.FamMembers[zed]"))
            == frozenset()
        )

    def test_variable_selector_binds(self, walker):
        hits = list(
            walker.walk(path_of("SELECT Y WHERE mary.Residence[Y]"))
        )
        assert len(hits) == 1
        assert hits[0].bindings()[Variable("Y")] == Atom("addr1")

    def test_bound_variable_selector_checks(self, walker):
        path = path_of("SELECT Y WHERE mary.Residence[Y]")
        hits = list(walker.walk(path, {Variable("Y"): Atom("addr2")}))
        assert hits == []

    def test_head_variable_enumerates_universe(self, walker):
        path = path_of("SELECT X WHERE X.Residence[addr1]")
        tails = {h.bindings()[Variable("X")] for h in walker.walk(path)}
        assert tails == {Atom("mary")}


class TestMethodVariables:
    def test_method_variable_enumerates_defined(self, walker):
        path = path_of('SELECT Y WHERE mary."Y[addr1]')
        methods = {
            h.bindings()[Variable("Y", VarSort.METHOD)]
            for h in walker.walk(path)
        }
        assert methods == {Atom("Residence")}

    def test_method_variable_multiple_matches(self, walker):
        path = path_of('SELECT Y WHERE mary."Y')
        methods = {
            h.bindings()[Variable("Y", VarSort.METHOD)]
            for h in walker.walk(path)
        }
        assert methods == {Atom("Residence"), Atom("FamMembers")}


class TestPathVariables:
    def test_sequences_bound(self, walker):
        path = path_of("SELECT X WHERE mary.*P.City['newyork']")
        hits = list(walker.walk(path))
        sequences = {
            h.bindings()[Variable("P", VarSort.PATH)] for h in hits
        }
        assert (Atom("Residence"),) in sequences

    def test_zero_length_sequence(self, walker):
        path = path_of("SELECT X WHERE mary.*P[mary]")
        hits = list(walker.walk(path))
        assert any(h.bindings()[Variable("P", VarSort.PATH)] == () for h in hits)

    def test_depth_limit_respected(self, store):
        tight = PathWalker(store, max_path_var_length=1)
        path = path_of("SELECT X WHERE mary.*P.City['austin']")
        # austin needs FamMembers.Residence (length 2) before City.
        assert list(tight.walk(path)) == []


class TestMethodArguments:
    def test_ground_args(self, store):
        s = store
        s.declare_class("Course")
        s.declare_class("Grade")
        s.declare_signature("Person", "earns", "Grade", args=["Course"])
        course = s.create_object(Atom("cse305"), ["Course"])
        grade = s.create_object(Atom("gradeA"), ["Grade"])
        s.set_attr(Atom("mary"), "earns", grade, args=[course])
        walker = PathWalker(s)
        path = path_of("SELECT X WHERE mary.(earns @ cse305)[gradeA]")
        assert len(list(walker.walk(path))) == 1

    def test_variable_args_enumerate(self, store):
        s = store
        s.declare_class("Course")
        s.declare_class("Grade")
        course = s.create_object(Atom("cse305"), ["Course"])
        grade = s.create_object(Atom("gradeA"), ["Grade"])
        s.set_attr(Atom("mary"), "earns", grade, args=[course])
        walker = PathWalker(s)
        path = path_of("SELECT C WHERE mary.(earns @ C)[gradeA]")
        hits = list(walker.walk(path))
        assert {h.bindings()[Variable("C")] for h in hits} == {course}


class TestSetShapedFlag:
    def test_scalar_path_not_shaped(self, walker):
        _, shaped = walker.value_kinded(
            select_path("SELECT mary.Residence.City")
        )
        assert not shaped

    def test_set_hop_shapes(self, walker):
        _, shaped = walker.value_kinded(select_path("SELECT mary.FamMembers"))
        assert shaped

    def test_set_then_scalar_still_shaped(self, walker):
        _, shaped = walker.value_kinded(
            select_path("SELECT mary.FamMembers.Residence")
        )
        assert shaped
