"""Property-based suite for the factored-state batch algebra.

The operator executor (``repro.xsql.operators``) represents the binding
stream as a list of variable-disjoint :class:`Batch` objects whose cross
product is the logical stream.  Every operator manipulates that state
through three public functions — ``merge_overlapping``, ``merge_all``,
``product_count`` — and the correctness of *every* plan/join mode rides
on four algebraic facts, each checked here over ≥200 random states:

* merging preserves the cross product (both the ``product_count`` and
  the logical row multiset);
* the merged batch is independent of the order the batches appear in;
* merging keeps batch variable-sets pairwise disjoint;
* ``merge_all`` equals iterated pairwise merging (a left fold).

The algebra now lives in :mod:`repro.xsql.batches` with a second,
columnar representation (:class:`ColumnBatch`); the suite additionally
holds the columnar form to the row form: row↔column round-trips are
exact (including ragged/UNBOUND rows), a columnar merge enumerates the
same rows in the same order as the dict merge, and morsel splitting is a
concat identity whose :func:`morsel_map` output is independent of the
worker count.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oid import Value, Variable
from repro.xsql.batches import (
    UNBOUND,
    ColumnBatch,
    batch_rows,
    morsel_map,
    split_morsels,
)
from repro.xsql.operators import (
    Batch,
    _cross,
    merge_all,
    merge_overlapping,
    product_count,
)

_VAR_POOL = [Variable(name) for name in "UVWXYZ"]


@st.composite
def states(draw):
    """A well-formed state: batches with pairwise disjoint variables,
    each env binding exactly its batch's variables."""
    pool = list(_VAR_POOL)
    draw(st.randoms(use_true_random=False)).shuffle(pool)
    n_batches = draw(st.integers(0, 4))
    state = []
    for _ in range(n_batches):
        if not pool:
            break
        width = draw(st.integers(1, min(2, len(pool))))
        batch_vars = {pool.pop() for _ in range(width)}
        n_envs = draw(st.integers(0, 3))
        envs = [
            {
                var: Value(draw(st.integers(0, 5)))
                for var in sorted(batch_vars, key=str)
            }
            for _ in range(n_envs)
        ]
        state.append(Batch(batch_vars, envs))
    return state


def row_multiset(state):
    """The logical binding stream as a comparable multiset."""
    return Counter(
        tuple(sorted((str(var), str(val)) for var, val in env.items()))
        for env in _cross(state)
    )


def batch_key(batch):
    """A canonical, order-insensitive fingerprint of one batch."""
    env_multiset = Counter(
        tuple(sorted((str(v), str(o)) for v, o in env.items()))
        for env in batch.envs
    )
    return (
        frozenset(batch.vars),
        frozenset(env_multiset.items()),
    )


class TestMergeOverlapping:
    @given(state=states(), touched=st.sets(st.sampled_from(_VAR_POOL)))
    @settings(max_examples=200, deadline=None)
    def test_preserves_cross_product(self, state, touched):
        before_count = product_count(state)
        before_rows = row_multiset(state)
        merged, rest = merge_overlapping(state, touched)
        after = [merged] + rest
        assert product_count(after) == before_count
        assert row_multiset(after) == before_rows

    @given(
        state=states(),
        touched=st.sets(st.sampled_from(_VAR_POOL)),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_independent_of_batch_order(self, state, touched, data):
        shuffled = list(state)
        data.draw(st.randoms(use_true_random=False)).shuffle(shuffled)
        merged_a, rest_a = merge_overlapping(state, touched)
        merged_b, rest_b = merge_overlapping(shuffled, touched)
        assert batch_key(merged_a) == batch_key(merged_b)
        assert Counter(map(batch_key, rest_a)) == Counter(
            map(batch_key, rest_b)
        )

    @given(state=states(), touched=st.sets(st.sampled_from(_VAR_POOL)))
    @settings(max_examples=200, deadline=None)
    def test_keeps_variable_sets_disjoint(self, state, touched):
        merged, rest = merge_overlapping(state, touched)
        batches = [merged] + rest
        for i, left in enumerate(batches):
            for right in batches[i + 1:]:
                assert not (left.vars & right.vars)

    @given(state=states(), touched=st.sets(st.sampled_from(_VAR_POOL)))
    @settings(max_examples=200, deadline=None)
    def test_merged_covers_touched_batches(self, state, touched):
        """Every batch overlapping *touched* lands in the merged batch;
        every untouched batch survives unchanged."""
        merged, rest = merge_overlapping(state, touched)
        for batch in state:
            if batch.vars & touched:
                assert batch.vars <= merged.vars
            else:
                assert any(
                    batch_key(batch) == batch_key(kept) for kept in rest
                )


class TestMergeAll:
    @given(state=states())
    @settings(max_examples=200, deadline=None)
    def test_equals_iterated_pairwise_merging(self, state):
        collapsed = merge_all(state)
        acc = Batch(set(), [{}])
        for batch in state:
            acc, leftover = merge_overlapping([acc, batch], set(), True)
            assert leftover == []
        assert acc.vars == collapsed.vars
        assert acc.envs == collapsed.envs

    @given(state=states())
    @settings(max_examples=200, deadline=None)
    def test_single_batch_preserves_product(self, state):
        collapsed = merge_all(state)
        assert len(collapsed.envs) == product_count(state)
        assert row_multiset([collapsed]) == row_multiset(state)


class TestProductCount:
    @given(state=states())
    @settings(max_examples=200, deadline=None)
    def test_counts_logical_stream(self, state):
        assert product_count(state) == sum(row_multiset(state).values())

    def test_empty_state_is_one_empty_env(self):
        assert product_count([]) == 1
        assert list(_cross([])) == [{}]


@st.composite
def ragged_rows(draw):
    """Rows over a shared variable set where any row may leave any
    variable unbound — the shape OR branches produce."""
    width = draw(st.integers(1, 3))
    batch_vars = set(_VAR_POOL[:width])
    n_rows = draw(st.integers(0, 5))
    rows = []
    for _ in range(n_rows):
        row = {}
        for var in sorted(batch_vars, key=str):
            if draw(st.booleans()):
                row[var] = Value(draw(st.integers(0, 5)))
        rows.append(row)
    return batch_vars, rows


def columnarize(state):
    """The same factored state in the columnar representation."""
    return [
        ColumnBatch.from_rows(batch.vars, batch.envs) for batch in state
    ]


class TestColumnBatch:
    @given(data=ragged_rows())
    @settings(max_examples=200, deadline=None)
    def test_row_column_round_trip(self, data):
        batch_vars, rows = data
        batch = ColumnBatch.from_rows(batch_vars, rows)
        assert len(batch) == len(rows)
        assert batch.to_rows() == rows

    @given(data=ragged_rows())
    @settings(max_examples=200, deadline=None)
    def test_unbound_cells_fill_missing_keys(self, data):
        batch_vars, rows = data
        batch = ColumnBatch.from_rows(batch_vars, rows)
        for var in batch_vars:
            column = batch.columns[var]
            for index, row in enumerate(rows):
                if var in row:
                    assert column[index] == row[var]
                else:
                    assert column[index] is UNBOUND

    @given(state=states(), touched=st.sets(st.sampled_from(_VAR_POOL)))
    @settings(max_examples=200, deadline=None)
    def test_merge_matches_dict_implementation(self, state, touched):
        """The columnar merge enumerates exactly the rows (and order)
        of the row-dict merge — the bit-identical contract."""
        merged_rows, rest_rows = merge_overlapping(state, touched)
        merged_cols, rest_cols = merge_overlapping(
            columnarize(state), touched
        )
        assert merged_cols.vars == merged_rows.vars
        # An empty state has no ColumnBatch to signal the representation,
        # so the merge falls back to the row identity — adapt generically.
        assert batch_rows(merged_cols) == merged_rows.envs
        assert [batch.vars for batch in rest_cols] == [
            batch.vars for batch in rest_rows
        ]
        assert [batch.to_rows() for batch in rest_cols] == [
            batch.envs for batch in rest_rows
        ]

    @given(state=states())
    @settings(max_examples=200, deadline=None)
    def test_merge_all_matches_dict_implementation(self, state):
        collapsed_rows = merge_all(state)
        collapsed_cols = merge_all(columnarize(state))
        if state:
            assert isinstance(collapsed_cols, ColumnBatch)
            assert collapsed_cols.to_rows() == collapsed_rows.envs
        assert product_count([collapsed_cols]) == product_count(
            [collapsed_rows]
        )


class TestMorsels:
    @given(
        items=st.lists(st.integers(), max_size=50),
        morsel_size=st.integers(1, 7),
    )
    @settings(max_examples=200, deadline=None)
    def test_split_concat_identity(self, items, morsel_size):
        morsels = split_morsels(items, morsel_size)
        assert [x for morsel in morsels for x in morsel] == items
        assert all(len(morsel) <= morsel_size for morsel in morsels)
        assert all(morsels)  # no empty morsels

    @given(
        items=st.lists(st.integers(), max_size=50),
        morsel_size=st.integers(1, 7),
        workers=st.integers(1, 4),
    )
    @settings(max_examples=100, deadline=None)
    def test_worker_count_independence(self, items, morsel_size, workers):
        """morsel_map output is identical for every worker count."""
        work = lambda morsel: [x * 2 for x in morsel]
        baseline, n_morsels, _ = morsel_map(
            work, items, workers=1, morsel_size=morsel_size
        )
        result, n_morsels_w, used = morsel_map(
            work, items, workers=workers, morsel_size=morsel_size
        )
        assert result == baseline == [x * 2 for x in items]
        assert n_morsels_w == n_morsels == len(
            split_morsels(items, morsel_size)
        )
        assert 1 <= used <= max(1, workers)
