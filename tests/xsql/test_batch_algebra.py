"""Property-based suite for the factored-state batch algebra.

The operator executor (``repro.xsql.operators``) represents the binding
stream as a list of variable-disjoint :class:`Batch` objects whose cross
product is the logical stream.  Every operator manipulates that state
through three public functions — ``merge_overlapping``, ``merge_all``,
``product_count`` — and the correctness of *every* plan/join mode rides
on four algebraic facts, each checked here over ≥200 random states:

* merging preserves the cross product (both the ``product_count`` and
  the logical row multiset);
* the merged batch is independent of the order the batches appear in;
* merging keeps batch variable-sets pairwise disjoint;
* ``merge_all`` equals iterated pairwise merging (a left fold).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oid import Value, Variable
from repro.xsql.operators import (
    Batch,
    _cross,
    merge_all,
    merge_overlapping,
    product_count,
)

_VAR_POOL = [Variable(name) for name in "UVWXYZ"]


@st.composite
def states(draw):
    """A well-formed state: batches with pairwise disjoint variables,
    each env binding exactly its batch's variables."""
    pool = list(_VAR_POOL)
    draw(st.randoms(use_true_random=False)).shuffle(pool)
    n_batches = draw(st.integers(0, 4))
    state = []
    for _ in range(n_batches):
        if not pool:
            break
        width = draw(st.integers(1, min(2, len(pool))))
        batch_vars = {pool.pop() for _ in range(width)}
        n_envs = draw(st.integers(0, 3))
        envs = [
            {
                var: Value(draw(st.integers(0, 5)))
                for var in sorted(batch_vars, key=str)
            }
            for _ in range(n_envs)
        ]
        state.append(Batch(batch_vars, envs))
    return state


def row_multiset(state):
    """The logical binding stream as a comparable multiset."""
    return Counter(
        tuple(sorted((str(var), str(val)) for var, val in env.items()))
        for env in _cross(state)
    )


def batch_key(batch):
    """A canonical, order-insensitive fingerprint of one batch."""
    env_multiset = Counter(
        tuple(sorted((str(v), str(o)) for v, o in env.items()))
        for env in batch.envs
    )
    return (
        frozenset(batch.vars),
        frozenset(env_multiset.items()),
    )


class TestMergeOverlapping:
    @given(state=states(), touched=st.sets(st.sampled_from(_VAR_POOL)))
    @settings(max_examples=200, deadline=None)
    def test_preserves_cross_product(self, state, touched):
        before_count = product_count(state)
        before_rows = row_multiset(state)
        merged, rest = merge_overlapping(state, touched)
        after = [merged] + rest
        assert product_count(after) == before_count
        assert row_multiset(after) == before_rows

    @given(
        state=states(),
        touched=st.sets(st.sampled_from(_VAR_POOL)),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_independent_of_batch_order(self, state, touched, data):
        shuffled = list(state)
        data.draw(st.randoms(use_true_random=False)).shuffle(shuffled)
        merged_a, rest_a = merge_overlapping(state, touched)
        merged_b, rest_b = merge_overlapping(shuffled, touched)
        assert batch_key(merged_a) == batch_key(merged_b)
        assert Counter(map(batch_key, rest_a)) == Counter(
            map(batch_key, rest_b)
        )

    @given(state=states(), touched=st.sets(st.sampled_from(_VAR_POOL)))
    @settings(max_examples=200, deadline=None)
    def test_keeps_variable_sets_disjoint(self, state, touched):
        merged, rest = merge_overlapping(state, touched)
        batches = [merged] + rest
        for i, left in enumerate(batches):
            for right in batches[i + 1:]:
                assert not (left.vars & right.vars)

    @given(state=states(), touched=st.sets(st.sampled_from(_VAR_POOL)))
    @settings(max_examples=200, deadline=None)
    def test_merged_covers_touched_batches(self, state, touched):
        """Every batch overlapping *touched* lands in the merged batch;
        every untouched batch survives unchanged."""
        merged, rest = merge_overlapping(state, touched)
        for batch in state:
            if batch.vars & touched:
                assert batch.vars <= merged.vars
            else:
                assert any(
                    batch_key(batch) == batch_key(kept) for kept in rest
                )


class TestMergeAll:
    @given(state=states())
    @settings(max_examples=200, deadline=None)
    def test_equals_iterated_pairwise_merging(self, state):
        collapsed = merge_all(state)
        acc = Batch(set(), [{}])
        for batch in state:
            acc, leftover = merge_overlapping([acc, batch], set(), True)
            assert leftover == []
        assert acc.vars == collapsed.vars
        assert acc.envs == collapsed.envs

    @given(state=states())
    @settings(max_examples=200, deadline=None)
    def test_single_batch_preserves_product(self, state):
        collapsed = merge_all(state)
        assert len(collapsed.envs) == product_count(state)
        assert row_multiset([collapsed]) == row_multiset(state)


class TestProductCount:
    @given(state=states())
    @settings(max_examples=200, deadline=None)
    def test_counts_logical_stream(self, state):
        assert product_count(state) == sum(row_multiset(state).values())

    def test_empty_state_is_one_empty_env(self):
        assert product_count([]) == 1
        assert list(_cross([])) == [{}]
