"""Tests for session snapshots (checkpoint/rollback)."""

import pytest

from repro.oid import Atom, Value
from tests.conftest import names


class TestSnapshots:
    def test_rollback_after_update(self, paper_session):
        checkpoint = paper_session.snapshot()
        paper_session.execute(
            "UPDATE CLASS Division SET d_eng.Function = 'changed'"
        )
        assert paper_session.store.invoke_scalar(
            Atom("d_eng"), "Function"
        ) == Value("changed")
        paper_session.restore(checkpoint)
        assert paper_session.store.invoke_scalar(
            Atom("d_eng"), "Function"
        ) == Value("R&D")

    def test_rollback_removes_created_objects(self, paper_session):
        checkpoint = paper_session.snapshot()
        result = paper_session.execute(
            "SELECT N = Y.Name FROM Company Y OID FUNCTION OF Y"
        )
        created = result.created[0]
        assert created in paper_session.store.known_objects()
        paper_session.restore(checkpoint)
        assert created not in paper_session.store.known_objects()

    def test_queries_work_after_restore(self, paper_session):
        checkpoint = paper_session.snapshot()
        paper_session.restore(checkpoint)
        result = paper_session.query(
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"
        )
        assert names(result) == ["john13", "kim"]

    def test_snapshot_is_isolated_from_later_writes(self, paper_session):
        checkpoint = paper_session.snapshot()
        paper_session.execute(
            "UPDATE CLASS Employee SET ben.Salary = 1"
        )
        # mutating after the snapshot must not alter the captured state.
        paper_session.restore(checkpoint)
        assert paper_session.store.invoke_scalar(
            Atom("ben"), "Salary"
        ) == Value(30000)
