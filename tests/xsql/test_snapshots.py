"""Tests for session snapshots (checkpoint/rollback)."""

import pytest

from repro.oid import Atom, Value
from tests.conftest import names


class TestSnapshots:
    def test_rollback_after_update(self, paper_session):
        checkpoint = paper_session.snapshot()
        paper_session.execute(
            "UPDATE CLASS Division SET d_eng.Function = 'changed'"
        )
        assert paper_session.store.invoke_scalar(
            Atom("d_eng"), "Function"
        ) == Value("changed")
        paper_session.restore(checkpoint)
        assert paper_session.store.invoke_scalar(
            Atom("d_eng"), "Function"
        ) == Value("R&D")

    def test_rollback_removes_created_objects(self, paper_session):
        checkpoint = paper_session.snapshot()
        result = paper_session.execute(
            "SELECT N = Y.Name FROM Company Y OID FUNCTION OF Y"
        )
        created = result.created[0]
        assert created in paper_session.store.known_objects()
        paper_session.restore(checkpoint)
        assert created not in paper_session.store.known_objects()

    def test_queries_work_after_restore(self, paper_session):
        checkpoint = paper_session.snapshot()
        paper_session.restore(checkpoint)
        result = paper_session.query(
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"
        )
        assert names(result) == ["john13", "kim"]

    def test_snapshot_is_isolated_from_later_writes(self, paper_session):
        checkpoint = paper_session.snapshot()
        paper_session.execute(
            "UPDATE CLASS Employee SET ben.Salary = 1"
        )
        # mutating after the snapshot must not alter the captured state.
        paper_session.restore(checkpoint)
        assert paper_session.store.invoke_scalar(
            Atom("ben"), "Salary"
        ) == Value(30000)


COMP_SALARIES = """
CREATE VIEW CompSalaries AS SUBCLASS OF Object
SIGNATURE CompName = String, DivName = String, Salary = Numeral
SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary
FROM Company X
OID FUNCTION OF X, W
WHERE X.Divisions[Y].Employees[W]
"""


class TestSnapshotRoundTripWithViewsAndCreation:
    """§4.1/§4.2 state — materialized views and OID-function objects —
    must survive a snapshot/restore round-trip intact."""

    def test_view_state_survives_roundtrip(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        extent_before = paper_session.store.extent("CompSalaries")
        rows_before = paper_session.query(
            "SELECT V.Salary FROM CompSalaries V WHERE V.CompName['Acme']"
        ).rows()
        paper_session.restore(paper_session.snapshot())
        assert paper_session.store.extent("CompSalaries") == extent_before
        hierarchy = paper_session.store.hierarchy
        assert hierarchy.is_subclass(Atom("CompSalaries"), Atom("Object"))
        sigs = paper_session.store.signatures_of("CompSalaries", "Salary")
        assert sigs and sigs[0].result == Atom("Numeral")
        rows_after = paper_session.query(
            "SELECT V.Salary FROM CompSalaries V WHERE V.CompName['Acme']"
        ).rows()
        assert rows_after == rows_before

    def test_created_objects_survive_roundtrip(self, paper_session):
        result = paper_session.execute(
            "SELECT N = Y.Name FROM Company Y OID FUNCTION OF Y"
        )
        created = set(result.created)
        assert created
        paper_session.restore(paper_session.snapshot())
        assert created <= paper_session.store.known_objects()
        for oid in created:
            assert paper_session.store.invoke_scalar(oid, "N") is not None

    def test_snapshot_is_stable_under_roundtrip(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        paper_session.execute(
            "SELECT N = Y.Name FROM Company Y OID FUNCTION OF Y"
        )
        first = paper_session.snapshot()
        paper_session.restore(first)
        second = paper_session.snapshot()
        assert first == second

    def test_restore_older_snapshot_drops_view(self, paper_session):
        checkpoint = paper_session.snapshot()
        paper_session.execute(COMP_SALARIES)
        assert paper_session.store.extent("CompSalaries")
        paper_session.restore(checkpoint)
        assert Atom("CompSalaries") not in paper_session.store.hierarchy.classes()


CREATE_COMPANY_OBJECTS = (
    "SELECT N = Y.Name FROM Company Y OID FUNCTION OF Y"
)


class TestRestoreRebuildsIdFunctionRegistry:
    """``restore`` must reseed the id-function registry from the restored
    object graph, not carry the pre-snapshot table forward (§4.1: one
    functor per creating query, or two queries share "the same" oids)."""

    def test_restore_into_fresh_session_knows_restored_functors(
        self, paper_session
    ):
        from repro.xsql.session import Session

        paper_session.execute(CREATE_COMPANY_OBJECTS)  # allocates qf1
        payload = paper_session.snapshot()
        fresh = Session()
        fresh.restore(payload)
        assert fresh.registry.known("qf1")
        # The ad-hoc counter resumes past the restored functor: the next
        # creating query must NOT reuse qf1.
        assert fresh.registry.fresh_functor() == "qf2"

    def test_creation_after_restore_does_not_collide(self, paper_session):
        first = paper_session.execute(CREATE_COMPANY_OBJECTS)
        paper_session.restore(paper_session.snapshot())
        second = paper_session.execute(CREATE_COMPANY_OBJECTS)
        functors_first = {oid.functor for oid in first.created}
        functors_second = {oid.functor for oid in second.created}
        assert functors_first.isdisjoint(functors_second)

    def test_restore_drops_registry_entries_for_dropped_objects(
        self, paper_session
    ):
        checkpoint = paper_session.snapshot()
        paper_session.execute(CREATE_COMPANY_OBJECTS)
        assert paper_session.registry.known("qf1")
        paper_session.restore(checkpoint)
        # The snapshot predates the creation: qf1's objects are gone, so
        # the registry must not claim the functor is still defined.
        assert not paper_session.registry.known("qf1")

    def test_view_functor_instances_survive_restore(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        instances_before = paper_session.registry.instances("CompSalaries")
        assert instances_before
        paper_session.restore(paper_session.snapshot())
        assert (
            paper_session.registry.instances("CompSalaries")
            == instances_before
        )
