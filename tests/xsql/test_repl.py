"""Tests for the interactive shell (driven over in-memory streams)."""

import io
import subprocess
import sys

import pytest

from repro.xsql.repl import run_repl
from tests.conftest import make_paper_session


def drive(script: str) -> str:
    session = make_paper_session()
    out = io.StringIO()
    run_repl(session, stdin=io.StringIO(script), stdout=out)
    return out.getvalue()


class TestStatements:
    def test_query_prints_table(self):
        output = drive("SELECT X FROM Company X;\n")
        assert "uniSQL" in output and "acme" in output

    def test_multiline_statement(self):
        output = drive(
            "SELECT X\nFROM Employee X\nWHERE X.Salary > 200000;\n"
        )
        assert "pat" in output and "maria" in output

    def test_several_statements_one_line(self):
        output = drive(
            "SELECT X FROM Motorbike X; SELECT X FROM Bicycle X;\n"
        )
        assert "moto1" in output

    def test_error_reported_session_survives(self):
        output = drive("SELECT FROM;\nSELECT X FROM Company X;\n")
        assert "error:" in output
        assert "uniSQL" in output

    def test_ddl_status(self):
        output = drive("CREATE CLASS Robot;\n")
        assert "Robot" in output


class TestMetaCommands:
    def test_help(self):
        assert ".schema" in drive(".help\n")

    def test_schema_listing(self):
        output = drive(".schema\n")
        assert "Employee :: Person" in output
        assert "FamMembers" in output

    def test_describe(self):
        output = drive(".describe mary123\n")
        assert "Residence" in output

    def test_explain(self):
        output = drive(
            ".explain SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
            "and M.President.OwnedVehicles[X]\n"
        )
        assert "typing: strict" in output

    def test_explain_analyze(self):
        output = drive(
            ".explain analyze SELECT X FROM Vehicle X "
            "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]\n"
        )
        assert "physical operators:" in output
        assert "act=" in output and "time=" in output

    def test_naive(self):
        output = drive(".naive SELECT mary123.Residence.City\n")
        assert "newyork" in output

    def test_indexes_meta_command(self):
        output = drive(".indexes\n.indexes +Name\n.indexes -Name\n")
        assert "indexes: (none)" in output
        assert "indexes: Name" in output
        assert output.rstrip().endswith("indexes: (none)")

    def test_views_meta_command(self):
        view = (
            "CREATE VIEW CompCard AS SUBCLASS OF Object "
            "SIGNATURE CName = String "
            "SELECT CName = C.Name FROM Company C OID FUNCTION OF C;"
        )
        update = (
            "SELECT X FROM Company X WHERE X.Name['Acme'] "
            "and UPDATE CLASS Company SET X.Name = 'Renamed';"
        )
        output = drive(
            ".views\n"
            f"{view}\n.views\n"
            f"{update}\n.views\n"
            "SELECT V.CName FROM CompCard V;\n.views\n"
        )
        assert "views: (none)" in output
        assert "CompCard: fresh objects=2" in output
        assert "CompCard: delta-pending objects=2 pending_groups=1" in output
        # Querying through the view triggers the lazy targeted sync.
        assert "'Renamed'" in output
        assert "last=targeted/1 group(s)" in output

    def test_quit_stops(self):
        output = drive(".quit\nSELECT X FROM Company X;\n")
        assert "uniSQL" not in output

    def test_unknown_meta(self):
        assert "unknown meta-command" in drive(".frobnicate\n")

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "dump.json"
        output = drive(
            f".save {path}\n"
            f"UPDATE CLASS Division SET d_eng.Function = 'changed';\n"
            f".load {path}\n"
            f"SELECT d_eng.Function;\n"
        )
        assert "saved" in output and "loaded" in output
        assert "'R&D'" in output  # the pre-save value came back
        assert "'changed'" not in output.split("loaded")[1]


class TestProcessEntryPoint:
    def test_module_runs_with_paper_flag(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.xsql.repl", "--paper"],
            input="SELECT mary123.Residence.City;\n.quit\n",
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0
        assert "newyork" in completed.stdout


class TestVersionMetaCommands:
    def test_version_line(self):
        output = drive(".version\n")
        assert "version: v" in output
        assert "pins=0" in output

    def test_snapshot_runs_query_at_pinned_version(self):
        output = drive(".snapshot SELECT X FROM Company X\n")
        assert "snapshot pinned at v" in output
        assert "uniSQL" in output

    def test_snapshot_without_query_prints_usage(self):
        output = drive(".snapshot\n")
        assert "usage: .snapshot" in output

    def test_snapshot_releases_its_pin(self):
        output = drive(".snapshot SELECT X FROM Company X\n.version\n")
        assert "pins=0" in output
