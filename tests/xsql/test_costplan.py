"""Tests for the cost-based planner and the ``plan="cost"`` discipline."""

import pytest

from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.costplan import EXHAUSTIVE_LIMIT, CostPlanner
from repro.xsql.parser import parse_query
from repro.xsql.session import Session


@pytest.fixture
def workload_session() -> Session:
    # 120 people: comfortably above the planner's min_scan_rows floor, so
    # selective predicates make an index probe worth auto-enabling.
    return Session(generate_database(WorkloadConfig(n_people=120, seed=29)))


SELECTIVE = "SELECT X FROM Person X WHERE X.Name['P17']"


def _probes_of(planner, text):
    from repro.xsql.planner import _flatten

    query = parse_query(text)
    return planner.find_probes(_flatten(query.where))


class TestProbeDetection:
    def test_ground_selector_probe_found(self, workload_session):
        planner = CostPlanner(workload_session.store, index_mode="manual")
        probes = _probes_of(planner, SELECTIVE)
        assert [p.render() for p in probes] == ["X.Name['P17']"]

    def test_no_probe_inside_disjunction(self, workload_session):
        planner = CostPlanner(workload_session.store, index_mode="manual")
        assert not _probes_of(
            planner,
            "SELECT X FROM Person X "
            "WHERE (X.Name['P17']) or (X.Name['P18'])",
        )

    def test_no_probe_inside_negation(self, workload_session):
        planner = CostPlanner(workload_session.store, index_mode="manual")
        assert not _probes_of(
            planner, "SELECT X FROM Person X WHERE not X.Name['P17']"
        )

    def test_variable_selector_is_not_a_probe(self, workload_session):
        planner = CostPlanner(workload_session.store, index_mode="manual")
        assert not _probes_of(
            planner, "SELECT X FROM Person X WHERE X.Name[N]"
        )


class TestAutoEnable:
    def test_auto_mode_enables_paying_index(self, workload_session):
        store = workload_session.store
        assert not store.is_indexed("Name")
        planner = CostPlanner(store, index_mode="auto")
        plan = planner.plan(parse_query(SELECTIVE))
        assert store.is_indexed("Name")
        assert [m.name for m in plan.auto_enabled] == ["Name"]

    def test_manual_mode_never_enables(self, workload_session):
        store = workload_session.store
        planner = CostPlanner(store, index_mode="manual")
        plan = planner.plan(parse_query(SELECTIVE))
        assert not store.is_indexed("Name")
        assert plan.auto_enabled == ()

    def test_manual_mode_uses_existing_index(self, workload_session):
        store = workload_session.store
        store.enable_index("Name")
        planner = CostPlanner(store, index_mode="manual")
        plan = planner.plan(parse_query(SELECTIVE))
        assert plan.entries[0].access_path == "index-probe"

    def test_off_mode_forbids_probes(self, workload_session):
        store = workload_session.store
        store.enable_index("Name")
        planner = CostPlanner(store, index_mode="off")
        plan = planner.plan(parse_query(SELECTIVE))
        assert plan.probes == ()
        assert plan.entries[0].access_path == "extent-scan"

    def test_tiny_extents_never_pay(self, paper_session):
        # The paper database is far below min_scan_rows.
        store = paper_session.store
        planner = CostPlanner(store, index_mode="auto")
        planner.plan(parse_query("SELECT X FROM Person X WHERE X.Name['mary']"))
        assert store.indexed_methods() == frozenset()

    def test_invalid_index_mode_rejected(self, workload_session):
        with pytest.raises(ValueError):
            CostPlanner(workload_session.store, index_mode="sometimes")


class TestOrdering:
    def test_ordered_where_preserves_conjuncts(self, workload_session):
        from repro.xsql.planner import _flatten

        planner = CostPlanner(workload_session.store, index_mode="manual")
        query = parse_query(
            "SELECT X FROM Person X "
            "WHERE X.Employer[E] and X.Name['P17'] and E.Name[CN]"
        )
        plan = planner.plan(query)
        assert plan.ordered_where is not None
        original = {str(c) for c in _flatten(query.where)}
        ordered = {str(c) for c in _flatten(plan.ordered_where)}
        assert original == ordered

    def test_small_conjunctions_search_exhaustively(self, workload_session):
        planner = CostPlanner(workload_session.store, index_mode="manual")
        plan = planner.plan(
            parse_query(
                "SELECT X FROM Person X WHERE X.Employer[E] and E.Name[N]"
            )
        )
        assert plan.search == "exhaustive"

    def test_large_conjunctions_fall_back_to_greedy(self, workload_session):
        conjuncts = " and ".join(
            f"X.Name[N{i}]" for i in range(EXHAUSTIVE_LIMIT + 1)
        )
        planner = CostPlanner(workload_session.store, index_mode="manual")
        plan = planner.plan(
            parse_query(f"SELECT X FROM Person X WHERE {conjuncts}")
        )
        assert plan.search == "greedy"

    def test_update_queries_are_not_applicable(self, workload_session):
        planner = CostPlanner(workload_session.store)
        query = parse_query(
            "SELECT X FROM Person X "
            "WHERE (UPDATE CLASS Person SET X.Age = 1)"
        )
        assert not planner.applicable(query)


class TestCostExecution:
    AGREEMENT_QUERIES = [
        SELECTIVE,
        "SELECT X FROM Person X WHERE X.Employer[E] and E.Name[N]",
        "SELECT X, Y FROM Person X, Person Y "
        "WHERE X.Employer[E] and Y.Employer[E] and X.Name['P17']",
        "SELECT X FROM Person X WHERE not X.Name['P17']",
    ]

    @pytest.mark.parametrize("text", AGREEMENT_QUERIES)
    def test_cost_plan_agrees_with_reference(self, workload_session, text):
        reference = workload_session.query(text, plan="none")
        cost = workload_session.query(text, plan="cost")
        assert cost.rows() == reference.rows()
        assert list(cost) == list(reference)

    def test_trace_aligns_with_plan_entries(self, workload_session):
        compiled = workload_session.prepare(SELECTIVE, plan="cost")
        compiled.run()
        assert compiled.cost_plan is not None
        assert compiled.last_trace is not None
        assert len(compiled.last_trace) == len(compiled.cost_plan.entries)

    def test_replan_when_statistics_drift(self, workload_session):
        compiled = workload_session.prepare(SELECTIVE, plan="cost")
        compiled.run()
        version = compiled.cost_plan.version
        # A data write moves the catalogue but not the schema; the next
        # run re-plans in place without a full recompile.
        store = workload_session.store
        person = sorted(store.extent("Person"), key=str)[0]
        store.unset_attr(person, "Name")
        compiled.run()
        assert compiled.cost_plan.version.data > version.data
        assert compiled.cost_plan.version.same_schema(version)

    def test_estimation_error_is_observed(self, workload_session):
        workload_session.query(SELECTIVE, plan="cost")
        snapshot = workload_session.stats()
        assert "cost.estimation_error" in snapshot.get("observations", {})

    def test_probe_counted_in_metrics(self, workload_session):
        workload_session.query(SELECTIVE, plan="cost")
        counters = workload_session.stats()["counters"]
        assert counters.get("cost.probe", 0) >= 1


class TestAccessPaths:
    def test_access_paths_on_cost_compilation(self, workload_session):
        compiled = workload_session.prepare(SELECTIVE, plan="cost")
        paths = compiled.access_paths()
        assert paths[0]["kind"] == "from"
        assert paths[0]["access_path"] == "index-probe"

    def test_advisory_access_paths_do_not_touch_the_store(
        self, workload_session
    ):
        compiled = workload_session.prepare(SELECTIVE, plan="greedy")
        generation = workload_session.store.schema_generation
        paths = compiled.access_paths()
        assert paths, "advisory plan should still be produced"
        assert workload_session.store.schema_generation == generation
        assert not workload_session.store.is_indexed("Name")
