"""Smoke tests for the experiment-report harness (fast experiments only)."""

import pytest

from repro.bench import report


class TestExperiments:
    def test_paper_answers_all_ok(self):
        lines = report.experiment_paper_answers()
        assert lines[0].startswith("##")
        assert all("MISMATCH" not in line for line in lines), lines

    def test_thm31_full_agreement(self):
        lines = report.experiment_thm31()
        assert any("6/6" in line for line in lines), lines

    def test_typing_spectrum(self):
        text = "\n".join(report.experiment_typing_spectrum())
        assert "fragment (17): strict via plan p0 -> p1" in text
        assert "fragment (19): strict via plan p2 -> p1 -> p0" in text
        assert "liberal-only" in text and "strict" in text

    def test_engt_rows(self):
        lines = report.experiment_engt()
        assert len(lines) == 4
        assert all("ms" in line for line in lines[1:])

    def test_pvsq_equivalence_enforced(self):
        lines = report.experiment_pvsq()
        assert len(lines) == 4  # header + three formulations
