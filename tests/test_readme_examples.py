"""Documentation hygiene: the README's code blocks actually run."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_and_mentions_the_paper(self):
        text = README.read_text()
        assert "Kifer" in text and "SIGMOD" in text
        assert "XSQL" in text

    def test_quickstart_block_executes(self):
        blocks = python_blocks()
        assert blocks, "README must contain a python quickstart"
        # Execute every python block in one shared namespace, in order.
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, str(README), "exec"), namespace)
        # the quickstart leaves a session with the paper data behind.
        session = namespace["session"]
        assert len(session.query("SELECT X FROM Company X")) == 2

    def test_architecture_tree_matches_real_modules(self):
        text = README.read_text()
        root = README.parent / "src" / "repro"
        for line in text.splitlines():
            match = re.match(r"^\s{4}(\w+\.py)\s{2,}", line)
            if match:
                name = match.group(1)
                found = list(root.rglob(name))
                assert found, f"README mentions missing module {name}"


class TestPackageDocstrings:
    def test_every_module_has_a_docstring(self):
        root = README.parent / "src" / "repro"
        missing = []
        for path in sorted(root.rglob("*.py")):
            source = path.read_text()
            stripped = source.lstrip()
            if not stripped:
                continue
            if not stripped.startswith(('"""', "'''")):
                missing.append(str(path.relative_to(root)))
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_documented(self):
        import inspect

        import repro
        from repro import typing as typing_pkg
        from repro import datamodel, flogic, relational, views, xsql

        undocumented = []
        for module in (repro, datamodel, xsql, views, typing_pkg, flogic,
                       relational):
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented
