"""The fuzz loop end-to-end: stats, summaries, and counterexample flow."""

import pytest

from repro.difftest.corpus import load_case
from repro.difftest.oracle import EngineOutcome, OracleReport
from repro.difftest.runner import FuzzStats, run_fuzz
from repro.difftest.__main__ import main as cli_main
from repro.errors import XsqlError


def test_smoke_fuzz_agrees():
    stats = run_fuzz(seed=0, queries=40, sizes=("tiny",))
    assert stats.ok, stats.summary()
    assert stats.queries == 40
    assert stats.engine_counts["reference"]["ok"] + stats.reference_errors == 40
    assert stats.engine_counts["flogic"]["skip"] < 40
    assert "disagreements: 0" in stats.summary()


def test_budget_splits_across_sizes():
    stats = run_fuzz(seed=1, queries=21, sizes=("tiny", "small"))
    assert stats.queries == 21  # 11 tiny (remainder) + 10 small


def test_unknown_size_rejected():
    with pytest.raises(XsqlError):
        run_fuzz(seed=0, queries=5, sizes=("galactic",))


def test_skip_rate_accounting():
    stats = FuzzStats()
    for status in ("ok", "ok", "skip", "error"):
        stats.record_outcome("flogic", status)
    assert stats.skip_rate("flogic") == 0.25
    assert stats.skip_rate("unknown") == 0.0


def test_disagreement_is_shrunk_and_saved(tmp_path, monkeypatch):
    # Break one engine deliberately: drop a row from flogic's answers.
    from repro.difftest import oracle as oracle_mod

    real_judge = oracle_mod.Oracle._judge

    def sabotaged_judge(self, report):
        flogic = report.outcomes.get("flogic")
        if flogic is not None and flogic.status == "ok" and flogic.rows:
            report.outcomes["flogic"] = EngineOutcome(
                engine="flogic",
                status="ok",
                rows=frozenset(list(flogic.rows)[1:]),
            )
        real_judge(self, report)

    monkeypatch.setattr(oracle_mod.Oracle, "_judge", sabotaged_judge)
    stats = run_fuzz(
        seed=0,
        queries=30,
        sizes=("tiny",),
        corpus_dir=tmp_path,
        fail_fast=True,
    )
    assert not stats.ok
    assert stats.disagreements
    entry = stats.disagreements[0]
    assert "flogic" in entry["reasons"][0]
    # The counterexample was persisted and replays standalone.
    assert stats.corpus_paths
    case = load_case(stats.corpus_paths[0])
    assert case.query == entry["minimized"]
    assert case.found_by["seed"] == 0
    # The minimized query is no larger than the original.
    assert len(entry["minimized"]) <= len(entry["query"])


def test_cli_smoke(capsys):
    code = cli_main(
        ["--seed", "0", "--queries", "20", "--sizes", "tiny", "--quiet"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "disagreements: 0" in out
    assert "engine flogic" in out


def test_cli_max_depth(capsys):
    code = cli_main(
        [
            "--seed", "2", "--queries", "15", "--sizes", "tiny",
            "--max-depth", "1", "--quiet",
        ]
    )
    assert code == 0
