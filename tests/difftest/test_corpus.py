"""Corpus persistence round-trips, and every checked-in case replays.

The replay test is the regression suite the fuzzer feeds: any
counterexample checked in under ``tests/corpus/`` is rebuilt from its
workload config and pushed through the full engine matrix again.  A case
that disagrees here is a reopened engine bug.
"""

from pathlib import Path

import pytest

from repro.difftest.corpus import (
    CorpusCase,
    iter_corpus,
    load_case,
    save_case,
    workload_from_dict,
    workload_to_dict,
)
from repro.difftest.oracle import Oracle
from repro.workloads.generator import WORKLOAD_PRESETS, WorkloadConfig

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


def test_save_load_roundtrip(tmp_path):
    case = CorpusCase(
        description="example",
        query="SELECT X FROM Person X",
        workload=WORKLOAD_PRESETS["tiny"],
        found_by={"seed": 9, "index": 4},
    )
    path = save_case(case, tmp_path)
    loaded = load_case(path)
    assert loaded == case
    assert list(iter_corpus(tmp_path)) == [path]


def test_workload_serialization_prefers_presets():
    assert workload_to_dict(WORKLOAD_PRESETS["small"]) == {"preset": "small"}
    custom = WorkloadConfig(n_people=7)
    payload = workload_to_dict(custom)
    assert payload["n_people"] == 7
    assert workload_from_dict(payload) == custom
    assert workload_from_dict({"preset": "tiny"}) == WORKLOAD_PRESETS["tiny"]


def test_iter_corpus_on_missing_dir(tmp_path):
    assert list(iter_corpus(tmp_path / "nope")) == []


def test_corpus_is_not_empty():
    assert list(iter_corpus(CORPUS_DIR)), (
        "tests/corpus should carry at least the seeded regression cases"
    )


_oracles = {}


def _oracle_for(config: WorkloadConfig) -> Oracle:
    # Cases share stores keyed by workload config so replay stays fast.
    if config not in _oracles:
        _oracles[config] = Oracle(CorpusCase("", "", config).build_store())
    return _oracles[config]


@pytest.mark.parametrize(
    "path", list(iter_corpus(CORPUS_DIR)), ids=lambda p: p.stem
)
def test_replay_corpus_case(path):
    case = load_case(path)
    oracle = _oracle_for(case.workload)
    report = oracle.run(case.query)
    assert not report.reference_failed, report.summary()
    assert report.agreed, f"{case.description}\n{report.summary()}"
