"""Tests for the concurrent snapshot-isolation fuzzer."""

from repro.datamodel.store import ObjectStore
from repro.difftest.concurrent import (
    apply_op,
    generate_ops,
    main,
    run_fuzz,
    seed_store,
)


class TestOpGeneration:
    def test_deterministic_for_a_seed(self):
        assert generate_ops(7, 60) == generate_ops(7, 60)
        assert generate_ops(7, 60) != generate_ops(8, 60)

    def test_tickets_are_strictly_increasing(self):
        _ops, tickets = generate_ops(7, 60)
        assert all(a < b for a, b in zip(tickets, tickets[1:]))

    def test_ops_replay_cleanly_and_land_on_the_same_ticket(self):
        ops, tickets = generate_ops(7, 60)
        store = ObjectStore()
        seed_store(store)
        for op in ops:
            apply_op(store, op)
        assert store.version.ticket == tickets[-1]


class TestFuzzRound:
    def test_small_round_has_zero_disagreements(self):
        stats = run_fuzz(seed=11, ops=80, readers=2, queries_per_reader=4)
        assert stats.ok, stats.disagreements
        assert stats.ops == 80
        assert stats.observations == stats.snapshots == 8
        assert "OK" in stats.summary()

    def test_cli_exit_codes(self, capsys):
        assert main(["--seed", "11", "--ops", "40", "--readers", "2",
                     "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 disagreement(s) [OK]" in out
