"""The generator produces deterministic, well-formed, parseable XSQL."""

import pytest

from repro.difftest.grammar import GeneratorConfig, QueryGenerator, SchemaModel
from repro.workloads.generator import WORKLOAD_PRESETS, generate_database
from repro.xsql import ast
from repro.xsql.parser import parse_query


@pytest.fixture(scope="module")
def tiny_store():
    return generate_database(WORKLOAD_PRESETS["tiny"])


@pytest.fixture(scope="module")
def generator(tiny_store):
    return QueryGenerator(SchemaModel.from_store(tiny_store), seed=0)


def test_same_seed_same_queries(tiny_store):
    schema = SchemaModel.from_store(tiny_store)
    first = [str(QueryGenerator(schema, seed=3).generate(i)) for i in range(40)]
    second = [str(QueryGenerator(schema, seed=3).generate(i)) for i in range(40)]
    assert first == second


def test_different_seeds_differ(tiny_store):
    schema = SchemaModel.from_store(tiny_store)
    a = [str(QueryGenerator(schema, seed=0).generate(i)) for i in range(40)]
    b = [str(QueryGenerator(schema, seed=1).generate(i)) for i in range(40)]
    assert a != b


def test_render_parse_roundtrip(generator):
    """str(q) must parse, and the reparse must be a fixpoint."""
    for index in range(150):
        query = generator.generate(index)
        text = str(query)
        parsed = parse_query(text)
        assert isinstance(parsed, ast.Query), text
        assert str(parse_query(str(parsed))) == str(parsed), text


def test_queries_are_range_restricted(generator):
    """Every free variable is introduced by a FROM declaration or bound
    as a path selector — the naive §3.4 oracle rejects unsafe queries."""
    for index in range(150):
        query = generator.generate(index)
        declared = {decl.var for decl in query.from_}
        selectors = set()
        if query.where is not None:
            for cond in _conjuncts(query.where):
                if isinstance(cond, ast.PathCond):
                    for step in cond.path.steps:
                        from repro.oid import Variable

                        if isinstance(step.selector, Variable):
                            selectors.add(step.selector)
        from repro.oid import VarSort

        for var in ast.free_variables(query):
            if var.sort is VarSort.CLASS:
                continue  # schema queries quantify class vars implicitly
            assert var in declared | selectors, (str(query), var)


def _conjuncts(cond):
    if isinstance(cond, ast.AndCond):
        for item in cond.items:
            yield from _conjuncts(item)
    else:
        yield cond


def test_max_path_depth_respected(tiny_store):
    schema = SchemaModel.from_store(tiny_store)
    config = GeneratorConfig(max_path_depth=2)
    generator = QueryGenerator(schema, config, seed=5)
    for index in range(100):
        query = generator.generate(index)
        for path in _paths_of(query):
            assert len(path.steps) <= 2, str(query)


def _paths_of(query):
    for item in query.select:
        if isinstance(item, ast.PathItem):
            yield item.path
    if query.where is not None:
        stack = [query.where]
        while stack:
            cond = stack.pop()
            if isinstance(cond, (ast.AndCond, ast.OrCond)):
                stack.extend(cond.items)
            elif isinstance(cond, ast.NotCond):
                stack.append(cond.item)
            elif isinstance(cond, ast.PathCond):
                yield cond.path
            elif isinstance(cond, ast.Comparison):
                for operand in (cond.lhs, cond.rhs):
                    if isinstance(operand, ast.PathOperand):
                        yield operand.path
                    elif isinstance(operand, ast.AggOperand):
                        yield operand.path


def test_grammar_covers_condition_kinds(generator):
    """A few hundred draws exercise every major grammar production."""
    seen = set()
    for index in range(300):
        query = generator.generate(index)
        if query.where is None:
            seen.add("nowhere")
            continue
        stack = [query.where]
        while stack:
            cond = stack.pop()
            if isinstance(cond, ast.AndCond):
                stack.extend(cond.items)
            elif isinstance(cond, ast.OrCond):
                seen.add("or")
                stack.extend(cond.items)
            elif isinstance(cond, ast.NotCond):
                seen.add("not")
                stack.append(cond.item)
            elif isinstance(cond, ast.SchemaCond):
                seen.add(cond.kind)
            elif isinstance(cond, ast.PathCond):
                seen.add("pathcond")
            elif isinstance(cond, ast.Comparison):
                seen.add("comparison")
                if cond.lq == "all" or cond.rq == "all":
                    seen.add("all")
                if isinstance(cond.lhs, ast.AggOperand):
                    seen.add("aggregate")
                if isinstance(cond.rhs, ast.SetLitOperand):
                    seen.add("setlit")
    assert {
        "comparison",
        "pathcond",
        "aggregate",
        "setlit",
        "all",
        "or",
        "not",
        "instanceOf",
    } <= seen, seen


def test_schema_model_reflects_figure1(tiny_store):
    schema = SchemaModel.from_store(tiny_store)
    assert "Person" in schema.class_names()
    attrs = {a.name for a in schema.attrs_of("Employee")}
    assert {"Name", "Age", "Salary"} <= attrs
    assert "Person" in schema.populated_classes()
