"""Shrinking minimizes failing queries while preserving the failure."""

from repro.difftest.shrink import shrink_query
from repro.xsql import ast
from repro.xsql.parser import parse_query


def _parse(text):
    query = parse_query(text)
    assert isinstance(query, ast.Query)
    return query


def test_shrink_drops_irrelevant_conjuncts():
    query = _parse(
        "SELECT X.Name, X.Age FROM Employee X, Company Y "
        "WHERE (X.Salary > 10) and (X.Age < 99) and (Y.Name = 'c')"
    )

    def mentions_salary(candidate):
        return "Salary" in str(candidate)

    small = shrink_query(query, mentions_salary)
    text = str(small)
    assert "Salary" in text
    assert "Age <" not in text
    assert "Y.Name" not in text
    # The unused Company declaration and the extra select item go too.
    assert "Company" not in text
    assert text.count(",") == 0


def test_shrink_result_parses_and_holds():
    query = _parse(
        "SELECT X FROM Person X "
        "WHERE (count(X.OwnedVehicles) >= 1) and (X.Age > 3)"
    )

    def has_count(candidate):
        return "count(" in str(candidate)

    small = shrink_query(query, has_count)
    assert "count(" in str(small)
    reparsed = parse_query(str(small))
    assert str(reparsed) == str(small)


def test_shrink_unwraps_negation_and_disjunction():
    query = _parse(
        "SELECT X FROM Person X "
        "WHERE (not (X.Age = 5)) and ((X.Age > 1) or (X.Age < 90))"
    )

    def mentions_age(candidate):
        return "Age" in str(candidate)

    small = shrink_query(query, mentions_age)
    text = str(small)
    assert "not" not in text
    assert "or" not in text
    assert "and" not in text


def test_shrink_truncates_paths():
    query = _parse(
        "SELECT X.Residence.City FROM Person X WHERE X.Age > 0"
    )

    def selects_from_person(candidate):
        return bool(candidate.from_) and "Person" in str(candidate.from_[0])

    small = shrink_query(query, selects_from_person)
    # Both the WHERE clause and the path steps are deletable here.
    assert small.where is None
    (item,) = small.select
    assert not item.path.steps


def test_shrink_is_identity_when_nothing_deletable():
    query = _parse("SELECT X FROM Person X WHERE X.Age > 5")

    def needs_everything(candidate):
        return "Age > 5" in str(candidate) and bool(candidate.from_)

    small = shrink_query(query, needs_everything)
    assert str(small) == str(query)


def test_shrink_survives_predicate_exceptions():
    query = _parse("SELECT X FROM Person X WHERE X.Age > 5")

    def explosive(candidate):
        raise RuntimeError("oracle crashed")

    small = shrink_query(query, explosive)
    assert str(small) == str(query)
