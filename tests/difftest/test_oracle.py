"""The oracle's engine matrix, skip classification, and judgement."""

import pytest

from repro.difftest.oracle import EngineOutcome, Oracle, OracleReport
from repro.workloads.generator import WORKLOAD_PRESETS, generate_database


@pytest.fixture(scope="module")
def oracle():
    return Oracle(generate_database(WORKLOAD_PRESETS["tiny"]))


def test_all_engines_agree_on_conjunctive_query(oracle):
    report = oracle.run(
        "SELECT X.Name FROM Employee X WHERE X.Salary > 20000"
    )
    assert report.agreed
    for name in (
        "reference",
        "optimized",
        "cached",
        "naive",
        "flogic",
        "snapshot",
    ):
        assert report.outcomes[name].status == "ok", report.summary()
    assert report.outcomes["flogic"].rows == report.outcomes["reference"].rows


def test_cached_engine_hits_statement_cache(oracle):
    text = "SELECT X FROM Employee X WHERE X.Salary > 30000"
    oracle.run(text)
    before = oracle.session.stats()["counters"].get("cache.hit", 0)
    report = oracle.run(text)
    assert report.agreed
    after = oracle.session.stats()["counters"].get("cache.hit", 0)
    # Second oracle run re-prepares the same (text, plan) key: a hit,
    # plus the compiled query's own second execution.
    assert after > before


def test_flogic_skips_outside_fragment(oracle):
    report = oracle.run(
        "SELECT X FROM Person X WHERE (X.Age > 10) or (X.Age < 5)"
    )
    assert report.agreed
    assert report.outcomes["flogic"].status == "skip"
    assert report.outcomes["reference"].status == "ok"


def test_naive_skips_when_substitution_space_too_big(oracle):
    report = oracle.run(
        "SELECT X, Y, Z FROM Person X, Person Y, Person Z "
        "WHERE (X.Age > Y.Age) and (Y.Age > Z.Age)"
    )
    assert report.outcomes["naive"].status == "skip"
    assert "substitution space" in report.outcomes["naive"].detail
    assert report.agreed


def test_naive_can_be_disabled():
    oracle = Oracle(
        generate_database(WORKLOAD_PRESETS["tiny"]), naive_enabled=False
    )
    report = oracle.run("SELECT X.Name FROM Person X")
    assert report.outcomes["naive"].status == "skip"
    assert report.agreed


def test_reference_error_is_not_a_disagreement(oracle):
    # avg over an empty set raises QueryError in every engine alike;
    # the oracle records the reference failure and judges nothing.
    report = oracle.run(
        "SELECT X FROM Person X WHERE avg(X.Dependents.Salary) > 1"
    )
    if report.outcomes["reference"].status == "error":
        assert report.reference_failed
        assert report.agreed


def test_engine_subset(oracle):
    report = oracle.run(
        "SELECT X FROM Person X", engines=("reference", "snapshot")
    )
    assert set(report.outcomes) == {"reference", "snapshot"}
    assert report.agreed


def test_judge_flags_row_differences(oracle):
    report = OracleReport(text="synthetic")
    report.outcomes["reference"] = EngineOutcome(
        engine="reference", status="ok", rows=frozenset({("a",), ("b",)})
    )
    report.outcomes["flogic"] = EngineOutcome(
        engine="flogic", status="ok", rows=frozenset({("a",)})
    )
    oracle._judge(report)
    assert len(report.disagreements) == 1
    assert "missing 1" in report.disagreements[0]


def test_judge_flags_engine_error_when_reference_ok(oracle):
    report = OracleReport(text="synthetic")
    report.outcomes["reference"] = EngineOutcome(
        engine="reference", status="ok", rows=frozenset()
    )
    report.outcomes["naive"] = EngineOutcome(
        engine="naive", status="error", detail="QueryError: boom"
    )
    oracle._judge(report)
    assert len(report.disagreements) == 1
    assert "errored" in report.disagreements[0]


def test_judge_ignores_skips(oracle):
    report = OracleReport(text="synthetic")
    report.outcomes["reference"] = EngineOutcome(
        engine="reference", status="ok", rows=frozenset()
    )
    report.outcomes["flogic"] = EngineOutcome(
        engine="flogic", status="skip", detail="outside fragment"
    )
    oracle._judge(report)
    assert report.agreed


def test_snapshot_engine_runs_on_restored_store(oracle):
    report = oracle.run(
        "SELECT X.Residence.City FROM Employee X WHERE X.Salary > 0"
    )
    assert report.outcomes["snapshot"].status == "ok"
    assert report.outcomes["snapshot"].rows == report.outcomes["reference"].rows
    # The restored store is cached, not the live one.
    assert oracle._roundtrip() is not oracle.store
    assert oracle._roundtrip() is oracle._roundtrip()
