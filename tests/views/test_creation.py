"""Tests for object-creating queries (paper §4.1)."""

import pytest

from repro.errors import IllDefinedQueryError, QueryError, UnsafeQueryError
from repro.oid import Atom, FuncOid, Value
from repro.views.creation import execute_creation
from repro.views.id_functions import IdFunctionRegistry
from repro.xsql.parser import parse_query


def create(session, text, functor="f", **kwargs):
    query = parse_query(text)
    return execute_creation(
        session.evaluator(), query, functor, session.registry, **kwargs
    )


class TestGrouping:
    def test_one_object_per_group_key(self, paper_session):
        outcome = create(
            paper_session,
            "SELECT EmpSalary = W.Salary FROM Company X "
            "OID FUNCTION OF X, W WHERE X.Divisions.Employees[W]",
        )
        assert len(outcome.created) == 6  # one per (company, employee)

    def test_id_function_of_single_variable(self, paper_session):
        outcome = create(
            paper_session,
            "SELECT EmpSalary = W.Salary FROM Company X "
            "OID FUNCTION OF W WHERE X.Divisions.Employees[W]",
        )
        # one object per employee — "for each object of class Employee,
        # there will be a unique tuple in the result" (§4.1).
        assert len(outcome.created) == 6
        assert all(len(o.args) == 1 for o in outcome.created)

    def test_conflicting_scalars_are_ill_defined(self, paper_session):
        # The paper's ill-defined query: OID FUNCTION OF X only, but
        # salaries vary within a company.
        with pytest.raises(IllDefinedQueryError):
            create(
                paper_session,
                "SELECT CompName = X.Name, EmpSalary = W.Salary "
                "FROM Company X OID FUNCTION OF X "
                "WHERE X.Divisions.Employees[W]",
            )

    def test_oid_var_must_be_bound(self, paper_session):
        with pytest.raises(UnsafeQueryError):
            create(
                paper_session,
                "SELECT N = X.Name FROM Company X OID FUNCTION OF Z",
            )

    def test_non_creating_query_rejected(self, paper_session):
        with pytest.raises(QueryError):
            create(paper_session, "SELECT X FROM Company X")


class TestAttributes:
    def test_scalar_attribute_stored(self, paper_session):
        outcome = create(
            paper_session,
            "SELECT CompName = Y.Name FROM Company Y OID FUNCTION OF Y",
        )
        store = paper_session.store
        acme_view = FuncOid("f", (Atom("acme"),))
        assert store.invoke_scalar(acme_view, "CompName") == Value("Acme")

    def test_set_shaped_path_stores_set(self, paper_session):
        # Query (7): Employees = Y.Divisions.Employees.
        outcome = create(
            paper_session,
            "SELECT CompName = Y.Name, Employees = Y.Divisions.Employees "
            "FROM Company Y OID FUNCTION OF Y",
        )
        store = paper_session.store
        uni_view = FuncOid("f", (Atom("uniSQL"),))
        employees = store.invoke(uni_view, "Employees")
        assert employees == frozenset(
            {Atom("john13"), Atom("ben"), Atom("rich")}
        )

    def test_set_item_groups_bindings(self, paper_session):
        # Query (8): Beneficiaries = {W}.
        outcome = create(
            paper_session,
            "SELECT CompName = Y.Name, Beneficiaries = {W} "
            "FROM Company Y OID FUNCTION OF Y "
            "WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]",
        )
        store = paper_session.store
        uni_view = FuncOid("f", (Atom("uniSQL"),))
        beneficiaries = store.invoke(uni_view, "Beneficiaries")
        assert beneficiaries == frozenset(
            {Atom("ret1"), Atom("bob"), Atom("benfam1")}
        )

    def test_unnamed_select_item_rejected(self, paper_session):
        with pytest.raises(QueryError):
            create(
                paper_session,
                "SELECT Y.Name FROM Company Y OID FUNCTION OF Y",
            )

    def test_member_classes_assigned(self, paper_session):
        paper_session.store.declare_class("Snapshot")
        outcome = create(
            paper_session,
            "SELECT CompName = Y.Name FROM Company Y OID FUNCTION OF Y",
            member_classes=["Snapshot"],
        )
        for oid in outcome.created:
            assert paper_session.store.is_instance(oid, "Snapshot")

    def test_declared_set_valued_overrides_shape(self, paper_session):
        # A scalar-shaped path declared set-valued stores a set cell.
        outcome = create(
            paper_session,
            "SELECT Names = Y.Name FROM Company Y OID FUNCTION OF Y",
            declared_set_valued={"Names": True},
        )
        store = paper_session.store
        cell = store.explicit_cell(outcome.created[0], "Names")
        assert cell.set_valued


class TestDerivations:
    def test_scalar_derivation_recorded(self, paper_session):
        outcome = create(
            paper_session,
            "SELECT EmpSalary = W.Salary FROM Company X "
            "OID FUNCTION OF X, W WHERE X.Divisions.Employees[W]",
        )
        key = (
            FuncOid("f", (Atom("uniSQL"), Atom("rich"))),
            "EmpSalary",
        )
        derivation = outcome.derivations[key]
        assert derivation.target == Atom("rich")
        assert derivation.method == Atom("Salary")

    def test_trivial_path_has_no_derivation(self, paper_session):
        outcome = create(
            paper_session,
            "SELECT Self = Y FROM Company Y OID FUNCTION OF Y",
        )
        assert not outcome.derivations
