"""Tests for the id-function registry (paper §4.1)."""

from repro.oid import Atom, FuncOid, Value
from repro.views.id_functions import IdFunctionRegistry


class TestRegistry:
    def test_record_returns_oid(self):
        registry = IdFunctionRegistry()
        oid = registry.record("f", (Atom("a"), Value(1)))
        assert oid == FuncOid("f", (Atom("a"), Value(1)))

    def test_instances_listed_deterministically(self):
        registry = IdFunctionRegistry()
        registry.record("f", (Atom("b"),))
        registry.record("f", (Atom("a"),))
        registry.record("f", (Atom("a"),))  # idempotent
        assert registry.instances("f") == [(Atom("a"),), (Atom("b"),)]

    def test_known(self):
        registry = IdFunctionRegistry()
        assert not registry.known("f")
        registry.record("f", ())
        assert registry.known("f")

    def test_forget(self):
        registry = IdFunctionRegistry()
        registry.record("f", (Atom("a"),))
        registry.forget("f")
        assert registry.instances("f") == []

    def test_fresh_functors_unique(self):
        registry = IdFunctionRegistry()
        names = {registry.fresh_functor() for _ in range(10)}
        assert len(names) == 10

    def test_oids_helper(self):
        registry = IdFunctionRegistry()
        registry.record("f", (Atom("a"),))
        assert registry.oids("f") == [FuncOid("f", (Atom("a"),))]
