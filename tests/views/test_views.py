"""Tests for views and view updates (paper §4.2)."""

import pytest

from repro.errors import NonUpdatableViewError, ViewError
from repro.oid import Atom, FuncOid, Value
from tests.conftest import names

COMP_SALARIES = """
CREATE VIEW CompSalaries AS SUBCLASS OF Object
SIGNATURE CompName = String, DivName = String, Salary = Numeral
SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary
FROM Company X
OID FUNCTION OF X, W
WHERE X.Divisions[Y].Employees[W]
"""


class TestCreateView:
    def test_view_class_declared_as_subclass(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        hierarchy = paper_session.store.hierarchy
        assert hierarchy.is_subclass(Atom("CompSalaries"), Atom("Object"))

    def test_view_objects_materialized(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        extent = paper_session.store.extent("CompSalaries")
        # six (company, employee) pairs; the *relation* rendering has only
        # five rows because two UniSQL employees share a salary — objects
        # keep their identity even when attribute-equal (§4.2).
        assert len(extent) == 6
        assert all(isinstance(o, FuncOid) for o in extent)

    def test_view_signatures_installed(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        sigs = paper_session.store.signatures_of("CompSalaries", "Salary")
        assert sigs and sigs[0].result == Atom("Numeral")

    def test_view_queryable_as_class(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        result = paper_session.query(
            "SELECT V.Salary FROM CompSalaries V WHERE V.CompName['Acme']"
        )
        assert sorted(result.scalars()) == [20000, 250000, 300000]

    def test_view_id_term_in_query(self, paper_session):
        # Query (10): views and non-views in one query.
        paper_session.execute(COMP_SALARIES)
        result = paper_session.query(
            "SELECT X.Manufacturer.Name FROM Automobile X, Employee W "
            "WHERE CompSalaries(X.Manufacturer, W).Salary > 35000"
        )
        assert sorted(result.scalars()) == ["Acme", "UniSQL"]

    def test_duplicate_view_rejected(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        with pytest.raises(ViewError):
            paper_session.execute(COMP_SALARIES)

    def test_view_requires_oid_clause(self, paper_session):
        with pytest.raises(ViewError):
            paper_session.execute(
                "CREATE VIEW Bad AS SUBCLASS OF Object "
                "SIGNATURE N = String "
                "SELECT N = X.Name FROM Company X"
            )

    def test_view_hides_base_identity(self, paper_session):
        # "a view that could provide aggregate information about companies
        # and salaries without containing explicit information about the
        # employees having those salaries" (§4.2).
        paper_session.execute(COMP_SALARIES)
        view_obj = FuncOid("CompSalaries", (Atom("uniSQL"), Atom("ben")))
        record_methods = paper_session.store.methods_defined_on(view_obj)
        assert Atom("Name") not in record_methods  # no employee Name
        assert Atom("Salary") in record_methods


class TestRefresh:
    def test_refresh_reflects_base_updates(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        paper_session.store.set_attr(Atom("ben"), "Salary", 31000)
        paper_session.refresh_view("CompSalaries")
        view_obj = FuncOid("CompSalaries", (Atom("uniSQL"), Atom("ben")))
        assert paper_session.store.invoke_scalar(
            view_obj, "Salary"
        ) == Value(31000)

    def test_refresh_drops_stale_objects(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        # remove ben from his division: the view row must disappear.
        paper_session.store.remove_instance(Atom("ben"), "Employee")
        paper_session.store.set_attr_set(
            Atom("d_eng"), "Employees", [Atom("john13")]
        )
        paper_session.refresh_view("CompSalaries")
        stale = FuncOid("CompSalaries", (Atom("uniSQL"), Atom("ben")))
        assert stale not in paper_session.store.extent("CompSalaries")

    def test_refresh_unknown_view(self, paper_session):
        with pytest.raises(ViewError):
            paper_session.refresh_view("Nope")


class TestViewUpdates:
    def test_update_translated_to_base(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        target = FuncOid("CompSalaries", (Atom("uniSQL"), Atom("ben")))
        count = paper_session.update_view(
            "CompSalaries", "Salary", {target: Value(42000)}
        )
        assert count == 1
        assert paper_session.store.invoke_scalar(
            Atom("ben"), "Salary"
        ) == Value(42000)
        # refresh happened: the view shows the new salary too.
        assert paper_session.store.invoke_scalar(
            target, "Salary"
        ) == Value(42000)

    def test_update_unknown_view_object(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        ghost = FuncOid("CompSalaries", (Atom("uniSQL"), Atom("ghost")))
        with pytest.raises(NonUpdatableViewError):
            paper_session.update_view(
                "CompSalaries", "Salary", {ghost: Value(1)}
            )

    def test_update_underived_attribute_rejected(self, paper_session):
        paper_session.execute(COMP_SALARIES)
        target = FuncOid("CompSalaries", (Atom("uniSQL"), Atom("ben")))
        with pytest.raises(NonUpdatableViewError):
            paper_session.update_view(
                "CompSalaries", "Nonexistent", {target: Value(1)}
            )

    def test_conflicting_updates_rejected(self, paper_session):
        # Two view objects deriving from one base cell with different new
        # values must be rejected before anything is written.
        paper_session.execute(
            """
            CREATE VIEW SalaryPairs AS SUBCLASS OF Object
            SIGNATURE Salary = Numeral
            SELECT Salary = W.Salary
            FROM Employee W, Division D
            OID FUNCTION OF W, D
            WHERE D.Employees[W]
            """
        )
        pairs = [
            o
            for o in paper_session.registry.oids("SalaryPairs")
            if o.args[0] == Atom("ben")
        ]
        assert pairs
        target = pairs[0]
        other = FuncOid("SalaryPairs", (Atom("ben"), Atom("d_adv")))
        mapping = {target: Value(1)}
        if other in paper_session.store.extent("SalaryPairs"):
            mapping[other] = Value(2)
            with pytest.raises(NonUpdatableViewError):
                paper_session.update_view("SalaryPairs", "Salary", mapping)
        else:
            # ben belongs to exactly one division; a single update works.
            count = paper_session.update_view(
                "SalaryPairs", "Salary", mapping
            )
            assert count == 1
