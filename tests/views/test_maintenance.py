"""Incremental view maintenance: delta tiers, read sets, lazy sync.

Every base write lands in one of four tiers — irrelevant (view stays
fresh), select-only (targeted per-group re-derivation), structural
(full refresh), or DDL (rebuild with fresh read sets) — and the
pipeline syncs stale views lazily before the next statement.
"""

import pytest

from repro.oid import Atom, FuncOid, Value
from repro.views.maintenance import derive_read_sets
from repro.xsql.parser import parse_query

COMP_SALARIES = """
CREATE VIEW CompSalaries AS SUBCLASS OF Object
SIGNATURE CompName = String, Salary = Numeral
SELECT CompName = X.Name, Salary = W.Salary
FROM Company X
OID FUNCTION OF X, W
WHERE X.Divisions[Y].Employees[W]
"""

THROUGH_VIEW = "SELECT V.Salary FROM CompSalaries V WHERE V.CompName['Acme']"


def state_of(session, name="CompSalaries"):
    return session.views.maintenance_status()[name]


@pytest.fixture
def view_session(paper_session):
    paper_session.execute(COMP_SALARIES)
    return paper_session


class TestDeltaTiers:
    def test_view_starts_fresh(self, view_session):
        status = state_of(view_session)
        assert status["state"] == "fresh"
        assert status["objects"] == 6
        assert status["pending_groups"] == 0
        assert status["last_kind"] == "materialize"

    def test_irrelevant_write_stays_fresh(self, view_session):
        # Age is in no read set of the view.
        view_session.store.set_attr(Atom("pat"), "Age", 53)
        assert state_of(view_session)["state"] == "fresh"
        assert not view_session.views.pending()
        assert view_session.sync_views() == []

    def test_select_only_write_outside_support_stays_fresh(self, view_session):
        # ret1 is an Employee but belongs to no division: its Salary
        # cannot feed the view, so the write is provably irrelevant.
        view_session.store.set_attr(Atom("ret1"), "Salary", 1)
        assert state_of(view_session)["state"] == "fresh"

    def test_select_only_write_goes_delta_pending_then_targeted(
        self, view_session
    ):
        view_session.store.set_attr(Atom("acmeEmp"), "Salary", 21000)
        status = state_of(view_session)
        assert status["state"] == "delta-pending"
        assert status["pending_groups"] == 1

        events = view_session.sync_views()
        assert len(events) == 1
        event = events[0]
        assert event["view"] == "CompSalaries"
        assert event["kind"] == "targeted"
        assert event["groups"] == 1
        assert event["seconds"] >= 0.0

        status = state_of(view_session)
        assert status["state"] == "fresh"
        assert status["last_kind"] == "targeted"
        assert status["last_groups"] == 1
        assert sorted(
            view_session.query(THROUGH_VIEW).scalars()
        ) == [21000, 250000, 300000]

    def test_where_method_write_forces_refresh(self, view_session):
        # Employees is a WHERE method: group membership itself changed,
        # so targeted re-derivation of existing groups is not enough.
        store = view_session.store
        d_mkt = Atom("d_mkt")
        members = sorted(store.invoke(d_mkt, "Employees"), key=str)
        store.set_attr_set(d_mkt, "Employees", members + [Atom("ret1")])
        assert state_of(view_session)["state"] == "delta-pending"

        events = view_session.sync_views()
        assert [e["kind"] for e in events] == ["refresh"]
        assert state_of(view_session)["last_kind"] == "refresh"
        # The new (acme, ret1) pair materialized with ret1's salary.
        assert sorted(view_session.query(THROUGH_VIEW).scalars()) == [
            0,
            20000,
            250000,
            300000,
        ]

    def test_membership_in_read_class_forces_refresh(self, view_session):
        # A new Company lands in the FROM class's extent.
        store = view_session.store
        newco = store.create_object(Atom("newco"), ["Company"])
        assert state_of(view_session)["state"] == "delta-pending"
        store.set_attr(newco, "Name", "NewCo")
        events = view_session.sync_views()
        assert [e["kind"] for e in events] == ["refresh"]
        # No divisions yet: the view's extent is unchanged.
        assert state_of(view_session)["objects"] == 6

    def test_purge_of_supporting_object_forces_refresh(self, view_session):
        view_session.store.purge_object(Atom("acmeEmp"))
        assert state_of(view_session)["state"] == "delta-pending"
        events = view_session.sync_views()
        assert [e["kind"] for e in events] == ["refresh"]
        assert sorted(view_session.query(THROUGH_VIEW).scalars()) == [
            250000,
            300000,
        ]

    def test_ddl_forces_rebuild(self, view_session):
        view_session.store.declare_class("Startup", ["Company"])
        assert state_of(view_session)["state"] == "rebuild-pending"
        events = view_session.sync_views()
        assert [e["kind"] for e in events] == ["rebuild"]
        status = state_of(view_session)
        assert status["state"] == "fresh"
        assert status["last_kind"] == "rebuild"
        assert status["objects"] == 6

    def test_maintenance_writes_do_not_remark_stale(self, view_session):
        # The observer is muted while the manager re-materializes, so a
        # sync leaves every view fresh instead of looping.
        view_session.store.set_attr(Atom("pat"), "Salary", 260000)
        view_session.sync_views()
        assert not view_session.views.pending()
        assert view_session.sync_views() == []


class TestLazySync:
    def test_query_through_view_syncs_first(self, view_session):
        view_session.store.set_attr(Atom("acmeEmp"), "Salary", 22000)
        # No explicit sync: the pipeline maintains before the statement.
        assert sorted(view_session.query(THROUGH_VIEW).scalars()) == [
            22000,
            250000,
            300000,
        ]
        assert state_of(view_session)["last_kind"] == "targeted"

    def test_unrelated_query_also_syncs(self, view_session):
        view_session.store.set_attr(Atom("acmeEmp"), "Salary", 23000)
        view_session.query("SELECT X FROM Automobile X")
        assert state_of(view_session)["state"] == "fresh"

    def test_targeted_sync_preserves_view_identity(self, view_session):
        target = FuncOid("CompSalaries", (Atom("acme"), Atom("acmeEmp")))
        assert view_session.store.invoke(target, "Salary") == frozenset(
            {Value(20000)}
        )
        view_session.store.set_attr(Atom("acmeEmp"), "Salary", 24000)
        view_session.sync_views()
        assert view_session.store.invoke(target, "Salary") == frozenset(
            {Value(24000)}
        )

    def test_two_views_sync_independently(self, view_session):
        view_session.execute(
            "CREATE VIEW NameCard AS SUBCLASS OF Object "
            "SIGNATURE PName = String "
            "SELECT PName = X.Name FROM Person X OID FUNCTION OF X"
        )
        # Salary is select-only for CompSalaries and irrelevant for
        # NameCard: only the former appears in the sync events.
        view_session.store.set_attr(Atom("acmeEmp"), "Salary", 25000)
        events = view_session.sync_views()
        assert [e["view"] for e in events] == ["CompSalaries"]
        status = view_session.views.maintenance_status()
        assert status["NameCard"]["state"] == "fresh"


class TestReadSets:
    def test_comp_salaries_read_sets(self, paper_session):
        query = parse_query(
            "SELECT CompName = X.Name, Salary = W.Salary "
            "FROM Company X WHERE X.Divisions[Y].Employees[W]"
        )
        read = derive_read_sets(query, paper_session.store)
        assert read.classes == {Atom("Company")}
        assert read.where_methods == {Atom("Divisions"), Atom("Employees")}
        assert read.select_methods == {Atom("Name"), Atom("Salary")}
        assert not read.class_wildcard
        assert not read.method_wildcard
        assert not read.literal_domain

    def test_class_variable_widens_to_wildcard(self, paper_session):
        query = parse_query("SELECT X FROM #C X")
        read = derive_read_sets(query, paper_session.store)
        assert read.class_wildcard

    def test_literal_class_domain_flag(self, paper_session):
        query = parse_query("SELECT N FROM Numeral N WHERE N > 5")
        read = derive_read_sets(query, paper_session.store)
        assert read.literal_domain

    def test_computed_method_widens_to_method_wildcard(self, paper_session):
        from repro.datamodel.methods import PythonMethod

        paper_session.store.define_method(
            "Employee",
            PythonMethod(
                name=Atom("Double"),
                fn=lambda s, owner: Value(
                    2 * s.invoke_scalar(owner, "Salary").value
                ),
            ),
        )
        query = parse_query("SELECT X.Double FROM Employee X")
        read = derive_read_sets(query, paper_session.store)
        assert read.method_wildcard

    def test_subquery_reads_are_where_relevant(self, paper_session):
        query = parse_query(
            "SELECT X FROM Company X "
            "WHERE 0 <all (SELECT W.Salary FROM Employee W)"
        )
        read = derive_read_sets(query, paper_session.store)
        assert Atom("Employee") in read.classes
        assert Atom("Salary") in read.where_methods
