"""Shared fixtures: paper database sessions, schemas, synthetic stores."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked @pytest.mark.slow",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

from repro import Session
from repro.schema.figure1 import build_figure1_schema
from repro.schema.nobel import build_nobel_schema, populate_nobel_database
from repro.schema.typing_examples import (
    extend_with_typing_classes,
    populate_oo_forum,
)
from repro.schema.university import (
    build_university_schema,
    populate_university_database,
)
from repro.workloads.paper_db import populate_paper_database


def make_paper_session() -> Session:
    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)
    return session


@pytest.fixture
def paper_session() -> Session:
    """A fresh Figure 1 + paper-instance session (mutable per test)."""
    return make_paper_session()


@pytest.fixture(scope="session")
def shared_paper_session() -> Session:
    """A shared session for read-only query tests (fast)."""
    return make_paper_session()


@pytest.fixture
def typing_session() -> Session:
    """Paper session extended with the §6.2 Organization/Association part."""
    session = make_paper_session()
    extend_with_typing_classes(session.store)
    populate_oo_forum(session.store)
    return session


@pytest.fixture
def nobel_session() -> Session:
    session = Session()
    build_nobel_schema(session.store)
    populate_nobel_database(session.store)
    return session


@pytest.fixture
def university_session() -> Session:
    session = Session()
    build_university_schema(session.store)
    populate_university_database(session.store)
    return session


def names(result) -> list:
    """Sorted string forms of a single-column result (test helper)."""
    return sorted(str(value) for value in result.single_column())
