"""Property suite: codec round-trips, order preservation, WAL recovery.

Three families of properties back the storage engine:

* every key/value the codec can produce decodes back to itself, and the
  byte ordering of packed keys agrees with the logical ordering of their
  components (within one component type);
* WAL recovery is idempotent — recovering a recovered directory changes
  nothing (``recover . recover == recover``);
* killing the process at an arbitrary byte of the WAL and recovering
  yields *exactly* the state after some prefix of the committed batches,
  never a torn half-batch.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oid import Atom, FuncOid, Value
from repro.storage import LogStructuredEngine, WriteBatch, pack_key, unpack_key
from repro.storage.codec import decode_cell_value, encode_cell_value
from repro.storage.wal import WAL_MAGIC

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
BIGINT = st.one_of(
    st.integers(min_value=2**63, max_value=2**80),
    st.integers(min_value=-(2**80), max_value=-(2**63) - 1),
)
FINITE_FLOAT = st.floats(allow_nan=False, allow_infinity=False)
TEXT = st.text(max_size=20)

primitive = st.one_of(INT64, FINITE_FLOAT, st.booleans(), TEXT)
scalar_oid = st.one_of(
    st.builds(Atom, st.text(min_size=1, max_size=12)),
    st.builds(Value, st.one_of(INT64, BIGINT, FINITE_FLOAT, st.booleans(), TEXT)),
)
func_oid = st.builds(
    FuncOid,
    st.text(min_size=1, max_size=8),
    st.tuples(scalar_oid) | st.tuples(scalar_oid, scalar_oid) | st.tuples(),
)
nested_func_oid = st.builds(
    FuncOid,
    st.text(min_size=1, max_size=8),
    st.tuples(func_oid) | st.tuples(scalar_oid, func_oid),
)
component = st.one_of(primitive, BIGINT, scalar_oid, func_oid, nested_func_oid)
key_tuple = st.lists(component, min_size=1, max_size=4).map(tuple)


class TestCodecProperties:
    @settings(max_examples=200, deadline=None)
    @given(key_tuple)
    def test_pack_unpack_round_trip(self, parts):
        assert unpack_key(pack_key(parts)) == parts

    @settings(max_examples=200, deadline=None)
    @given(st.lists(INT64, min_size=2, max_size=10))
    def test_int_order_preserved(self, values):
        packed = [pack_key((v,)) for v in values]
        for a, b in zip(sorted(values), sorted(values)[1:]):
            if a < b:
                assert pack_key((a,)) < pack_key((b,))
        assert sorted(packed) == [pack_key((v,)) for v in sorted(values)]

    @settings(max_examples=200, deadline=None)
    @given(st.lists(FINITE_FLOAT, min_size=2, max_size=10))
    def test_float_order_preserved(self, values):
        for a in values:
            for b in values:
                if a < b:
                    assert pack_key((a,)) < pack_key((b,))

    @settings(max_examples=200, deadline=None)
    @given(st.lists(TEXT, min_size=2, max_size=10))
    def test_string_order_preserved(self, values):
        for a in values:
            for b in values:
                if a < b:
                    assert pack_key((a,)) < pack_key((b,))

    @settings(max_examples=200, deadline=None)
    @given(
        st.booleans(),
        st.lists(st.one_of(scalar_oid, func_oid), min_size=0, max_size=5),
    )
    def test_cell_value_round_trip(self, scalar, oids):
        raw = encode_cell_value(scalar, oids)
        got_scalar, got = decode_cell_value(raw)
        assert got_scalar == scalar
        assert sorted(got, key=repr) == sorted(oids, key=repr)

    @settings(max_examples=200, deadline=None)
    @given(key_tuple, key_tuple)
    def test_packing_is_injective(self, a, b):
        if a != b:
            assert pack_key(a) != pack_key(b)


# ---------------------------------------------------------------------------
# WAL recovery properties
# ---------------------------------------------------------------------------

KEYS = [b"k%d" % i for i in range(8)]

batch_op = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(KEYS), st.binary(max_size=8)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
)
batch_strategy = st.lists(batch_op, min_size=0, max_size=4)
history_strategy = st.lists(batch_strategy, min_size=1, max_size=6)


def _apply_history(engine, history):
    """Apply *history* and return the expected items after each batch."""
    shadow = {}
    prefixes = [[]]
    for ops in history:
        batch = WriteBatch()
        for op in ops:
            if op[0] == "put":
                batch.put(op[1], op[2])
                shadow[op[1]] = op[2]
            else:
                batch.delete(op[1])
                shadow.pop(op[1], None)
        engine.apply(batch)
        prefixes.append(sorted(shadow.items()))
    return prefixes


class TestRecoveryProperties:
    @settings(max_examples=50, deadline=None)
    @given(history_strategy)
    def test_recover_is_idempotent(self, tmp_path_factory, history):
        root = str(tmp_path_factory.mktemp("idem") / "db")
        engine = LogStructuredEngine(root, sync="never")
        expected = _apply_history(engine, history)[-1]
        engine.close()

        once = LogStructuredEngine(root, sync="never")
        first_items = once.items()
        first_lsn = once.last_stamp().lsn
        once.close()

        twice = LogStructuredEngine(root, sync="never")
        assert twice.items() == first_items == expected
        assert twice.last_stamp().lsn == first_lsn
        assert twice.recovery.torn_reason == ""
        twice.close()

    @settings(max_examples=50, deadline=None)
    @given(history_strategy, st.data())
    def test_kill_point_recovers_a_committed_prefix(
        self, tmp_path_factory, history, data
    ):
        root = str(tmp_path_factory.mktemp("kill") / "db")
        engine = LogStructuredEngine(root, sync="never")
        prefixes = _apply_history(engine, history)
        engine.close()

        wal = os.path.join(root, "wal.log")
        size = os.path.getsize(wal)
        cut = data.draw(
            st.integers(min_value=len(WAL_MAGIC), max_value=size),
            label="kill offset",
        )
        with open(wal, "r+b") as handle:
            handle.truncate(cut)

        recovered = LogStructuredEngine(root, sync="never")
        items = recovered.items()
        lsn = recovered.last_stamp().lsn
        recovered.close()

        # The survivor must be exactly the state after some prefix of
        # the committed batches — never a torn half-batch.
        assert items == prefixes[lsn]
        assert lsn <= len(history)

    @settings(max_examples=25, deadline=None)
    @given(history_strategy, st.data())
    def test_kill_point_then_append_then_recover(
        self, tmp_path_factory, history, data
    ):
        """A recovered engine accepts new writes that survive re-recovery."""
        root = str(tmp_path_factory.mktemp("resume") / "db")
        engine = LogStructuredEngine(root, sync="never")
        _apply_history(engine, history)
        engine.close()

        wal = os.path.join(root, "wal.log")
        size = os.path.getsize(wal)
        cut = data.draw(
            st.integers(min_value=len(WAL_MAGIC), max_value=size),
            label="kill offset",
        )
        with open(wal, "r+b") as handle:
            handle.truncate(cut)

        engine = LogStructuredEngine(root, sync="never")
        engine.put(b"post-crash", b"!")
        engine.close()

        final = LogStructuredEngine(root, sync="never")
        assert final.recovery.torn_reason == ""
        assert final.get(b"post-crash") == b"!"
        final.close()
