"""Codec: key packing, cell bodies, journal mirroring, store round-trip."""

import json

import pytest

from repro.datamodel.serialize import store_to_dict
from repro.datamodel.store import ObjectStore
from repro.oid import Atom, FuncOid, Value
from repro.storage import (
    CodecError,
    MemoryEngine,
    StoreJournal,
    decode_store,
    encode_store,
    pack_key,
    prefix_range,
    unpack_key,
)
from repro.storage.codec import decode_cell_value, encode_cell_value


def canonical(store):
    """Order-insensitive canonical form of a store's serialized state."""
    payload, _report = store_to_dict(store)

    def norm(x):
        if isinstance(x, list):
            return sorted(json.dumps(norm(i), sort_keys=True) for i in x)
        if isinstance(x, dict):
            return {k: norm(v) for k, v in x.items()}
        return x

    return json.dumps(norm(payload), sort_keys=True)


class TestKeyPacking:
    @pytest.mark.parametrize(
        "parts",
        [
            ("s", "o"),
            ("x", Atom("Person"), Atom("mary")),
            ("f", Atom("Age"), Value(31)),
            ("f", Atom("Age"), Value(-31)),
            ("f", Atom("Pi"), Value(3.5)),
            ("f", Atom("Flag"), Value(True)),
            ("f", Atom("Flag"), Value(False)),
            ("f", Atom("Big"), Value(2**100)),
            ("f", Atom("Big"), Value(-(2**100))),
            ("r", "t", "Likes", FuncOid("qf1", (Atom("a"), Value(2)))),
            ("i", "e", Atom("M"), FuncOid("f", (FuncOid("g", ()),))),
            ("s", "nul\x00char",),
        ],
    )
    def test_round_trip(self, parts):
        assert unpack_key(pack_key(parts)) == parts

    def test_int_order_preserved(self):
        values = [-(2**63), -100, -1, 0, 1, 7, 2**63 - 1]
        packed = [pack_key((v,)) for v in values]
        assert packed == sorted(packed)

    def test_float_order_preserved(self):
        values = [-1e300, -2.5, -0.0, 0.0, 1e-9, 3.14, 1e300]
        packed = [pack_key((v,)) for v in values]
        assert sorted(packed) == sorted(packed, key=packed.index) or (
            packed == sorted(packed)
        )
        assert packed == sorted(packed)

    def test_string_order_preserved(self):
        values = ["", "a", "a\x00b", "ab", "b"]
        packed = [pack_key((v,)) for v in values]
        assert packed == sorted(packed)

    def test_prefix_range_covers_extensions_only(self):
        start, end = prefix_range(("x", Atom("Person")))
        inside = pack_key(("x", Atom("Person"), Atom("mary")))
        outside = pack_key(("x", Atom("Personnel"), Atom("bob")))
        assert start <= inside < end
        assert not (start <= outside < end)

    def test_bool_is_not_int(self):
        assert unpack_key(pack_key((True,))) == (True,)
        assert unpack_key(pack_key((1,))) == (1,)
        assert pack_key((True,)) != pack_key((1,))

    def test_unknown_component_raises(self):
        with pytest.raises(CodecError):
            pack_key((object(),))

    def test_truncated_key_raises(self):
        raw = pack_key((Atom("Person"),))
        with pytest.raises(CodecError):
            unpack_key(raw[:-1])


class TestCellValues:
    def test_scalar_round_trip(self):
        raw = encode_cell_value(True, [Value(31)])
        assert decode_cell_value(raw) == (True, [Value(31)])

    def test_set_round_trip_sorted(self):
        raw = encode_cell_value(False, [Atom("b"), Atom("a")])
        scalar, values = decode_cell_value(raw)
        assert not scalar
        assert set(values) == {Atom("a"), Atom("b")}

    def test_functional_oids(self):
        term = FuncOid("qf2", (Atom("x"), Value(1)))
        _s, values = decode_cell_value(encode_cell_value(True, [term]))
        assert values == [term]


def build_sample_store():
    store = ObjectStore()
    store.declare_class("Person")
    store.declare_class("Employee", ["Person"])
    store.declare_class("Student", ["Person"])
    store.declare_class("TA", ["Employee", "Student"])
    store.declare_signature("Person", "Name", "String")
    store.declare_signature("Person", "Age", "Numeral")
    store.declare_signature("Employee", "Salary", "Numeral")
    store.declare_signature("Person", "Children", "Person", set_valued=True)
    mary = store.create_object(Atom("mary"), ["Employee"])
    store.set_attr(mary, "Name", "Mary")
    store.set_attr(mary, "Age", 31)
    store.set_attr(mary, "Salary", 50000)
    bob = store.create_object(Atom("bob"), ["TA"])
    store.set_attr(bob, "Name", "Bob")
    store.set_attr_set(mary, "Children", [bob])
    # A class-level default cell (behavioral inheritance source).
    store.set_attr(Atom("Person"), "Age", 0)
    # An explicit inheritance resolution.
    store.resolve_inheritance("TA", "Salary", "Employee")
    store.declare_relation("Likes", ["who", "what"])
    store.insert_tuple("Likes", [mary, bob])
    store.enable_index("Name")
    return store


class TestStoreRoundTrip:
    def test_bulk_encode_decode(self):
        store = build_sample_store()
        engine = MemoryEngine()
        report = encode_store(store, engine)
        assert report.classes == 4
        assert report.relations == 1
        back = decode_store(engine)
        assert canonical(back) == canonical(store)

    def test_round_trip_preserves_indexes(self):
        store = build_sample_store()
        engine = MemoryEngine()
        encode_store(store, engine)
        back = decode_store(engine)
        assert back.is_indexed("Name")

    def test_implicit_memberships_stay_implicit(self):
        store = ObjectStore()
        store.declare_class("Person")
        store.declare_signature("Person", "Age", "Numeral")
        mary = store.create_object(Atom("mary"), ["Person"])
        store.set_attr(mary, "Age", 31)
        engine = MemoryEngine()
        encode_store(store, engine)
        back = decode_store(engine)
        # Value(31) is implicitly a Numeral; that must not come back as
        # an explicit instance-of fact.
        assert back.explicit_classes_of(Value(31)) == frozenset()
        assert back.is_instance(Value(31), "Numeral")

    def test_decode_raises_generations_to_stamp(self):
        store = build_sample_store()
        engine = MemoryEngine()
        encode_store(store, engine)
        back = decode_store(engine)
        stamp = engine.last_stamp()
        assert back.schema_generation >= stamp.schema_generation
        assert back.statistics.generation >= stamp.statistics_generation

    def test_skipped_implementations_reported(self):
        from repro.datamodel.methods import PythonMethod

        store = build_sample_store()
        store.define_method(
            "Person",
            PythonMethod(name=Atom("Shout"), fn=lambda s, o: frozenset()),
        )
        engine = MemoryEngine()
        report = encode_store(store, engine)
        assert any("Shout" in note for note in report.skipped)


class TestJournalMirroring:
    def make_live(self):
        engine = MemoryEngine()
        store = ObjectStore()
        store.set_journal(StoreJournal(engine, store))
        return engine, store

    def test_incremental_equals_bulk(self):
        engine, live = self.make_live()
        # Rebuild the sample store mutation by mutation through the
        # journal; the engine must hold what a bulk encode would.
        reference = build_sample_store()
        live.declare_class("Person")
        live.declare_class("Employee", ["Person"])
        live.declare_class("Student", ["Person"])
        live.declare_class("TA", ["Employee", "Student"])
        live.declare_signature("Person", "Name", "String")
        live.declare_signature("Person", "Age", "Numeral")
        live.declare_signature("Employee", "Salary", "Numeral")
        live.declare_signature(
            "Person", "Children", "Person", set_valued=True
        )
        mary = live.create_object(Atom("mary"), ["Employee"])
        live.set_attr(mary, "Name", "Mary")
        live.set_attr(mary, "Age", 31)
        live.set_attr(mary, "Salary", 50000)
        bob = live.create_object(Atom("bob"), ["TA"])
        live.set_attr(bob, "Name", "Bob")
        live.set_attr_set(mary, "Children", [bob])
        live.set_attr(Atom("Person"), "Age", 0)
        live.resolve_inheritance("TA", "Salary", "Employee")
        live.declare_relation("Likes", ["who", "what"])
        live.insert_tuple("Likes", [mary, bob])
        live.enable_index("Name")
        assert canonical(decode_store(engine)) == canonical(reference)

    def test_unset_deletes_cell_but_keeps_object(self):
        engine, live = self.make_live()
        live.declare_class("Person")
        mary = live.create_object(Atom("mary"), ["Person"])
        live.set_attr(mary, "Age", 31)
        live.unset_attr(mary, "Age")
        back = decode_store(engine)
        assert back.explicit_cell(mary, "Age") is None
        assert mary in back.known_objects()

    def test_empty_set_cell_differs_from_unset(self):
        engine, live = self.make_live()
        live.declare_class("Person")
        mary = live.create_object(Atom("mary"), ["Person"])
        live.set_attr_set(mary, "Hobbies", [])
        back = decode_store(engine)
        cell = back.explicit_cell(mary, "Hobbies")
        assert cell is not None and cell.as_set() == frozenset()

    def test_purge_removes_everything(self):
        engine, live = self.make_live()
        live.declare_class("Person")
        live.enable_index("Age")
        mary = live.create_object(Atom("mary"), ["Person"])
        live.set_attr(mary, "Age", 31)
        live.purge_object(mary)
        back = decode_store(engine)
        assert mary not in back.known_objects()
        assert back.explicit_cell(mary, "Age") is None
        assert back.lookup_by_value("Age", 31) == frozenset()

    def test_remove_instance_mirrors(self):
        engine, live = self.make_live()
        live.declare_class("Person")
        mary = live.create_object(Atom("mary"), ["Person"])
        live.remove_instance(mary, "Person")
        back = decode_store(engine)
        assert back.explicit_classes_of(mary) == frozenset()

    def test_index_entries_maintained_incrementally(self):
        engine, live = self.make_live()
        live.declare_class("Person")
        live.enable_index("Age")
        mary = live.create_object(Atom("mary"), ["Person"])
        live.set_attr(mary, "Age", 31)
        live.set_attr(mary, "Age", 32)
        start, end = prefix_range(("i", "e", Atom("Age")))
        entries = [unpack_key(k) for k, _v in engine.range_scan(start, end)]
        assert len(entries) == 1
        assert entries[0][3] == Value(32)

    def test_disable_index_clears_entries(self):
        engine, live = self.make_live()
        live.declare_class("Person")
        live.enable_index("Age")
        mary = live.create_object(Atom("mary"), ["Person"])
        live.set_attr(mary, "Age", 31)
        live.disable_index("Age")
        start, end = prefix_range(("i",))
        assert list(engine.range_scan(start, end)) == []

    def test_batch_groups_one_commit(self):
        engine, live = self.make_live()
        journal = live.journal
        with journal.batch():
            live.declare_class("Person")
            live.create_object(Atom("mary"), ["Person"])
        assert engine.batches_applied == 1

    def test_no_journal_means_no_overhead_hooks(self):
        store = ObjectStore()
        assert store.journal is None
        store.declare_class("Person")
        store.create_object(Atom("mary"), ["Person"])
        # Nothing blows up, nothing is recorded anywhere.
        assert store.is_instance(Atom("mary"), "Person")
