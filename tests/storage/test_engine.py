"""MemoryEngine: the ordered-KV contract every backend must honor."""

import pytest

from repro.storage import (
    CommitStamp,
    MemoryEngine,
    StorageError,
    WriteBatch,
)


@pytest.fixture
def engine():
    return MemoryEngine()


class TestPointOps:
    def test_get_missing_is_none(self, engine):
        assert engine.get(b"nope") is None

    def test_put_then_get(self, engine):
        engine.put(b"k", b"v")
        assert engine.get(b"k") == b"v"

    def test_put_default_empty_value(self, engine):
        engine.put(b"marker")
        assert engine.get(b"marker") == b""

    def test_overwrite(self, engine):
        engine.put(b"k", b"v1")
        engine.put(b"k", b"v2")
        assert engine.get(b"k") == b"v2"
        assert len(engine) == 1

    def test_delete(self, engine):
        engine.put(b"k", b"v")
        engine.delete(b"k")
        assert engine.get(b"k") is None
        assert len(engine) == 0

    def test_delete_missing_is_noop(self, engine):
        engine.delete(b"ghost")
        assert len(engine) == 0


class TestRangeScan:
    def _load(self, engine):
        # Insert out of order on purpose: scans must still sort.
        for key in (b"d", b"a", b"c", b"b", b"e"):
            engine.put(key, key.upper())

    def test_full_scan_sorted(self, engine):
        self._load(engine)
        assert [k for k, _v in engine.range_scan()] == [
            b"a", b"b", b"c", b"d", b"e",
        ]

    def test_half_open_bounds(self, engine):
        self._load(engine)
        assert [k for k, _v in engine.range_scan(b"b", b"d")] == [b"b", b"c"]

    def test_reverse(self, engine):
        self._load(engine)
        assert [k for k, _v in engine.range_scan(b"b", b"e", reverse=True)] == [
            b"d", b"c", b"b",
        ]

    def test_values_ride_along(self, engine):
        self._load(engine)
        assert dict(engine.range_scan(b"a", b"b")) == {b"a": b"A"}

    def test_scan_interleaved_with_writes(self, engine):
        # Point writes after a scan (sorted state) use the bisect path.
        self._load(engine)
        list(engine.range_scan())
        engine.put(b"ba", b"!")
        assert [k for k, _v in engine.range_scan(b"b", b"c")] == [b"b", b"ba"]


class TestBatches:
    def test_batch_applies_in_order(self, engine):
        batch = WriteBatch()
        batch.put(b"k", b"first")
        batch.put(b"k", b"second")
        batch.delete(b"gone")
        engine.apply(batch)
        assert engine.get(b"k") == b"second"

    def test_delete_range_half_open(self, engine):
        for key in (b"a", b"b", b"c", b"d"):
            engine.put(key)
        batch = WriteBatch()
        batch.delete_range(b"b", b"d")
        engine.apply(batch)
        assert [k for k, _v in engine.range_scan()] == [b"a", b"d"]

    def test_empty_batch_still_stamps(self, engine):
        stamp = engine.apply(WriteBatch())
        assert stamp.lsn == 1

    def test_lsn_monotonic(self, engine):
        stamps = [engine.put(b"k%d" % i) for i in range(5)]
        assert [s.lsn for s in stamps] == [1, 2, 3, 4, 5]

    def test_stamp_carries_generations(self, engine):
        stamp = engine.apply(
            WriteBatch(), schema_generation=7, statistics_generation=11
        )
        assert stamp == CommitStamp(
            lsn=1, schema_generation=7, statistics_generation=11
        )
        assert engine.last_stamp() == stamp

    def test_batch_len_and_bool(self):
        batch = WriteBatch()
        assert not batch and len(batch) == 0
        batch.put(b"k")
        batch.delete(b"k")
        assert batch and len(batch) == 2


class TestIntrospection:
    def test_items(self, engine):
        engine.put(b"b", b"2")
        engine.put(b"a", b"1")
        assert engine.items() == [(b"a", b"1"), (b"b", b"2")]

    def test_status_shape(self, engine):
        engine.put(b"k")
        status = engine.status()
        assert status["engine"] == "memory"
        assert status["keys"] == 1
        assert status["lsn"] == 1

    def test_storage_error_is_xsql_error(self):
        from repro.errors import XsqlError

        assert issubclass(StorageError, XsqlError)
