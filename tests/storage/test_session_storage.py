"""Session.open/checkpoint/close lifecycle, options, and cache hygiene."""

import json
import os
import warnings

import pytest

from repro.oid import Atom
from repro.storage import (
    LogStructuredEngine,
    MemoryEngine,
    StorageError,
    StorageOptions,
    make_engine,
)
from repro.xsql.session import Session


def load_people(session):
    session.execute(
        "CREATE CLASS Person SIGNATURE Name = String, Age = Numeral"
    )
    store = session.store
    for name, age in [("mary", 31), ("bob", 52), ("sue", 45)]:
        obj = store.create_object(Atom(name), ["Person"])
        store.set_attr(obj, "Name", name.capitalize())
        store.set_attr(obj, "Age", age)


def names_over_40(session):
    result = session.query("SELECT X.Name FROM Person X WHERE X.Age > 40")
    return sorted(row[0].value for row in result.rows())


class TestStorageOptions:
    def test_defaults(self):
        options = StorageOptions().validate()
        assert (options.backend, options.path, options.sync) == (
            "dict", None, "checkpoint",
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(StorageError):
            StorageOptions(backend="lsm").validate()

    def test_unknown_sync_rejected(self):
        with pytest.raises(StorageError):
            StorageOptions(sync="eventually").validate()

    def test_log_requires_path(self):
        with pytest.raises(StorageError):
            StorageOptions(backend="log").validate()

    def test_non_string_path_rejected(self):
        with pytest.raises(StorageError):
            StorageOptions(path=42).validate()

    @pytest.mark.parametrize(
        "spec, backend, path",
        [
            ("dict", "dict", None),
            ("memory", "memory", None),
            ("log:/tmp/db", "log", "/tmp/db"),
            ("/tmp/db", "log", "/tmp/db"),
            ("dict:/tmp/s.json", "dict", "/tmp/s.json"),
        ],
    )
    def test_parse(self, spec, backend, path):
        options = StorageOptions.parse(spec)
        assert (options.backend, options.path) == (backend, path)

    def test_parse_empty_rejected(self):
        with pytest.raises(StorageError):
            StorageOptions.parse("")

    def test_coerce_threads_cli_flags(self):
        base = StorageOptions(backend="log", path="/tmp/db")
        merged = StorageOptions.coerce(base, sync="never", path=None)
        assert merged.sync == "never"
        assert merged.path == "/tmp/db"  # None means "keep"

    def test_coerce_rejects_foreign_types(self):
        with pytest.raises(StorageError):
            StorageOptions.coerce({"backend": "dict"})

    def test_with_overrides_revalidates(self):
        with pytest.raises(StorageError):
            StorageOptions().with_overrides(backend="log")

    def test_make_engine_per_backend(self):
        assert make_engine(StorageOptions()) is None
        assert isinstance(
            make_engine(StorageOptions(backend="memory")), MemoryEngine
        )


class TestLifecycle:
    def test_default_open_is_plain_dict_session(self):
        session = Session.open()
        assert session.storage_engine is None
        assert session.storage_options.backend == "dict"
        load_people(session)
        assert names_over_40(session) == ["Bob", "Sue"]
        session.close()  # idempotent no-op

    def test_log_backend_round_trip(self, tmp_path):
        path = str(tmp_path / "db")
        session = Session.open(path, sync="never")
        load_people(session)
        session.checkpoint()
        session.close()

        reopened = Session.open(path, sync="never")
        assert names_over_40(reopened) == ["Bob", "Sue"]
        assert reopened.store.is_instance(Atom("mary"), "Person")
        reopened.close()

    def test_reopen_without_checkpoint_replays_wal(self, tmp_path):
        path = str(tmp_path / "db")
        session = Session.open(path, sync="never")
        load_people(session)
        session.close()

        reopened = Session.open(path, sync="never")
        assert reopened.storage_engine.recovery.replayed_batches > 0
        assert names_over_40(reopened) == ["Bob", "Sue"]
        reopened.close()

    def test_memory_backend_mirrors_without_disk(self):
        session = Session.open(engine="memory")
        load_people(session)
        engine = session.storage_engine
        assert isinstance(engine, MemoryEngine)
        assert len(engine) > 0
        status = session.storage_status()
        assert status["backend"] == "memory"
        assert status["batches_committed"] > 0
        session.close()

    def test_dict_backend_with_path_checkpoints_json(self, tmp_path):
        path = str(tmp_path / "s.json")
        session = Session.open(path, engine="dict")
        load_people(session)
        session.checkpoint()
        assert os.path.exists(path)
        payload = json.load(open(path))
        assert "classes" in payload or payload  # save_store format
        session.close()

        adopted = Session.open(path, engine="dict")
        assert names_over_40(adopted) == ["Bob", "Sue"]

    def test_open_adopts_engine_instance(self, tmp_path):
        path = str(tmp_path / "db")
        first = Session.open(path, sync="never")
        load_people(first)
        first.close()

        engine = LogStructuredEngine(path, sync="never")
        session = Session.open(engine=engine)
        assert session.storage_engine is engine
        assert session.storage_options.backend == "log"
        assert names_over_40(session) == ["Bob", "Sue"]
        session.close()

    def test_pre_populated_session_seeds_fresh_engine(self, tmp_path):
        path = str(tmp_path / "db")
        session = Session()
        load_people(session)
        session.attach_storage(
            StorageOptions(backend="log", path=path, sync="never")
        )
        session.close()
        reopened = Session.open(path, sync="never")
        assert names_over_40(reopened) == ["Bob", "Sue"]
        reopened.close()

    def test_materialized_view_survives_checkpoint_and_replay(
        self, tmp_path
    ):
        # A maintained view's writes go through the same sink fan-out as
        # the journal (journal first), so both the materialization and
        # the post-checkpoint incremental maintenance must come back
        # after a crash (reopen without close -> WAL tail replay).
        path = str(tmp_path / "db")
        session = Session.open(path, sync="never")
        load_people(session)
        session.query(
            "CREATE VIEW NameCard AS SUBCLASS OF Object "
            "SIGNATURE PName = String "
            "SELECT PName = X.Name FROM Person X OID FUNCTION OF X"
        )
        session.checkpoint()
        # A point write after the checkpoint: the targeted maintenance
        # it triggers lives only in the WAL tail.
        session.store.set_attr(Atom("mary"), "Name", "Maria")
        through = session.query("SELECT V.PName FROM NameCard V")
        assert sorted(v.value for v in through.single_column()) == [
            "Bob", "Maria", "Sue",
        ]
        status = session.views.maintenance_status()["NameCard"]
        assert status["state"] == "fresh"
        assert status["last_kind"] == "targeted"

        reopened = Session.open(path, sync="never")
        assert reopened.storage_engine.recovery.replayed_batches > 0
        replayed = reopened.query("SELECT V.PName FROM NameCard V")
        assert sorted(v.value for v in replayed.single_column()) == [
            "Bob", "Maria", "Sue",
        ]
        reopened.close()
        session.close()

    def test_close_is_idempotent_and_detaches(self, tmp_path):
        path = str(tmp_path / "db")
        session = Session.open(path, sync="never")
        load_people(session)
        session.close()
        session.close()
        assert session.storage_engine is None
        assert session.store.journal is None
        # Still usable as a plain session afterwards.
        assert names_over_40(session) == ["Bob", "Sue"]


class TestDeprecatedAliases:
    def test_snapshot_restore_emit_no_warnings(self):
        session = Session.open()
        load_people(session)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            payload = session.snapshot()
            session.restore(payload)
        assert names_over_40(session) == ["Bob", "Sue"]

    def test_save_store_load_store_emit_no_warnings(self, tmp_path):
        from repro.datamodel.serialize import load_store, save_store

        session = Session.open()
        load_people(session)
        path = str(tmp_path / "s.json")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            save_store(session.store, path)
            restored = load_store(path)
        assert restored.is_instance(Atom("mary"), "Person")

    def test_checkpoint_without_engine_equals_snapshot(self):
        session = Session.open()
        load_people(session)
        assert session.checkpoint() == session.snapshot()


class TestRestoreAfterCheckpoint:
    """restore() after checkpoint(): indexes carry, caches settle once."""

    def make_session(self, tmp_path):
        session = Session.open(str(tmp_path / "db"), sync="never")
        load_people(session)
        session.enable_index("Age")
        return session

    def counters(self, session):
        return session.stats()["counters"]

    def test_indexes_survive_restore(self, tmp_path):
        session = self.make_session(tmp_path)
        payload = session.snapshot()
        session.checkpoint()
        session.restore(payload)
        assert "Age" in session.indexes()
        assert names_over_40(session) == ["Bob", "Sue"]
        session.close()

    def test_caches_settle_in_one_compile(self, tmp_path):
        session = self.make_session(tmp_path)
        query = "SELECT X.Name FROM Person X WHERE X.Age > 40"
        session.query(query)
        session.query(query)
        assert self.counters(session).get("cache.hit", 0) >= 1

        payload = session.snapshot()
        session.checkpoint()
        before = self.counters(session)
        session.restore(payload)

        session.query(query)  # one fresh compile...
        session.query(query)  # ...then hits again
        after = self.counters(session)
        recompiles = (
            after.get("cache.miss", 0) - before.get("cache.miss", 0)
        ) + (
            after.get("cache.invalidated", 0)
            - before.get("cache.invalidated", 0)
        )
        assert recompiles == 1
        assert after.get("cache.hit", 0) > before.get("cache.hit", 0)
        session.close()

    def test_generations_raised_exactly_to_stamp(self, tmp_path):
        """Reopening replays records without per-record generation churn."""
        path = str(tmp_path / "db")
        session = self.make_session(tmp_path)
        session.close()

        reopened = Session.open(path, sync="never")
        stamp = reopened.storage_engine.last_stamp()
        assert reopened.store.schema_generation >= stamp.schema_generation
        # The statistics counter lands exactly on the commit stamp: the
        # decode raised it once at the end, it did not tick per record.
        assert (
            reopened.store.statistics.generation
            == stamp.statistics_generation
        )
        reopened.close()

    def test_restore_is_a_recoverable_event(self, tmp_path):
        """The store swap itself reaches the WAL and survives reopen."""
        path = str(tmp_path / "db")
        session = self.make_session(tmp_path)
        payload = session.snapshot()
        store = session.store
        store.set_attr(Atom("mary"), "Age", 99)
        session.restore(payload)  # roll the change back
        session.close()

        reopened = Session.open(path, sync="never")
        assert names_over_40(reopened) == ["Bob", "Sue"]
        result = reopened.query("SELECT X.Age FROM Person X WHERE X.Name = 'Mary'")
        assert [row[0].value for row in result.rows()] == [31]
        reopened.close()


class TestVersionTicketResume:
    def test_reopened_session_resumes_the_ticket_sequence(self, tmp_path):
        root = str(tmp_path / "db")
        session = Session.open(root, sync="never")
        load_people(session)
        ticket_at_close = session.store.version.ticket
        assert ticket_at_close > 0
        session.close()

        reopened = Session.open(root, sync="never")
        try:
            # The decoded store restored the committed ticket, so new
            # mutations continue the sequence instead of restarting it.
            assert reopened.store.version.ticket >= ticket_at_close
            before = reopened.store.version.ticket
            reopened.store.set_attr(Atom("mary"), "Age", 33)
            assert reopened.store.version.ticket > before
            assert names_over_40(reopened) == ["Bob", "Sue"]
        finally:
            reopened.close()
