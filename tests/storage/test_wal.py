"""LogStructuredEngine: WAL framing, checkpoints, and crash recovery."""

import os
import struct

import pytest

from repro.storage import LogStructuredEngine, StorageError, WriteBatch
from repro.storage.wal import CKP_MAGIC, WAL_MAGIC


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "db")


def _open(db, sync="never"):
    return LogStructuredEngine(db, sync=sync)


def _write(engine, pairs):
    batch = WriteBatch()
    for key, value in pairs:
        batch.put(key, value)
    return engine.apply(batch)


class TestPersistence:
    def test_survives_close_and_reopen(self, db):
        engine = _open(db)
        _write(engine, [(b"a", b"1"), (b"b", b"2")])
        _write(engine, [(b"c", b"3")])
        engine.close()

        recovered = _open(db)
        assert recovered.items() == [
            (b"a", b"1"), (b"b", b"2"), (b"c", b"3"),
        ]
        assert recovered.recovery.replayed_batches == 2
        assert recovered.last_stamp().lsn == 2
        recovered.close()

    def test_lsns_continue_across_reopen(self, db):
        engine = _open(db)
        _write(engine, [(b"a", b"1")])
        engine.close()
        engine = _open(db)
        stamp = _write(engine, [(b"b", b"2")])
        assert stamp.lsn == 2
        engine.close()

    def test_deletes_and_ranges_replay(self, db):
        engine = _open(db)
        _write(engine, [(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
        batch = WriteBatch()
        batch.delete(b"a")
        batch.delete_range(b"b", b"c")
        engine.apply(batch)
        engine.close()
        recovered = _open(db)
        assert recovered.items() == [(b"c", b"3")]
        recovered.close()

    def test_closed_engine_refuses_writes(self, db):
        engine = _open(db)
        engine.close()
        with pytest.raises(StorageError):
            engine.put(b"k")

    def test_generation_stamps_recovered(self, db):
        engine = _open(db)
        engine.apply(
            WriteBatch(), schema_generation=5, statistics_generation=9
        )
        engine.close()
        recovered = _open(db)
        stamp = recovered.last_stamp()
        assert (stamp.schema_generation, stamp.statistics_generation) == (5, 9)
        recovered.close()


class TestTornTail:
    def _fill(self, db, batches=3):
        engine = _open(db)
        for i in range(batches):
            _write(engine, [(b"k%d" % i, b"v%d" % i)])
        engine.close()
        return os.path.join(db, "wal.log")

    def test_truncated_record_body_drops_last_batch(self, db):
        wal = self._fill(db)
        size = os.path.getsize(wal)
        with open(wal, "r+b") as handle:
            handle.truncate(size - 3)
        recovered = _open(db)
        assert recovered.recovery.torn_reason == "torn record body"
        assert recovered.recovery.truncated_at is not None
        assert recovered.get(b"k2") is None
        assert recovered.get(b"k1") == b"v1"
        recovered.close()

    def test_corrupt_crc_drops_tail(self, db):
        wal = self._fill(db)
        with open(wal, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
        recovered = _open(db)
        assert recovered.recovery.torn_reason == "record CRC mismatch"
        assert recovered.get(b"k2") is None
        recovered.close()

    def test_recovery_truncates_so_next_open_is_clean(self, db):
        wal = self._fill(db)
        with open(wal, "r+b") as handle:
            handle.truncate(os.path.getsize(wal) - 3)
        first = _open(db)
        first_items = first.items()
        first.close()
        second = _open(db)
        assert second.recovery.torn_reason == ""
        assert second.recovery.truncated_at is None
        assert second.items() == first_items
        second.close()

    def test_bad_magic_is_corruption(self, db):
        engine = _open(db)
        engine.close()
        with open(os.path.join(db, "wal.log"), "r+b") as handle:
            handle.write(b"NOTAWAL!")
        with pytest.raises(StorageError):
            _open(db)

    def test_appends_resume_after_truncation(self, db):
        wal = self._fill(db)
        with open(wal, "r+b") as handle:
            handle.truncate(os.path.getsize(wal) - 3)
        engine = _open(db)
        _write(engine, [(b"new", b"!")])
        engine.close()
        recovered = _open(db)
        assert recovered.recovery.torn_reason == ""
        assert recovered.get(b"new") == b"!"
        recovered.close()


class TestCheckpoint:
    def test_checkpoint_shrinks_wal(self, db):
        engine = _open(db)
        for i in range(10):
            _write(engine, [(b"k%d" % i, b"v")])
        before = engine.wal_size()
        engine.checkpoint()
        assert engine.wal_size() == len(WAL_MAGIC) < before
        engine.close()

    def test_recovery_prefers_checkpoint(self, db):
        engine = _open(db)
        _write(engine, [(b"a", b"1")])
        engine.checkpoint()
        _write(engine, [(b"b", b"2")])
        engine.close()
        recovered = _open(db)
        assert recovered.recovery.checkpoint_keys == 1
        assert recovered.recovery.replayed_batches == 1
        assert recovered.items() == [(b"a", b"1"), (b"b", b"2")]
        recovered.close()

    def test_crash_between_checkpoint_and_wal_swap(self, db):
        """Old-WAL records at or below the checkpoint LSN replay as skips."""
        engine = _open(db)
        _write(engine, [(b"a", b"1")])
        _write(engine, [(b"b", b"2")])
        old_wal = open(os.path.join(db, "wal.log"), "rb").read()
        engine.checkpoint()
        engine.close()
        # Simulate the crash: the checkpoint image exists, but the WAL
        # still holds the pre-checkpoint records.
        with open(os.path.join(db, "wal.log"), "wb") as handle:
            handle.write(old_wal)
        recovered = _open(db)
        assert recovered.recovery.skipped_batches == 2
        assert recovered.recovery.replayed_batches == 0
        assert recovered.items() == [(b"a", b"1"), (b"b", b"2")]
        recovered.close()

    def test_corrupt_checkpoint_image_raises(self, db):
        engine = _open(db)
        _write(engine, [(b"a", b"1")])
        engine.checkpoint()
        engine.close()
        snap = os.path.join(db, "checkpoint.snap")
        blob = bytearray(open(snap, "rb").read())
        blob[-1] ^= 0xFF
        with open(snap, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(StorageError):
            _open(db)

    def test_checkpoint_magic(self, db):
        engine = _open(db)
        _write(engine, [(b"a", b"1")])
        engine.checkpoint()
        engine.close()
        blob = open(os.path.join(db, "checkpoint.snap"), "rb").read()
        assert blob.startswith(CKP_MAGIC)


class TestSyncModes:
    def test_unknown_sync_mode(self, db):
        with pytest.raises(StorageError):
            LogStructuredEngine(db, sync="sometimes")

    @pytest.mark.parametrize("mode", ["commit", "checkpoint", "never"])
    def test_all_modes_round_trip(self, tmp_path, mode):
        path = str(tmp_path / mode)
        engine = LogStructuredEngine(path, sync=mode)
        _write(engine, [(b"k", b"v")])
        engine.checkpoint()
        _write(engine, [(b"l", b"w")])
        engine.close()
        recovered = LogStructuredEngine(path, sync=mode)
        assert recovered.items() == [(b"k", b"v"), (b"l", b"w")]
        recovered.close()


class TestStatus:
    def test_status_reports_path_and_wal(self, db):
        engine = _open(db)
        _write(engine, [(b"k", b"v")])
        status = engine.status()
        assert status["engine"] == "log"
        assert status["path"] == db
        assert status["sync"] == "never"
        assert status["wal_bytes"] > len(WAL_MAGIC)
        engine.close()

    def test_recovery_report_lines(self, db):
        engine = _open(db)
        _write(engine, [(b"k", b"v")])
        engine.close()
        recovered = _open(db)
        text = "\n".join(recovered.recovery.lines())
        assert "replayed: 1 batch(es)" in text
        recovered.close()


class TestMvccTicket:
    def test_ticket_stamp_survives_reopen(self, db):
        engine = _open(db)
        engine.apply(
            WriteBatch(),
            schema_generation=5,
            statistics_generation=9,
            ticket=42,
        )
        engine.close()
        recovered = _open(db)
        assert recovered.last_stamp().ticket == 42
        recovered.close()

    def test_ticket_survives_checkpoint(self, db):
        engine = _open(db)
        engine.apply(WriteBatch(), ticket=17)
        engine.checkpoint()
        engine.close()
        recovered = _open(db)
        assert recovered.last_stamp().ticket == 17
        recovered.close()

    def test_torn_tail_falls_back_to_prior_ticket(self, db):
        engine = _open(db)
        engine.apply(WriteBatch(), ticket=7)
        engine.apply(WriteBatch(), ticket=13)
        engine.close()
        size = os.path.getsize(os.path.join(db, "wal.log"))
        with open(os.path.join(db, "wal.log"), "r+b") as handle:
            handle.truncate(size - 3)
        recovered = _open(db)
        assert recovered.last_stamp().ticket == 7
        recovered.close()
