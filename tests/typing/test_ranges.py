"""Tests for variable ranges (§6.2)."""

from repro.datamodel.hierarchy import OBJECT_CLASS
from repro.oid import Atom, Value
from repro.typing.ranges import Range


class TestConstruction:
    def test_object_always_included(self):
        assert OBJECT_CLASS in Range.of([]).classes
        assert OBJECT_CLASS in Range.of([Atom("Person")]).classes

    def test_with_classes(self):
        range_ = Range.of([Atom("A")]).with_classes([Atom("B")])
        assert Atom("A") in range_.classes and Atom("B") in range_.classes


class TestEmptiness:
    def test_person_company_empty(self, shared_paper_session):
        # "if A(X) contains both Person and Company, then it is empty".
        hierarchy = shared_paper_session.store.hierarchy
        assert Range.of(
            [Atom("Person"), Atom("Company")]
        ).is_empty(hierarchy)

    def test_person_employee_nonempty(self, shared_paper_session):
        hierarchy = shared_paper_session.store.hierarchy
        assert not Range.of(
            [Atom("Person"), Atom("Employee")]
        ).is_empty(hierarchy)

    def test_object_only_nonempty(self, shared_paper_session):
        assert not Range.of([]).is_empty(shared_paper_session.store.hierarchy)

    def test_numeral_string_empty(self, shared_paper_session):
        hierarchy = shared_paper_session.store.hierarchy
        assert Range.of(
            [Atom("Numeral"), Atom("String")]
        ).is_empty(hierarchy)


class TestSubrange:
    def test_object_not_subrange_of_company(self, shared_paper_session):
        # the key failure in the paper's example (17)/(18).
        hierarchy = shared_paper_session.store.hierarchy
        assert not Range.of([]).is_subrange_of(Atom("Company"), hierarchy)

    def test_subclass_in_range_suffices(self, shared_paper_session):
        hierarchy = shared_paper_session.store.hierarchy
        range_ = Range.of([Atom("Employee")])
        assert range_.is_subrange_of(Atom("Person"), hierarchy)
        assert range_.is_subrange_of(Atom("Employee"), hierarchy)

    def test_superclass_does_not_suffice(self, shared_paper_session):
        hierarchy = shared_paper_session.store.hierarchy
        assert not Range.of([Atom("Person")]).is_subrange_of(
            Atom("Employee"), hierarchy
        )

    def test_everything_subrange_of_object(self, shared_paper_session):
        hierarchy = shared_paper_session.store.hierarchy
        assert Range.of([]).is_subrange_of(OBJECT_CLASS, hierarchy)


class TestOidMembership:
    def test_contains_oid(self, shared_paper_session):
        store = shared_paper_session.store
        range_ = Range.of([Atom("Employee")])
        assert range_.contains_oid(Atom("john13"), store)
        assert not range_.contains_oid(Atom("mary123"), store)

    def test_literal_in_numeral_range(self, shared_paper_session):
        store = shared_paper_session.store
        assert Range.of([Atom("Numeral")]).contains_oid(Value(5), store)

    def test_str_rendering(self):
        text = str(Range.of([Atom("Person")]))
        assert "Person" in text and "Object" in text
