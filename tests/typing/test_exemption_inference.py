"""Tests for minimal-exemption inference (well-typing with exemptions)."""

from repro.typing import Exemptions, minimal_exemptions, build_typed_query
from repro.typing.strict import find_coherent_pair
from repro.xsql.parser import parse_query


def typed(text):
    return build_typed_query(parse_query(text))


class TestMinimalExemptions:
    def test_strict_query_needs_nothing(self, shared_paper_session):
        query = typed(
            "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
            "and M.President.OwnedVehicles[X]"
        )
        found = minimal_exemptions(query, shared_paper_session.store)
        assert found == Exemptions.NONE

    def test_nobel_needs_exactly_the_scope_argument(self, nobel_session):
        # The paper's fix, found automatically: "we can exempt the 0-th
        # argument of WonNobelPrize".
        query = typed("SELECT X WHERE X.WonNobelPrize")
        found = minimal_exemptions(query, nobel_session.store)
        assert found is not None
        assert found.by_method == frozenset({("WonNobelPrize", 0)})

    def test_found_set_actually_works(self, nobel_session):
        query = typed("SELECT X WHERE X.WonNobelPrize")
        found = minimal_exemptions(query, nobel_session.store)
        assert find_coherent_pair(
            query, nobel_session.store, found
        ) is not None

    def test_unrepairable_query_returns_none(self, shared_paper_session):
        # Ranges stay empty no matter which coherence checks are waived:
        # X is both a Person (FROM) and in Divisions' scope (Company).
        query = typed("SELECT X FROM Person X WHERE X.Divisions[D]")
        assert (
            minimal_exemptions(query, shared_paper_session.store) is None
        )

    def test_two_positions_when_needed(self, nobel_session):
        # Two independent unconstrained scopes need two exemptions.
        query = typed(
            "SELECT X WHERE X.WonNobelPrize and Y.WonNobelPrize"
        )
        found = minimal_exemptions(query, nobel_session.store)
        assert found is not None
        # a single method-level exemption covers both occurrences here,
        # so the minimal set is still size one.
        assert len(found.by_method) == 1
