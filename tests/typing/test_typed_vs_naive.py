"""Differential test: the Theorem 6.1 evaluator vs the §3.4 oracle.

Closes the loop between the paper's two semantics-bearing artifacts: the
literal substitution semantics (§3.4) and the typed, range-restricted
evaluation (Theorem 6.1).  For strictly well-typed queries they must
coincide on every database.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.typing import TypedEvaluator, analyze
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import NaiveEvaluator
from repro.xsql.parser import parse_query

# The NaiveEvaluator enumerates the full substitution space, so this
# differential suite takes minutes; the seeded fuzzer (repro.difftest)
# covers the same engine pair on every `make test` run.
pytestmark = pytest.mark.slow

QUERIES = [
    "SELECT X FROM Employee X WHERE X.Salary[W] and W > 100000",
    "SELECT X FROM Person X WHERE X.Residence[R] and R.City[C]",
    "SELECT M FROM Vehicle X WHERE X.Manufacturer[M]",
    "SELECT X FROM Vehicle X WHERE M.President.OwnedVehicles[X] "
    "and X.Manufacturer[M]",
]


@pytest.mark.parametrize("text", QUERIES)
@given(seed=st.integers(0, 3000))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_typed_equals_naive_oracle(text, seed):
    store = generate_database(WorkloadConfig(n_people=8, seed=seed))
    query = parse_query(text)
    report = analyze(query, store)
    if not report.strict:
        return  # the discipline depends only on schema; skip defensively
    typed = TypedEvaluator(store).run(query, report)
    naive = NaiveEvaluator(store).run(query)
    assert typed.rows() == naive.rows(), text
