"""Tests for the §6.2 typing normal form."""

import pytest

from repro.oid import Atom, Value, Variable
from repro.typing.occurrences import (
    TypingUnsupportedError,
    build_typed_query,
)
from repro.xsql import ast
from repro.xsql.parser import parse_query


def typed(text: str):
    return build_typed_query(parse_query(text))


class TestPaths:
    def test_selector_completion(self):
        # "adding new distinct v-selectors wherever selectors are
        # originally missing".
        query = typed(
            "SELECT X FROM Person X WHERE X.Residence.City['newyork']"
        )
        path = query.paths[0]
        assert len(path.selectors) == 3
        assert isinstance(path.selectors[1], Variable)  # fresh
        assert path.selectors[2] == Value("newyork")

    def test_occurrences_numbered(self):
        query = typed("SELECT X WHERE X.Manufacturer[M].President[P]")
        occs = query.paths[0].occurrences
        assert [o.position for o in occs] == [1, 2]
        assert occs[0].method == Atom("Manufacturer")

    def test_path_sources_recorded(self):
        query = typed(
            "SELECT X FROM Person X WHERE X.Residence[R] and R.City[C]"
        )
        assert query.path_sources == (0, 1)


class TestFootnote13:
    def test_comparison_side_gets_fresh_tail(self):
        query = typed(
            "SELECT X FROM Employee X WHERE X.Salary > 100"
        )
        assert len(query.paths) == 1  # the desugared X.Salary[_t]
        comp = query.comparisons[0]
        assert isinstance(comp.left.term, Variable)
        assert comp.right.term == Value(100)

    def test_comparison_side_with_selector_reused(self):
        query = typed(
            "SELECT X FROM Employee X WHERE X.Salary[W] =some W2.Salary[W]"
        )
        # both sides end in the v-selector W.
        assert all(
            c.left.term == Variable("W") or c.right.term == Variable("W")
            for c in query.comparisons
        )

    def test_aggregate_side_is_numeral(self):
        query = typed(
            "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4"
        )
        comp = query.comparisons[0]
        assert comp.left.kind == "numeral"
        assert len(query.paths) == 1


class TestFromAndSelect:
    def test_from_types_collected(self):
        query = typed("SELECT X FROM Employee X, Company X")
        assert query.from_types[Variable("X")] == (
            Atom("Employee"),
            Atom("Company"),
        )

    def test_select_terms(self):
        query = typed("SELECT X, mary123 FROM Person X")
        assert query.select_terms == (Variable("X"), Atom("mary123"))

    def test_variables_collects_everything(self):
        query = typed(
            "SELECT X FROM Person X WHERE X.Residence[R] and R.City > 'a'"
        )
        names = {v.name for v in query.variables()}
        assert {"X", "R"} <= names


class TestOutsideFragment:
    def test_disjunction_unsupported(self):
        with pytest.raises(TypingUnsupportedError):
            typed("SELECT X WHERE X.A or X.B")

    def test_negation_unsupported(self):
        with pytest.raises(TypingUnsupportedError):
            typed("SELECT X WHERE not X.A")

    def test_method_variable_unsupported(self):
        with pytest.raises(TypingUnsupportedError):
            typed('SELECT X WHERE X."Y.City')

    def test_path_variable_unsupported(self):
        with pytest.raises(TypingUnsupportedError):
            typed("SELECT X WHERE X.*P.City")

    def test_class_var_in_from_unsupported(self):
        with pytest.raises(TypingUnsupportedError):
            typed("SELECT X FROM #C X WHERE X.Age")

    def test_non_variable_select_path_unsupported(self):
        with pytest.raises(TypingUnsupportedError):
            typed("SELECT X.Name FROM Person X")

    def test_schema_conditions_tolerated(self):
        query = typed("SELECT #X FROM Person Y WHERE TurboEngine subclassOf #X")
        assert query.paths == ()
