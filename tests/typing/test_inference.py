"""Tests for signature inference (schema discovery)."""

import pytest

from repro.datamodel import ObjectStore
from repro.oid import Atom, Value
from repro.typing import analyze
from repro.typing.inference import infer_signatures, install_inferred


@pytest.fixture
def untyped_store() -> ObjectStore:
    """Data without any declared signatures."""
    store = ObjectStore()
    store.declare_class("City")
    store.declare_class("Capital", ["City"])
    store.declare_class("P")
    boston = store.create_object(Atom("boston"), ["City"])
    paris = store.create_object(Atom("paris"), ["Capital"])
    a = store.create_object(Atom("a"), ["P"])
    b = store.create_object(Atom("b"), ["P"])
    store.set_attr(a, "Home", boston)
    store.set_attr(b, "Home", paris)
    store.set_attr(a, "Age", 30)
    store.add_to_set(a, "Visited", paris)
    store.add_to_set(b, "Visited", paris)
    store.set_attr(a, "Grade", Value("A"), args=[boston])
    return store


class TestInference:
    def test_scalar_result_class(self, untyped_store):
        proposals = {
            p.signature.method.name: p
            for p in infer_signatures(untyped_store, Atom("P"))
        }
        home = proposals["Home"].signature
        # boston: City, paris: Capital -> most specific common is City.
        assert home.result == Atom("City")
        assert not home.set_valued

    def test_literal_result_class(self, untyped_store):
        proposals = {
            p.signature.method.name: p
            for p in infer_signatures(untyped_store, Atom("P"))
        }
        assert proposals["Age"].signature.result == Atom("Numeral")

    def test_set_valued_detected(self, untyped_store):
        proposals = {
            p.signature.method.name: p
            for p in infer_signatures(untyped_store, Atom("P"))
        }
        visited = proposals["Visited"].signature
        assert visited.set_valued
        assert visited.result == Atom("Capital")  # all values are capitals

    def test_argument_types_inferred(self, untyped_store):
        proposals = {
            (p.signature.method.name, p.signature.arity): p
            for p in infer_signatures(untyped_store, Atom("P"))
        }
        grade = proposals[("Grade", 1)].signature
        assert grade.type_expr.args == (Atom("City"),)
        assert grade.result == Atom("String")

    def test_support_counts(self, untyped_store):
        proposals = {
            p.signature.method.name: p
            for p in infer_signatures(untyped_store, Atom("P"))
        }
        assert proposals["Home"].support == 2
        assert proposals["Age"].support == 1

    def test_min_support_filters(self, untyped_store):
        names = {
            p.signature.method.name
            for p in infer_signatures(untyped_store, Atom("P"), min_support=2)
        }
        assert "Home" in names and "Age" not in names


class TestInstall:
    def test_installed_signatures_enable_typing(self, untyped_store):
        query = "SELECT X FROM P X WHERE X.Home[H] and H.Name"
        # without signatures the query cannot be strictly typed (no
        # candidates for Home).
        untyped_store.declare_signature("City", "Name", "String")
        before = analyze(
            "SELECT X FROM P X WHERE X.Home[H]", untyped_store
        )
        assert not before.liberal  # Home possesses no type yet
        install_inferred(untyped_store, Atom("P"))
        after = analyze(
            "SELECT X FROM P X WHERE X.Home[H]", untyped_store
        )
        assert after.strict

    def test_existing_declarations_not_overwritten(self, untyped_store):
        untyped_store.declare_signature("P", "Home", "Object")
        installed = install_inferred(untyped_store, Atom("P"))
        assert all(
            p.signature.method != Atom("Home") for p in installed
        )
        exprs = untyped_store.all_type_exprs("Home")
        assert len(exprs) == 1 and exprs[0].result == Atom("Object")

    def test_paper_database_inference_round(self):
        # inferring on an already-typed store proposes compatible shapes.
        from tests.conftest import make_paper_session

        store = make_paper_session().store
        proposals = {
            p.signature.method.name: p.signature
            for p in infer_signatures(store, Atom("Employee"))
        }
        assert proposals["Salary"].result == Atom("Numeral")
        assert proposals["FamMembers"].set_valued
