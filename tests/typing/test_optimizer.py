"""Tests for the Theorem 6.1 optimizer."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import IllTypedQueryError
from repro.oid import Atom, Variable
from repro.typing import TypedEvaluator, analyze, build_typed_query
from repro.typing.plans import ExecutionPlan
from repro.typing.strict import is_coherent
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query

FRAGMENT = (
    "SELECT X FROM Vehicle X "
    "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]"
)

TYPED_QUERIES = [
    FRAGMENT,
    "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
    "and M.President.OwnedVehicles[X]",
    "SELECT X FROM Employee X WHERE X.Salary[W] and W > 50000",
    "SELECT X FROM Company X WHERE X.Divisions[D].Manager[M] "
    "and M.Salary[W] and W > 100000",
    "SELECT X FROM Person X WHERE X.Residence[R] and R.City[C]",
]


class TestRunEquivalence:
    @pytest.mark.parametrize("text", TYPED_QUERIES)
    def test_typed_equals_untyped_on_paper_db(
        self, shared_paper_session, text
    ):
        query = parse_query(text)
        typed = TypedEvaluator(shared_paper_session.store).run(query)
        plain = Evaluator(shared_paper_session.store).run(query)
        assert typed.rows() == plain.rows()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_typed_equals_untyped_on_synthetic(self, seed):
        store = generate_database(
            WorkloadConfig(n_people=30, n_companies=3, seed=seed)
        )
        query = parse_query(FRAGMENT)
        typed = TypedEvaluator(store).run(query)
        plain = Evaluator(store).run(query)
        assert typed.rows() == plain.rows()

    def test_not_strict_raises(self, nobel_session):
        query = parse_query("SELECT X WHERE X.WonNobelPrize")
        with pytest.raises(IllTypedQueryError):
            TypedEvaluator(nobel_session.store).run(query)

    def test_precomputed_report_reused(self, shared_paper_session):
        evaluator = TypedEvaluator(shared_paper_session.store)
        query = parse_query(FRAGMENT)
        report = evaluator.plan(query)
        first = evaluator.run(query, report)
        second = evaluator.run(query, report)
        assert first.rows() == second.rows()


class TestTheoremParts:
    def test_plan_independence(self, shared_paper_session):
        """Theorem 6.1(1): every coherent plan yields the same result."""
        store = shared_paper_session.store
        query = parse_query(FRAGMENT)
        report = analyze(query, store)
        assert report.strict
        assignment, _plan = report.strict_witness
        typed_query = report.typed_query
        evaluator = TypedEvaluator(store)
        results = []
        from repro.typing.plans import all_plans

        for plan in all_plans(typed_query):
            if is_coherent(assignment, plan, typed_query, store):
                restrictions = evaluator.extent_restrictions(
                    assignment, typed_query, query
                )
                reordered = evaluator.reorder(query, typed_query, plan)
                result = Evaluator(
                    store, restrictions=restrictions
                ).run(reordered)
                results.append(result.rows())
        assert results and all(r == results[0] for r in results)

    def test_restrictions_computed_from_ranges(self, shared_paper_session):
        store = shared_paper_session.store
        query = parse_query(FRAGMENT)
        report = analyze(query, store)
        assignment, _ = report.strict_witness
        evaluator = TypedEvaluator(store)
        restrictions = evaluator.extent_restrictions(
            assignment, report.typed_query, query
        )
        m_allowed = restrictions[Variable("M")]
        assert m_allowed == store.extent("Company")
        x_allowed = restrictions[Variable("X")]
        assert x_allowed <= store.extent("Vehicle")

    def test_reorder_respects_plan(self, shared_paper_session):
        store = shared_paper_session.store
        query = parse_query(FRAGMENT)
        report = analyze(query, store)
        _assignment, plan = report.strict_witness
        evaluator = TypedEvaluator(store)
        reordered = evaluator.reorder(query, report.typed_query, plan)
        conjuncts = reordered.where.items
        # the Manufacturer path must now come before the President path.
        first = str(conjuncts[0])
        assert "Manufacturer" in first

    def test_reorder_keeps_non_path_conjuncts(self, shared_paper_session):
        store = shared_paper_session.store
        text = (
            "SELECT X FROM Employee X WHERE X.Salary[W] and W > 50000"
        )
        query = parse_query(text)
        report = analyze(query, store)
        evaluator = TypedEvaluator(store)
        reordered = evaluator.reorder(
            query, report.typed_query, report.strict_witness[1]
        )
        plain = Evaluator(store).run(query)
        result = Evaluator(store).run(reordered)
        assert result.rows() == plain.rows()


@given(seed=st.integers(0, 10_000))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_range_restriction_soundness_property(seed):
    """Theorem 6.1(2) as a property: restriction never changes answers."""
    store = generate_database(
        WorkloadConfig(n_people=16, n_companies=2, seed=seed)
    )
    query = parse_query(
        "SELECT X FROM Employee X WHERE X.Salary[W] and W > 100000"
    )
    typed = TypedEvaluator(store).run(query)
    plain = Evaluator(store).run(query)
    assert typed.rows() == plain.rows()
