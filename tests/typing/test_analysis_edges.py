"""Edge cases of the one-call typing analysis."""

import pytest

from repro.typing import analyze
from repro.typing.occurrences import TypingUnsupportedError
from repro.xsql.parser import parse_query
from repro.xsql import ast


class TestAnalyzeInputs:
    def test_accepts_parsed_query(self, shared_paper_session):
        query = parse_query("SELECT X FROM Employee X WHERE X.Salary[W]")
        report = analyze(query, shared_paper_session.store)
        assert report.strict

    def test_union_rejected(self, shared_paper_session):
        with pytest.raises(TypingUnsupportedError):
            analyze(
                "SELECT X FROM Person X UNION SELECT X FROM Company X",
                shared_paper_session.store,
            )

    def test_creating_query_outside_fragment(self, shared_paper_session):
        report = analyze(
            "SELECT N = X.Name FROM Company X OID FUNCTION OF X",
            shared_paper_session.store,
        )
        assert report.discipline() == "outside-fragment"

    def test_no_where_clause_is_trivially_strict(self, shared_paper_session):
        report = analyze(
            "SELECT X FROM Employee X", shared_paper_session.store
        )
        assert report.strict
        assert report.typed_query.paths == ()


class TestSummaries:
    def test_liberal_only_summary_lists_assignment(self, nobel_session):
        report = analyze("SELECT X WHERE X.WonNobelPrize", nobel_session.store)
        text = report.summary()
        assert "liberal-only" in text
        assert "WonNobelPrize" in text

    def test_outside_fragment_summary(self, shared_paper_session):
        report = analyze(
            "SELECT X WHERE X.A or X.B", shared_paper_session.store
        )
        assert "outside the" in report.summary()

    def test_ill_typed_summary(self, shared_paper_session):
        report = analyze(
            "SELECT X FROM Person X WHERE X.Divisions[D]",
            shared_paper_session.store,
        )
        assert report.summary() == "discipline: ill-typed"
