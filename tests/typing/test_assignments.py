"""Tests for type assignments, candidates, and validity (§6.2)."""

import pytest

from repro.oid import Atom, Value, Variable
from repro.typing.assignments import (
    TypeAssignment,
    candidate_type_exprs,
    is_valid_assignment,
    validity_failure,
)
from repro.typing.occurrences import build_typed_query
from repro.xsql.parser import parse_query


def typed(text):
    return build_typed_query(parse_query(text))


def assign_all(typed_query, store, chooser=None):
    """Assign each occurrence its first (or chosen) candidate."""
    mapping = {}
    for occ in typed_query.all_occurrences():
        candidates = candidate_type_exprs(store, occ)
        assert candidates, f"no candidates for {occ}"
        chosen = candidates[0]
        if chooser is not None:
            chosen = chooser(occ, candidates)
        mapping[occ] = chosen
    return TypeAssignment.of(mapping)


class TestCandidates:
    def test_declared_expression_first(self, shared_paper_session):
        query = typed("SELECT X FROM Vehicle X WHERE X.Manufacturer[M]")
        occ = query.all_occurrences()[0]
        candidates = candidate_type_exprs(shared_paper_session.store, occ)
        assert candidates[0].scope == Atom("Vehicle")
        assert candidates[0].result == Atom("Company")

    def test_result_superclass_variants_included(self, shared_paper_session):
        query = typed("SELECT X FROM Vehicle X WHERE X.Manufacturer[M]")
        occ = query.all_occurrences()[0]
        candidates = candidate_type_exprs(shared_paper_session.store, occ)
        results = {c.result for c in candidates}
        assert Atom("Object") in results  # generalized result

    def test_arity_filtering(self, typing_session):
        query = typed("SELECT M WHERE OO_Forum.(Member @ Y)[M]")
        occ = query.all_occurrences()[0]
        candidates = candidate_type_exprs(typing_session.store, occ)
        assert all(c.arity == 1 for c in candidates)

    def test_unknown_method_has_no_candidates(self, shared_paper_session):
        query = typed("SELECT X WHERE X.NoSuchAttr[Y]")
        occ = query.all_occurrences()[0]
        assert candidate_type_exprs(shared_paper_session.store, occ) == []


class TestForcedTypesAndRanges:
    def test_forcing_rule(self, shared_paper_session):
        # "A_ij is assigned T_ij, Sel_{i-1} is assigned T_i0, and Sel_i is
        # assigned R_i".
        query = typed("SELECT X FROM Vehicle X WHERE X.Manufacturer[M]")
        assignment = assign_all(query, shared_paper_session.store)
        forced = assignment.forced_types(query)
        assert forced[Variable("X")] == [Atom("Vehicle")]
        assert forced[Variable("M")] == [Atom("Company")]

    def test_range_includes_from_and_object(self, shared_paper_session):
        query = typed("SELECT X FROM Vehicle X WHERE X.Manufacturer[M]")
        assignment = assign_all(query, shared_paper_session.store)
        range_x = assignment.range_of(Variable("X"), query)
        assert Atom("Vehicle") in range_x.classes
        assert Atom("Object") in range_x.classes

    def test_restriction_drops_entries(self, shared_paper_session):
        query = typed(
            "SELECT X FROM Vehicle X "
            "WHERE X.Manufacturer[M] and M.President[P]"
        )
        assignment = assign_all(query, shared_paper_session.store)
        restricted = assignment.restrict_to([])
        assert restricted.entries == ()
        assert restricted.range_of(Variable("M"), query).classes == frozenset(
            {Atom("Object")}
        )


class TestValidity:
    def test_valid_assignment(self, shared_paper_session):
        query = typed("SELECT X FROM Vehicle X WHERE X.Manufacturer[M]")
        assignment = assign_all(query, shared_paper_session.store)
        assert is_valid_assignment(
            assignment, query, shared_paper_session.store
        )

    def test_oid_selector_instance_check(self, shared_paper_session):
        # mary123 is a Person, not a Company: President's scope fails.
        query = typed("SELECT P WHERE mary123.President[P]")
        assignment = assign_all(query, shared_paper_session.store)
        failure = validity_failure(
            assignment, query, shared_paper_session.store
        )
        assert failure is not None and "mary123" in failure

    def test_comparison_domain_check(self, shared_paper_session):
        # Name (String) < 5 (Numeral) is never well defined.
        query = typed("SELECT X FROM Person X WHERE X.Name < 5")
        assignment = assign_all(query, shared_paper_session.store)
        failure = validity_failure(
            assignment, query, shared_paper_session.store
        )
        assert failure is not None and "not well defined" in failure

    def test_string_ordering_is_well_defined(self, shared_paper_session):
        query = typed("SELECT X FROM Person X WHERE X.Name < 'zzz'")
        assignment = assign_all(query, shared_paper_session.store)
        assert is_valid_assignment(
            assignment, query, shared_paper_session.store
        )

    def test_equality_always_well_defined(self, shared_paper_session):
        query = typed("SELECT X FROM Person X WHERE X.Name =some X.Age")
        assignment = assign_all(query, shared_paper_session.store)
        assert is_valid_assignment(
            assignment, query, shared_paper_session.store
        )

    def test_incomplete_detected(self, shared_paper_session):
        query = typed("SELECT X FROM Vehicle X WHERE X.Manufacturer[M]")
        empty = TypeAssignment.of({})
        assert not empty.is_complete_for(query)
