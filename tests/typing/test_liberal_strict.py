"""Tests for the well-typing spectrum (§6.2): liberal, strict, exemptions.

Every worked typing example of the paper is checked: the Nobel-prize query
(liberal but not strict, strict with the 0-th argument exempted), fragment
(17) with assignment (18) (strict via the plan with an arc from the first
to the second path expression), and fragment (19) with assignments
(18)/(20) (strict only via the plan third → second → first, and only with
``President : Organization => Person``).
"""

import pytest

from repro.oid import Atom
from repro.typing import (
    Exemptions,
    TypedEvaluator,
    analyze,
    build_typed_query,
    find_coherent_pair,
    is_coherent,
)
from repro.typing.assignments import TypeAssignment, candidate_type_exprs
from repro.typing.plans import ExecutionPlan, all_plans
from repro.typing.strict import coherence_failure
from repro.xsql.parser import parse_query

FRAGMENT_17 = (
    "SELECT X FROM Vehicle X "
    "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]"
)
FRAGMENT_19 = (
    "SELECT X FROM Numeral Year "
    "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X] "
    "and OO_Forum.(Member @ Year)[M]"
)


class TestNobel:
    def test_liberal_but_not_strict(self, nobel_session):
        report = analyze("SELECT X WHERE X.WonNobelPrize", nobel_session.store)
        assert report.liberal and not report.strict
        assert report.discipline() == "liberal-only"

    def test_exempting_scope_argument_makes_strict(self, nobel_session):
        report = analyze(
            "SELECT X WHERE X.WonNobelPrize",
            nobel_session.store,
            Exemptions.for_method("WonNobelPrize", 0),
        )
        assert report.strict

    def test_conservative_from_clause_is_strict(self, nobel_session):
        report = analyze(
            "SELECT X FROM Scientist X WHERE X.WonNobelPrize",
            nobel_session.store,
        )
        assert report.strict


class TestFragment17:
    def test_strict_with_forward_plan(self, shared_paper_session):
        report = analyze(FRAGMENT_17, shared_paper_session.store)
        assert report.strict
        _assignment, plan = report.strict_witness
        assert plan.order == (0, 1)  # Manufacturer path first

    def test_reverse_plan_incoherent_with_18(self, shared_paper_session):
        # "It does not satisfy the second condition ... because M does
        # not occur in FROM."
        store = shared_paper_session.store
        typed_query = build_typed_query(parse_query(FRAGMENT_17))
        occurrences = typed_query.all_occurrences()
        assignment = TypeAssignment.of(
            {
                occ: candidate_type_exprs(store, occ)[0]
                for occ in occurrences
            }
        )
        reverse = ExecutionPlan((1, 0))
        failure = coherence_failure(assignment, reverse, typed_query, store)
        assert failure is not None and "President" in failure

    def test_typed_evaluation_matches_untyped(self, shared_paper_session):
        from repro.xsql.evaluator import Evaluator

        query = parse_query(FRAGMENT_17)
        typed_result = TypedEvaluator(shared_paper_session.store).run(query)
        plain = Evaluator(shared_paper_session.store).run(query)
        assert typed_result.rows() == plain.rows()


class TestFragment19:
    def test_only_plan_2_1_0_coherent(self, typing_session):
        report = analyze(FRAGMENT_19, typing_session.store)
        assert report.strict
        assignment, plan = report.strict_witness
        assert plan.order == (2, 1, 0)
        president = next(
            expr
            for occ, expr in assignment.entries
            if occ.method == Atom("President")
        )
        # A1: President gets Organization => Person, not Company => Person.
        assert president.scope == Atom("Organization")

    def test_company_president_assignment_never_coherent(
        self, typing_session
    ):
        store = typing_session.store
        typed_query = build_typed_query(parse_query(FRAGMENT_19))
        occurrences = typed_query.all_occurrences()

        def company_chooser(occ):
            candidates = candidate_type_exprs(store, occ)
            if occ.method == Atom("President"):
                return next(
                    c for c in candidates if c.scope == Atom("Company")
                )
            return candidates[0]

        assignment = TypeAssignment.of(
            {occ: company_chooser(occ) for occ in occurrences}
        )
        for plan in all_plans(typed_query):
            assert not is_coherent(assignment, plan, typed_query, store)

    def test_without_member_conjunct_not_strict(self, shared_paper_session):
        # Fragment (19) minus the OO_Forum conjunct: nothing ever binds M
        # or X to typed oids first (FROM declares only Year), so no plan
        # is coherent — exactly why the paper adds the Member path.
        report = analyze(
            "SELECT X FROM Numeral Year "
            "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]",
            shared_paper_session.store,
        )
        assert report.liberal and not report.strict


class TestIllTyped:
    def test_empty_range_rejected(self, shared_paper_session):
        # X both a Person (FROM) and the scope of Divisions (Company).
        report = analyze(
            "SELECT X FROM Person X WHERE X.Divisions[D]",
            shared_paper_session.store,
        )
        assert not report.liberal
        assert report.discipline() == "ill-typed"

    def test_unknown_method_rejected(self, shared_paper_session):
        report = analyze(
            "SELECT X FROM Person X WHERE X.Blarg[Y]",
            shared_paper_session.store,
        )
        assert not report.liberal

    def test_outside_fragment_reported(self, shared_paper_session):
        report = analyze(
            "SELECT X WHERE X.Age or X.Name", shared_paper_session.store
        )
        assert report.discipline() == "outside-fragment"
        assert report.unsupported_reason


class TestExemptionAlgebra:
    def test_occurrence_pinned_exemption(self, nobel_session):
        exemptions = Exemptions(
            by_occurrence=frozenset({(0, 1, 0)})
        )
        report = analyze(
            "SELECT X WHERE X.WonNobelPrize", nobel_session.store, exemptions
        )
        assert report.strict

    def test_all_of_merges(self):
        merged = Exemptions.all_of(
            [
                Exemptions.for_method("A", 0),
                Exemptions.for_method("B", 1),
            ]
        )
        assert ("A", 0) in merged.by_method
        assert ("B", 1) in merged.by_method

    def test_report_summary_renders(self, shared_paper_session):
        report = analyze(FRAGMENT_17, shared_paper_session.store)
        text = report.summary()
        assert "strict" in text and "plan" in text
