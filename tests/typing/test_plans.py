"""Tests for execution plans (§6.2)."""

import pytest

from repro.errors import TypingError
from repro.typing.occurrences import build_typed_query
from repro.typing.plans import ExecutionPlan, all_plans
from repro.xsql.parser import parse_query


def typed(text):
    return build_typed_query(parse_query(text))


class TestExecutionPlan:
    def test_positions(self):
        plan = ExecutionPlan((2, 0, 1))
        assert plan.position_of(0) == 1
        assert plan.preceding(1) == (2, 0)
        assert plan.preceding(2) == ()

    def test_str(self):
        assert str(ExecutionPlan((1, 0))) == "p1 -> p0"


class TestEnumeration:
    def test_counts_are_factorial(self):
        query = typed(
            "SELECT X FROM Company X WHERE X.Divisions[D] "
            "and D.Manager[M] and M.Salary[W]"
        )
        assert len(list(all_plans(query))) == 6

    def test_single_path_single_plan(self):
        query = typed("SELECT X FROM Person X WHERE X.Age[W]")
        assert [p.order for p in all_plans(query)] == [(0,)]

    def test_no_paths_yields_empty_plan(self):
        query = typed("SELECT X FROM Person X")
        assert [p.order for p in all_plans(query)] == [()]

    def test_enumeration_guard(self):
        conjuncts = " and ".join(f"X.Age[W{i}]" for i in range(9))
        query = typed(f"SELECT X FROM Person X WHERE {conjuncts}")
        with pytest.raises(TypingError):
            list(all_plans(query))

    def test_plans_are_distinct_orders(self):
        query = typed(
            "SELECT X FROM Person X WHERE X.Age[W] and X.Name[N]"
        )
        orders = [p.order for p in all_plans(query)]
        assert sorted(orders) == [(0, 1), (1, 0)]
