"""Tests for the statistics catalogue feeding the cost-based optimizer."""

import pytest

from repro.datamodel import ObjectStore
from repro.oid import Atom, Value


@pytest.fixture
def store() -> ObjectStore:
    s = ObjectStore()
    s.declare_class("P")
    s.declare_class("Addr")
    s.declare_signature("P", "Residence", "Addr")
    s.declare_signature("P", "Knows", "P", set_valued=True)
    s.create_object(Atom("home"), ["Addr"])
    s.create_object(Atom("away"), ["Addr"])
    for name in ("a", "b", "c"):
        s.create_object(Atom(name), ["P"])
    return s


class TestExtentCounts:
    def test_membership_is_counted_incrementally(self, store):
        assert store.statistics.direct_extent_count(Atom("P")) == 3
        store.create_object(Atom("d"), ["P"])
        assert store.statistics.direct_extent_count(Atom("P")) == 4
        store.remove_instance(Atom("d"), "P")
        assert store.statistics.direct_extent_count(Atom("P")) == 3

    def test_repeated_add_instance_counts_once(self, store):
        store.add_instance(Atom("a"), "P")
        store.add_instance(Atom("a"), "P")
        assert store.statistics.direct_extent_count(Atom("P")) == 3

    def test_extent_estimate_sums_subclass_closure(self, store):
        store.declare_class("Q", ["P"])
        store.create_object(Atom("q1"), ["Q"])
        assert store.extent_estimate(Atom("P")) == 4
        assert store.extent_estimate(Atom("Q")) == 1

    def test_estimate_matches_actual_extent(self, store):
        assert store.extent_estimate(Atom("P")) == len(
            store.extent(Atom("P"))
        )

    def test_purge_decrements_membership(self, store):
        store.purge_object(Atom("c"))
        assert store.statistics.direct_extent_count(Atom("P")) == 2


class TestMethodStats:
    def test_scalar_writes_track_distinct_values(self, store):
        store.set_attr(Atom("a"), "Residence", Atom("home"))
        store.set_attr(Atom("b"), "Residence", Atom("home"))
        store.set_attr(Atom("c"), "Residence", Atom("away"))
        stats = store.method_statistics("Residence")
        assert stats.rows == 3
        assert stats.cells == 3
        assert stats.distinct_values == 2
        assert stats.expected_owners(Atom("home")) == 2.0
        assert stats.expected_owners(Atom("away")) == 1.0

    def test_overwrite_moves_refcounts(self, store):
        store.set_attr(Atom("a"), "Residence", Atom("home"))
        store.set_attr(Atom("a"), "Residence", Atom("away"))
        stats = store.method_statistics("Residence")
        assert stats.rows == 1
        assert stats.distinct_values == 1
        # "home" is no longer a counted value; the estimator falls back
        # to the uniform average (rows / distinct = 1.0), not to zero.
        assert stats.expected_owners(Atom("home")) == pytest.approx(1.0)
        assert stats.expected_owners(Atom("away")) == 1.0

    def test_set_valued_fan_out(self, store):
        store.add_to_set(Atom("a"), "Knows", Atom("b"))
        store.add_to_set(Atom("a"), "Knows", Atom("c"))
        store.add_to_set(Atom("b"), "Knows", Atom("c"))
        stats = store.method_statistics("Knows")
        assert stats.rows == 3
        assert stats.cells == 2
        assert stats.fan_out == pytest.approx(1.5)
        assert stats.distinct_owners == 2

    def test_unset_removes_rows(self, store):
        store.set_attr(Atom("a"), "Residence", Atom("home"))
        store.unset_attr(Atom("a"), "Residence")
        stats = store.method_statistics("Residence")
        assert stats.rows == 0
        assert stats.distinct_values == 0

    def test_purge_replays_removals(self, store):
        store.set_attr(Atom("a"), "Residence", Atom("home"))
        store.add_to_set(Atom("a"), "Knows", Atom("b"))
        store.purge_object(Atom("a"))
        assert store.method_statistics("Residence").rows == 0
        assert store.method_statistics("Knows").rows == 0

    def test_unseen_method_is_empty(self, store):
        stats = store.method_statistics("Nope")
        assert stats.rows == 0
        assert stats.expected_owners(Atom("home")) == 0.0

    def test_expected_owners_average_for_uncounted_value(self, store):
        store.set_attr(Atom("a"), "Residence", Atom("home"))
        store.set_attr(Atom("b"), "Residence", Atom("away"))
        stats = store.method_statistics("Residence")
        # 2 rows over 2 distinct values -> one owner on average.
        assert stats.expected_owners() == pytest.approx(1.0)


class TestGeneration:
    def test_data_writes_bump_generation(self, store):
        before = store.statistics.generation
        store.set_attr(Atom("a"), "Residence", Atom("home"))
        assert store.statistics.generation > before

    def test_noop_write_does_not_bump(self, store):
        store.set_attr(Atom("a"), "Residence", Atom("home"))
        before = store.statistics.generation
        store.set_attr(Atom("a"), "Residence", Atom("home"))
        assert store.statistics.generation == before

    def test_ddl_bumps_generation(self, store):
        before = store.statistics.generation
        store.declare_class("R")
        assert store.statistics.generation > before


class TestSnapshot:
    def test_snapshot_is_json_friendly(self, store):
        import json

        store.set_attr(Atom("a"), "Residence", Atom("home"))
        store.add_to_set(Atom("a"), "Knows", Atom("b"))
        payload = store.statistics.snapshot()
        json.dumps(payload)
        assert payload["extents"]["P"] == 3
        assert payload["methods"]["Residence"]["rows"] == 1
