"""Property tests: indexes never change query answers.

Random databases, random write sequences — reverse lookups through the
index must always equal the scan answers, and the incrementally
maintained index must equal one rebuilt from scratch.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datamodel import ObjectStore
from repro.oid import Atom
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# a write script: (op, owner, value) over 4 owners / 3 values
write_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "unset", "add", "replace_set"]),
        st.integers(0, 3),
        st.integers(0, 2),
    ),
    max_size=25,
)


def apply_script(store: ObjectStore, script) -> None:
    owners = [Atom(f"o{i}") for i in range(4)]
    values = [Atom(f"v{i}") for i in range(3)]
    for op, owner_index, value_index in script:
        owner = owners[owner_index]
        value = values[value_index]
        try:
            if op == "set":
                store.set_attr(owner, "Ref", value)
            elif op == "unset":
                store.unset_attr(owner, "Ref")
            elif op == "add":
                store.add_to_set(owner, "Refs", value)
            elif op == "replace_set":
                store.set_attr_set(owner, "Refs", [value])
        except Exception:
            # scalar/set arrow conflicts are legal rejections; the index
            # must simply stay consistent with whatever was stored.
            continue


def build_store(script, indexed_from_start: bool) -> ObjectStore:
    store = ObjectStore()
    store.declare_class("N")
    for i in range(4):
        store.create_object(Atom(f"o{i}"), ["N"])
    for i in range(3):
        store.create_object(Atom(f"v{i}"), ["N"])
    if indexed_from_start:
        store.enable_index("Ref")
        store.enable_index("Refs")
    apply_script(store, script)
    if not indexed_from_start:
        store.enable_index("Ref")
        store.enable_index("Refs")
    return store


@given(script=write_ops)
@SETTINGS
def test_incremental_equals_backfilled(script):
    incremental = build_store(script, indexed_from_start=True)
    backfilled = build_store(script, indexed_from_start=False)
    for method in ("Ref", "Refs"):
        for i in range(3):
            value = Atom(f"v{i}")
            assert incremental.lookup_by_value(
                method, value
            ) == backfilled.lookup_by_value(method, value), (method, value)


@given(script=write_ops, target=st.integers(0, 2))
@SETTINGS
def test_indexed_query_equals_scan(script, target):
    indexed = build_store(script, indexed_from_start=True)
    plain = build_store(script, indexed_from_start=False)
    plain.disable_index("Ref")
    plain.disable_index("Refs")
    for method in ("Ref", "Refs"):
        query = parse_query(f"SELECT X WHERE X.{method}[v{target}]")
        with_index = Evaluator(indexed).run(query)
        scan = Evaluator(plain).run(query)
        assert with_index.rows() == scan.rows(), method
