"""Tests for signatures and the sub/supertype order (paper §2, §6.1)."""

import pytest

from repro.datamodel.hierarchy import ClassHierarchy
from repro.datamodel.signatures import Signature, TypeExpr, combine_result_classes
from repro.errors import SignatureError
from repro.oid import Atom


@pytest.fixture
def hierarchy() -> ClassHierarchy:
    h = ClassHierarchy()
    h.add_class(Atom("Person"))
    h.add_class(Atom("Employee"), [Atom("Person")])
    h.add_class(Atom("Student"), [Atom("Person")])
    h.add_class(Atom("Workstudy"), [Atom("Employee"), Atom("Student")])
    h.add_class(Atom("Pay"))
    h.add_class(Atom("Bonus"), [Atom("Pay")])
    return h


def te(scope, args, result, set_valued=False):
    return TypeExpr(Atom(scope), tuple(Atom(a) for a in args), Atom(result), set_valued)


class TestTypeExpr:
    def test_str_scalar(self):
        assert str(te("Person", ["Pay"], "Pay")) == "(Person, Pay => Pay)"

    def test_str_set(self):
        assert "=>>" in str(te("Person", [], "Pay", set_valued=True))

    def test_arity_excludes_scope(self):
        # "there are actually k + 1 (rather than k) arguments" — the scope
        # is the 0th argument and not counted in arity.
        assert te("Person", ["Pay", "Pay"], "Pay").arity == 2


class TestSupertypeOrder:
    def test_reflexive(self, hierarchy):
        expr = te("Person", [], "Pay")
        assert expr.is_supertype_of(expr, hierarchy)

    def test_narrower_scope_is_subtype_direction(self, hierarchy):
        # (15) is a supertype of (14) iff each Ai' is a subclass of Ai and
        # R' a superclass of R.
        broad = te("Employee", [], "Pay")  # narrower scope
        base = te("Person", [], "Pay")
        assert broad.is_supertype_of(base, hierarchy)
        assert not base.is_supertype_of(broad, hierarchy)

    def test_result_covariance(self, hierarchy):
        general = te("Person", [], "Pay")
        specific = te("Person", [], "Bonus")
        assert general.is_supertype_of(specific, hierarchy)
        assert specific.is_subtype_of(general, hierarchy)

    def test_arrow_kinds_never_comparable(self, hierarchy):
        scalar = te("Person", [], "Pay")
        set_valued = te("Person", [], "Pay", set_valued=True)
        assert not scalar.is_supertype_of(set_valued, hierarchy)
        assert not set_valued.is_supertype_of(scalar, hierarchy)

    def test_arity_mismatch_never_comparable(self, hierarchy):
        assert not te("Person", [], "Pay").is_supertype_of(
            te("Person", ["Pay"], "Pay"), hierarchy
        )

    def test_argument_positions(self, hierarchy):
        narrow_arg = te("Person", ["Employee"], "Pay")
        wide_arg = te("Person", ["Person"], "Pay")
        assert narrow_arg.is_supertype_of(wide_arg, hierarchy)
        assert not wide_arg.is_supertype_of(narrow_arg, hierarchy)

    def test_applies_to_scope(self, hierarchy):
        expr = te("Employee", [], "Pay")
        assert expr.applies_to_scope([Atom("Workstudy")], hierarchy)
        assert not expr.applies_to_scope([Atom("Student")], hierarchy)


class TestSignature:
    def test_str_attribute(self):
        sig = Signature(Atom("Name"), te("Person", [], "Pay"))
        assert str(sig) == "Name => Pay"

    def test_str_method(self):
        sig = Signature(Atom("earns"), te("Person", ["Pay"], "Pay"))
        assert str(sig) == "earns : Pay => Pay"

    def test_name_must_be_atom(self):
        with pytest.raises(SignatureError):
            Signature("Name", te("Person", [], "Pay"))  # type: ignore[arg-type]


class TestBraceShorthand:
    def test_combined_signatures_expand(self):
        # workstudy : semester =>> {student, employee} (§2).
        sigs = combine_result_classes(
            Atom("workstudy"),
            Atom("Person"),
            (Atom("Pay"),),
            [Atom("Student"), Atom("Employee")],
            set_valued=True,
        )
        assert len(sigs) == 2
        assert {s.result for s in sigs} == {Atom("Student"), Atom("Employee")}
        assert all(s.set_valued for s in sigs)
