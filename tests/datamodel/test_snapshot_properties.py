"""Property tests: a pinned snapshot equals serial replay of its prefix.

Random write scripts with interleaved PIN markers — every snapshot taken
mid-script must, once the whole script has run, still expose exactly the
state a fresh store reaches by replaying the ops before its pin.  This
is the single-threaded core of the snapshot-isolation guarantee (the
concurrent half lives in ``repro.difftest.concurrent``); shrinking gives
minimal counterexample scripts when a pre-image family is wrong.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datamodel import ObjectStore
from repro.oid import Atom, Value

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

OWNERS = 4
VALUES = 5

# A script step: ("pin",) markers interleaved with mutation ops over a
# small universe of owners and values.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("pin")),
        st.tuples(st.just("create"), st.integers(0, OWNERS - 1)),
        st.tuples(
            st.just("set"),
            st.integers(0, OWNERS - 1),
            st.sampled_from(["Age", "Name"]),
            st.integers(0, VALUES - 1),
        ),
        st.tuples(
            st.just("add"), st.integers(0, OWNERS - 1), st.integers(0, VALUES - 1)
        ),
        st.tuples(
            st.just("unset"),
            st.integers(0, OWNERS - 1),
            st.sampled_from(["Age", "Name", "Tags"]),
        ),
        st.tuples(st.just("employ"), st.integers(0, OWNERS - 1)),
        st.tuples(st.just("unemploy"), st.integers(0, OWNERS - 1)),
        st.tuples(st.just("purge"), st.integers(0, OWNERS - 1)),
        st.tuples(
            st.just("tuple"), st.integers(0, OWNERS - 1), st.integers(0, VALUES - 1)
        ),
    ),
    max_size=30,
)


def fresh_store() -> ObjectStore:
    store = ObjectStore()
    store.declare_class("Person")
    store.declare_class("Employee", ["Person"])
    store.declare_signature("Person", "Name", "String")
    store.declare_signature("Person", "Age", "Numeral")
    store.declare_signature("Person", "Tags", "String", set_valued=True)
    store.declare_relation("Likes", ["who", "what"])
    return store


def apply_step(store, step) -> None:
    """One mutation; invalid ops raise and are skipped identically on
    the live and the replay side."""
    kind = step[0]
    owner = Atom(f"o{step[1]}") if len(step) > 1 else None
    if kind == "create":
        store.create_object(owner, ["Person"])
    elif kind == "set":
        store.set_attr(owner, step[2], step[3])
    elif kind == "add":
        store.add_to_set(owner, "Tags", f"t{step[2]}")
    elif kind == "unset":
        store.unset_attr(owner, step[2])
    elif kind == "employ":
        store.add_instance(owner, "Employee")
    elif kind == "unemploy":
        store.remove_instance(owner, "Employee")
    elif kind == "purge":
        store.purge_object(owner)
    elif kind == "tuple":
        store.insert_tuple("Likes", [owner, Value(f"v{step[2]}")])


def run_script(store, script) -> None:
    for step in script:
        if step[0] == "pin":
            continue
        try:
            apply_step(store, step)
        except Exception:
            continue


def visible_state(store) -> dict:
    """Canonical, order-insensitive dump of everything a reader sees."""
    state = {
        "known": sorted(str(o) for o in store.known_objects()),
        "person": sorted(str(o) for o in store.extent("Person")),
        "employee": sorted(str(o) for o in store.extent("Employee")),
        "likes": sorted(
            tuple(str(t) for t in row) for row in store.relation("Likes").rows()
        ),
    }
    cells = {}
    for i in range(OWNERS):
        owner = Atom(f"o{i}")
        for method in ("Age", "Name", "Tags"):
            values = store.invoke(owner, method)
            if values:
                cells[f"o{i}.{method}"] = sorted(str(v) for v in values)
    state["cells"] = cells
    return state


class TestSnapshotEqualsReplay:
    @SETTINGS
    @given(script=steps)
    def test_pinned_views_match_prefix_replay(self, script):
        live = fresh_store()
        views = []  # (prefix index, StoreView)
        try:
            for index, step in enumerate(script):
                if step[0] == "pin":
                    views.append((index, live.snapshot_view()))
                    continue
                try:
                    apply_step(live, step)
                except Exception:
                    continue
            for prefix, view in views:
                replay = fresh_store()
                run_script(replay, script[:prefix])
                assert visible_state(view) == visible_state(replay)
            # The live store itself must equal full replay (the chains
            # never contaminate live reads).
            replay = fresh_store()
            run_script(replay, script)
            assert visible_state(live) == visible_state(replay)
        finally:
            for _prefix, view in views:
                view.release()
        assert live.version_status()["pins"] == 0

    @SETTINGS
    @given(script=steps)
    def test_release_order_does_not_matter(self, script):
        # Releasing pins youngest-first vs oldest-first must always end
        # with empty chains (GC floor handling).
        for reverse in (False, True):
            live = fresh_store()
            views = []
            for step in script:
                if step[0] == "pin":
                    views.append(live.snapshot_view())
                    continue
                try:
                    apply_step(live, step)
                except Exception:
                    continue
            for view in reversed(views) if reverse else views:
                view.release()
            status = live.version_status()
            assert status["pins"] == 0
            assert status["cell_chain_entries"] == 0
            assert status["membership_chain_entries"] == 0
            assert status["known_chain_entries"] == 0
            assert status["relation_chain_entries"] == 0
            assert status["schema_images"] == 0
