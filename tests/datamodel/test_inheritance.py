"""Tests for behavioral inheritance (paper §2 "Inheritance", §6.1)."""

import pytest

from repro.datamodel import ObjectStore, PythonMethod
from repro.errors import InheritanceConflictError
from repro.oid import Atom, Value


@pytest.fixture
def store() -> ObjectStore:
    s = ObjectStore()
    s.declare_class("Person")
    s.declare_class("Employee", ["Person"])
    s.declare_class("Student", ["Person"])
    s.declare_class("Workstudy", ["Employee", "Student"])
    return s


class TestDefaultValueInheritance:
    def test_instance_inherits_class_default(self, store):
        store.set_attr(Atom("Person"), "LegalStatus", "citizen")
        pam = store.create_object(Atom("pam"), ["Employee"])
        assert store.invoke(pam, "LegalStatus") == frozenset(
            {Value("citizen")}
        )

    def test_own_value_overrides_default(self, store):
        store.set_attr(Atom("Person"), "LegalStatus", "citizen")
        pam = store.create_object(Atom("pam"), ["Employee"])
        store.set_attr(pam, "LegalStatus", "visitor")
        assert store.invoke(pam, "LegalStatus") == frozenset(
            {Value("visitor")}
        )

    def test_subclass_default_overrides_superclass(self, store):
        store.set_attr(Atom("Person"), "Hours", 0)
        store.set_attr(Atom("Employee"), "Hours", 40)
        pam = store.create_object(Atom("pam"), ["Employee"])
        assert store.invoke(pam, "Hours") == frozenset({Value(40)})

    def test_class_object_inherits_from_superclass(self, store):
        # "even though a function may not be explicitly defined on a
        # class-object ... it may still be implicitly defined" (§2).
        store.set_attr(Atom("Person"), "Kind", "human")
        assert store.invoke(Atom("Employee"), "Kind") == frozenset(
            {Value("human")}
        )


class TestMultipleInheritanceConflicts:
    def test_unresolved_conflict_raises(self, store):
        store.set_attr(Atom("Employee"), "Stipend", 100)
        store.set_attr(Atom("Student"), "Stipend", 50)
        pam = store.create_object(Atom("pam"), ["Workstudy"])
        with pytest.raises(InheritanceConflictError):
            store.invoke(pam, "Stipend")

    def test_explicit_resolution(self, store):
        # Meyer-style: "the user should state which definition of M is
        # inherited in C' as part of the schema definition" (§6.1).
        store.set_attr(Atom("Employee"), "Stipend", 100)
        store.set_attr(Atom("Student"), "Stipend", 50)
        store.resolve_inheritance("Workstudy", "Stipend", "Employee")
        pam = store.create_object(Atom("pam"), ["Workstudy"])
        assert store.invoke(pam, "Stipend") == frozenset({Value(100)})

    def test_resolution_must_name_a_superclass(self, store):
        with pytest.raises(InheritanceConflictError):
            store.resolve_inheritance("Employee", "Stipend", "Student")

    def test_no_conflict_when_one_class_more_specific(self, store):
        store.set_attr(Atom("Person"), "Stipend", 10)
        store.set_attr(Atom("Employee"), "Stipend", 100)
        pam = store.create_object(Atom("pam"), ["Workstudy"])
        assert store.invoke(pam, "Stipend") == frozenset({Value(100)})


class TestImplementationInheritance:
    def test_method_inherited_by_subclass_instances(self, store):
        double_age = PythonMethod(
            name=Atom("DoubleAge"),
            fn=lambda s, owner: Value(
                2 * s.invoke_scalar(owner, "Age").value
            ),
        )
        store.declare_signature("Person", "Age", "Numeral")
        store.define_method("Person", double_age)
        pam = store.create_object(Atom("pam"), ["Workstudy"])
        store.set_attr(pam, "Age", 21)
        assert store.invoke(pam, "DoubleAge") == frozenset({Value(42)})

    def test_overriding_implementation(self, store):
        base = PythonMethod(name=Atom("Greet"), fn=lambda s, o: Value("hi"))
        derived = PythonMethod(
            name=Atom("Greet"), fn=lambda s, o: Value("hello")
        )
        store.define_method("Person", base)
        store.define_method("Employee", derived)
        pam = store.create_object(Atom("pam"), ["Employee"])
        tom = store.create_object(Atom("tom"), ["Student"])
        assert store.invoke(pam, "Greet") == frozenset({Value("hello")})
        assert store.invoke(tom, "Greet") == frozenset({Value("hi")})

    def test_conflicting_implementations_raise(self, store):
        store.define_method(
            "Employee", PythonMethod(name=Atom("G"), fn=lambda s, o: Value(1))
        )
        store.define_method(
            "Student", PythonMethod(name=Atom("G"), fn=lambda s, o: Value(2))
        )
        pam = store.create_object(Atom("pam"), ["Workstudy"])
        with pytest.raises(InheritanceConflictError):
            store.invoke(pam, "G")

    def test_conflicting_implementations_resolved(self, store):
        store.define_method(
            "Employee", PythonMethod(name=Atom("G"), fn=lambda s, o: Value(1))
        )
        store.define_method(
            "Student", PythonMethod(name=Atom("G"), fn=lambda s, o: Value(2))
        )
        store.resolve_inheritance("Workstudy", "G", "Student")
        pam = store.create_object(Atom("pam"), ["Workstudy"])
        assert store.invoke(pam, "G") == frozenset({Value(2)})


class TestStructuralInheritance:
    def test_signatures_always_union_never_overridden(self, store):
        # "the set of signatures of M in C' consists of all signatures in
        # the ancestors of C' and all signatures in the new definitions".
        store.declare_class("UPay")
        store.declare_class("UGrade")
        store.declare_class("UProject")
        store.declare_class("UCourse")
        store.declare_signature("Employee", "earns", "UPay", args=["UProject"])
        store.declare_signature("Student", "earns", "UGrade", args=["UCourse"])
        sigs = store.signatures_of("Workstudy", "earns")
        results = {s.result.name for s in sigs}
        assert results == {"UPay", "UGrade"}

    def test_inherited_signature_visible_one_level_down(self, store):
        store.declare_signature("Person", "Name", "String")
        assert any(
            s.method == Atom("Name")
            for s in store.signatures_of("Workstudy")
        )
