"""Tests for the system catalogue and object subdomains (paper §2)."""

import pytest

from repro.datamodel import ObjectStore
from repro.datamodel.catalogue import BOOLEAN, NUMERAL, STRING
from repro.errors import SchemaError
from repro.oid import NIL, Atom, Value


class TestSorts:
    def test_class_objects_disjoint_from_individuals(self):
        store = ObjectStore()
        store.declare_class("Person")
        assert store.catalogue.is_class(Atom("Person"))
        with pytest.raises(SchemaError):
            store.catalogue.check_individual(Atom("Person"))

    def test_method_atoms_registered(self):
        store = ObjectStore()
        store.declare_class("Person")
        store.declare_signature("Person", "Name", "String")
        assert store.catalogue.is_method(Atom("Name"))
        assert not store.catalogue.is_method(Atom("Person"))

    def test_method_name_colliding_with_class_rejected(self):
        store = ObjectStore()
        store.declare_class("Person")
        with pytest.raises(SchemaError):
            store.catalogue.register_method(Atom("Person"))


class TestStrictNamespace:
    def test_relaxed_allows_shared_names(self):
        # "the user has an added flexibility in choosing names" (§2).
        store = ObjectStore(strict_method_namespace=False)
        store.declare_class("Person")
        store.declare_signature("Person", "Name", "String")
        store.create_object(Atom("Name"), ["Person"])  # no error

    def test_strict_rejects_method_as_individual(self):
        # "we gain a degree of syntactic safety" (§2).
        store = ObjectStore(strict_method_namespace=True)
        store.declare_class("Person")
        store.declare_signature("Person", "Name", "String")
        with pytest.raises(SchemaError):
            store.create_object(Atom("Name"), ["Person"])


class TestLiteralClassification:
    def test_numbers(self):
        store = ObjectStore()
        assert store.catalogue.literal_class(Value(1)) == NUMERAL
        assert store.catalogue.literal_class(Value(1.5)) == NUMERAL

    def test_strings_and_booleans(self):
        store = ObjectStore()
        assert store.catalogue.literal_class(Value("x")) == STRING
        assert store.catalogue.literal_class(Value(False)) == BOOLEAN

    def test_nil(self):
        store = ObjectStore()
        assert store.catalogue.literal_class(NIL) == Atom("Nil")

    def test_plain_atoms_have_no_literal_class(self):
        store = ObjectStore()
        assert store.catalogue.literal_class(Atom("pam")) is None

    def test_implicit_classes_include_object(self):
        store = ObjectStore()
        implied = store.catalogue.implicit_classes(Value(3))
        assert Atom("Object") in implied and NUMERAL in implied
        assert store.catalogue.implicit_classes(Atom("pam")) == frozenset(
            {Atom("Object")}
        )

    def test_builtin_classes_under_object(self):
        store = ObjectStore()
        for builtin in (NUMERAL, STRING, BOOLEAN):
            assert store.hierarchy.is_subclass(builtin, Atom("Object"))
