"""Tests for the ObjectStore facade (paper §2)."""

import pytest

from repro.datamodel import ObjectStore, PythonMethod
from repro.datamodel.methods import UNDEFINED
from repro.errors import (
    ArityError,
    SchemaError,
    SignatureError,
    UnknownClassError,
)
from repro.oid import NIL, Atom, FuncOid, Value


@pytest.fixture
def store() -> ObjectStore:
    s = ObjectStore()
    s.declare_class("Person")
    s.declare_class("Employee", ["Person"])
    s.declare_signature("Person", "Name", "String")
    s.declare_signature("Person", "Age", "Numeral")
    s.declare_signature("Employee", "FamMembers", "Person", set_valued=True)
    return s


class TestInstances:
    def test_membership_closure(self, store):
        pam = store.create_object(Atom("pam"), ["Employee"])
        assert store.is_instance(pam, "Employee")
        assert store.is_instance(pam, "Person")
        assert store.is_instance(pam, "Object")

    def test_literals_belong_to_builtin_classes(self, store):
        assert store.is_instance(Value(20), "Numeral")
        assert store.is_instance(Value("hi"), "String")
        assert store.is_instance(Value(True), "Boolean")
        assert store.is_instance(NIL, "Nil")
        assert store.is_instance(Value(20), "Object")

    def test_extent_includes_subclasses(self, store):
        pam = store.create_object(Atom("pam"), ["Employee"])
        tom = store.create_object(Atom("tom"), ["Person"])
        assert store.extent("Person") == frozenset({pam, tom})
        assert store.extent("Person", direct=True) == frozenset({tom})

    def test_extent_of_unknown_class(self, store):
        with pytest.raises(UnknownClassError):
            store.extent("Nope")

    def test_literal_extent_is_active_domain(self, store):
        pam = store.create_object(Atom("pam"), ["Person"])
        store.set_attr(pam, "Age", 35)
        assert Value(35) in store.extent("Numeral")

    def test_remove_instance(self, store):
        pam = store.create_object(Atom("pam"), ["Employee"])
        store.remove_instance(pam, "Employee")
        assert not store.is_instance(pam, "Employee")

    def test_purge_object(self, store):
        pam = store.create_object(Atom("pam"), ["Employee"])
        store.set_attr(pam, "Name", "Pam")
        store.purge_object(pam)
        assert pam not in store.known_objects()
        assert pam not in store.extent("Employee")

    def test_class_atom_cannot_be_instance(self, store):
        with pytest.raises(SchemaError):
            store.create_object(Atom("Person"), ["Employee"])


class TestInvocation:
    def test_undefined_returns_empty(self, store):
        pam = store.create_object(Atom("pam"), ["Person"])
        assert store.invoke(pam, "Name") == frozenset()
        assert store.invoke_scalar(pam, "Name") is None

    def test_scalar_roundtrip(self, store):
        pam = store.create_object(Atom("pam"), ["Person"])
        store.set_attr(pam, "Name", "Pam")
        assert store.invoke_scalar(pam, "Name") == Value("Pam")

    def test_kinded_flags(self, store):
        pam = store.create_object(Atom("pam"), ["Employee"])
        store.set_attr(pam, "Name", "Pam")
        store.add_to_set(pam, "FamMembers", Atom("bob"))
        _, scalar_kind = store.invoke_kinded(pam, "Name")
        _, set_kind = store.invoke_kinded(pam, "FamMembers")
        assert not scalar_kind and set_kind

    def test_arrow_check_against_signature(self, store):
        pam = store.create_object(Atom("pam"), ["Employee"])
        with pytest.raises(SignatureError):
            store.set_attr(pam, "FamMembers", Atom("bob"))  # declared set
        with pytest.raises(SignatureError):
            store.add_to_set(pam, "Name", "Pam")  # declared scalar

    def test_python_method_arity_enforced(self, store):
        store.define_method(
            "Person",
            PythonMethod(name=Atom("Plus"), fn=lambda s, o, x: x, arity=1),
        )
        pam = store.create_object(Atom("pam"), ["Person"])
        with pytest.raises(ArityError):
            store.invoke(pam, "Plus")

    def test_python_method_undefined_result(self, store):
        store.define_method(
            "Person",
            PythonMethod(name=Atom("Maybe"), fn=lambda s, o: UNDEFINED),
        )
        pam = store.create_object(Atom("pam"), ["Person"])
        assert store.invoke(pam, "Maybe") == frozenset()

    def test_funcoid_objects_storeable(self, store):
        view_obj = FuncOid("V", (Atom("pam"),))
        store.create_object(view_obj, ["Person"])
        store.set_attr(view_obj, "Name", "viewed")
        assert store.invoke_scalar(view_obj, "Name") == Value("viewed")


class TestUniverses:
    def test_method_universe_contains_declared(self, store):
        assert Atom("Name") in store.method_universe()
        assert Atom("FamMembers") in store.method_universe()

    def test_class_universe(self, store):
        assert Atom("Person") in store.class_universe()
        assert Atom("Object") in store.class_universe()

    def test_individuals_exclude_classes(self, store):
        pam = store.create_object(Atom("pam"), ["Person"])
        individuals = store.individual_universe()
        assert pam in individuals
        assert Atom("Person") not in individuals

    def test_methods_defined_on(self, store):
        pam = store.create_object(Atom("pam"), ["Employee"])
        store.set_attr(pam, "Name", "Pam")
        store.set_attr(Atom("Person"), "Kind", "human")
        defined = store.methods_defined_on(pam)
        assert Atom("Name") in defined
        assert Atom("Kind") in defined  # inherited class default


class TestSignaturesApi:
    def test_declared_vs_inherited(self, store):
        own = store.declared_signatures("Employee")
        assert {s.method.name for s in own} == {"FamMembers"}
        inherited = store.signatures_of("Employee")
        assert {s.method.name for s in inherited} == {
            "FamMembers",
            "Name",
            "Age",
        }

    def test_all_type_exprs(self, store):
        exprs = store.all_type_exprs("Name")
        assert len(exprs) == 1
        assert exprs[0].scope == Atom("Person")

    def test_signature_unknown_class_rejected(self, store):
        with pytest.raises(UnknownClassError):
            store.declare_signature("Nope", "X", "String")
        with pytest.raises(UnknownClassError):
            store.declare_signature("Person", "X", "NoResult")

    def test_method_name_cannot_be_class(self, store):
        with pytest.raises(SchemaError):
            store.declare_signature("Person", "Employee", "String")


class TestRelations:
    def test_declare_insert_query(self, store):
        store.declare_relation("Likes", ["who", "what"])
        store.insert_tuple("Likes", [Atom("pam"), Value("jazz")])
        relation = store.relation("Likes")
        assert (Atom("pam"), Value("jazz")) in relation
        assert relation.column("what") == frozenset({Value("jazz")})

    def test_unknown_relation(self, store):
        with pytest.raises(UnknownClassError):
            store.relation("Nope")

    def test_describe_renders(self, store):
        pam = store.create_object(Atom("pam"), ["Employee"])
        store.set_attr(pam, "Name", "Pam")
        store.add_to_set(pam, "FamMembers", Atom("bob"))
        text = store.describe(pam)
        assert "Name -> 'Pam'" in text
        assert "FamMembers ->> {bob}" in text
