"""Tests for the IS-A class hierarchy (paper §2 "Classes")."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datamodel.hierarchy import OBJECT_CLASS, ClassHierarchy
from repro.errors import CyclicHierarchyError, UnknownClassError
from repro.oid import Atom


def build_diamond() -> ClassHierarchy:
    h = ClassHierarchy()
    h.add_class(Atom("A"))
    h.add_class(Atom("B"), [Atom("A")])
    h.add_class(Atom("C"), [Atom("A")])
    h.add_class(Atom("D"), [Atom("B"), Atom("C")])
    return h


class TestDeclaration:
    def test_default_parent_is_object(self):
        h = ClassHierarchy()
        h.add_class(Atom("Person"))
        assert h.is_subclass(Atom("Person"), OBJECT_CLASS)

    def test_redeclaration_adds_edges_only(self):
        h = ClassHierarchy()
        h.add_class(Atom("A"))
        h.add_class(Atom("B"))
        h.add_class(Atom("B"), [Atom("A")])
        assert h.is_subclass(Atom("B"), Atom("A"))

    def test_unknown_class_raises(self):
        h = ClassHierarchy()
        with pytest.raises(UnknownClassError):
            h.require(Atom("Nope"))

    def test_non_atom_rejected(self):
        h = ClassHierarchy()
        with pytest.raises(Exception):
            h.add_class("Person")  # type: ignore[arg-type]


class TestAcyclicity:
    def test_self_edge_rejected(self):
        h = ClassHierarchy()
        h.add_class(Atom("A"))
        with pytest.raises(CyclicHierarchyError):
            h.add_edge(Atom("A"), Atom("A"))

    def test_two_cycle_rejected(self):
        h = ClassHierarchy()
        h.add_class(Atom("A"))
        h.add_class(Atom("B"), [Atom("A")])
        with pytest.raises(CyclicHierarchyError):
            h.add_edge(Atom("A"), Atom("B"))

    def test_long_cycle_rejected(self):
        h = ClassHierarchy()
        h.add_class(Atom("A"))
        h.add_class(Atom("B"), [Atom("A")])
        h.add_class(Atom("C"), [Atom("B")])
        with pytest.raises(CyclicHierarchyError):
            h.add_edge(Atom("A"), Atom("C"))


class TestSubclassRelation:
    def test_strict_is_irreflexive(self):
        # "Cl subclassOf Cl is always false" (§3.1).
        h = build_diamond()
        assert not h.is_subclass(Atom("A"), Atom("A"), strict=True)
        assert h.is_subclass(Atom("A"), Atom("A"), strict=False)

    def test_transitive(self):
        h = build_diamond()
        assert h.is_subclass(Atom("D"), Atom("A"))

    def test_diamond_superclasses(self):
        h = build_diamond()
        assert h.superclasses(Atom("D")) == frozenset(
            {Atom("A"), Atom("B"), Atom("C"), OBJECT_CLASS}
        )

    def test_subclasses(self):
        h = build_diamond()
        assert h.subclasses(Atom("A")) == frozenset(
            {Atom("B"), Atom("C"), Atom("D")}
        )

    def test_unrelated_classes(self):
        h = build_diamond()
        assert not h.is_subclass(Atom("B"), Atom("C"))
        assert not h.is_subclass(Atom("C"), Atom("B"))


class TestSpecificityOrder:
    def test_subclass_before_superclass(self):
        h = build_diamond()
        order = h.specificity_order([Atom("A"), Atom("D"), Atom("B")])
        assert order.index(Atom("D")) < order.index(Atom("B"))
        assert order.index(Atom("B")) < order.index(Atom("A"))

    def test_incomparables_sorted_by_name(self):
        h = build_diamond()
        order = h.specificity_order([Atom("C"), Atom("B")])
        assert order == [Atom("B"), Atom("C")]


class TestClosureMemoization:
    def test_cache_invalidated_by_new_edges(self):
        h = build_diamond()
        assert Atom("A") in h.superclasses(Atom("D"))  # warm the cache
        h.add_class(Atom("E"))
        h.add_edge(Atom("A"), Atom("E"))
        assert Atom("E") in h.superclasses(Atom("D"))
        assert Atom("D") in h.subclasses(Atom("E"))

    def test_nonstrict_does_not_pollute_strict(self):
        h = build_diamond()
        nonstrict = h.superclasses(Atom("B"), strict=False)
        strict = h.superclasses(Atom("B"), strict=True)
        assert Atom("B") in nonstrict
        assert Atom("B") not in strict


class TestRangeReasoning:
    def test_common_descendants_diamond(self):
        h = build_diamond()
        assert Atom("D") in h.common_descendants([Atom("B"), Atom("C")])

    def test_disjoint_classes_not_joint(self):
        h = ClassHierarchy()
        h.add_class(Atom("Person"))
        h.add_class(Atom("Company"))
        assert not h.potentially_joint([Atom("Person"), Atom("Company")])

    def test_subclass_chain_joint(self):
        h = ClassHierarchy()
        h.add_class(Atom("Person"))
        h.add_class(Atom("Employee"), [Atom("Person")])
        assert h.potentially_joint([Atom("Person"), Atom("Employee")])

    def test_empty_set_joint(self):
        h = ClassHierarchy()
        assert h.potentially_joint([])


class TestTopological:
    def test_supers_before_subs(self):
        h = build_diamond()
        order = h.topological()
        assert order.index(Atom("A")) < order.index(Atom("B"))
        assert order.index(Atom("B")) < order.index(Atom("D"))
        assert order.index(OBJECT_CLASS) == 0

    def test_edges_listing(self):
        h = build_diamond()
        assert (Atom("D"), Atom("B")) in h.edges()
        assert (Atom("D"), Atom("C")) in h.edges()


@given(st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=40))
def test_random_edge_insertion_never_creates_cycles(edges):
    """Property: every accepted edge keeps the graph acyclic."""
    h = ClassHierarchy()
    for i in range(13):
        h.add_class(Atom(f"C{i}"))
    for sub, sup in edges:
        try:
            h.add_edge(Atom(f"C{sub}"), Atom(f"C{sup}"))
        except CyclicHierarchyError:
            continue
    # Transitivity + irreflexivity imply acyclicity of the strict order.
    for cls in h.classes():
        assert not h.is_subclass(cls, cls, strict=True)
        for sup in h.superclasses(cls):
            assert not h.is_subclass(sup, cls, strict=True) or not h.is_subclass(
                cls, sup, strict=True
            )
