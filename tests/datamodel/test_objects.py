"""Tests for tuple-object records and value cells (paper §2)."""

import pytest

from repro.datamodel.objects import ObjectRecord, ScalarCell, SetCell
from repro.errors import ArityError
from repro.oid import Atom, Value


@pytest.fixture
def record() -> ObjectRecord:
    return ObjectRecord(Atom("mary123"))


class TestScalarCells:
    def test_set_and_get(self, record):
        record.set_scalar(Atom("Age"), Value(35))
        cell = record.get(Atom("Age"))
        assert isinstance(cell, ScalarCell)
        assert cell.as_set() == frozenset({Value(35)})
        assert not cell.set_valued

    def test_overwrite(self, record):
        record.set_scalar(Atom("Age"), Value(35))
        record.set_scalar(Atom("Age"), Value(36))
        assert record.get(Atom("Age")).as_set() == frozenset({Value(36)})

    def test_scalar_cannot_become_set_member_target(self, record):
        record.set_scalar(Atom("Age"), Value(35))
        with pytest.raises(ArityError):
            record.add_to_set(Atom("Age"), Value(36))


class TestSetCells:
    def test_add_members(self, record):
        record.add_to_set(Atom("FamMembers"), Atom("bob"))
        record.add_to_set(Atom("FamMembers"), Atom("anna"))
        cell = record.get(Atom("FamMembers"))
        assert isinstance(cell, SetCell)
        assert cell.as_set() == frozenset({Atom("bob"), Atom("anna")})

    def test_remove_member(self, record):
        record.set_set(Atom("FamMembers"), frozenset({Atom("bob")}))
        record.remove_from_set(Atom("FamMembers"), Atom("bob"))
        assert record.get(Atom("FamMembers")).as_set() == frozenset()

    def test_remove_from_scalar_rejected(self, record):
        record.set_scalar(Atom("Age"), Value(35))
        with pytest.raises(ArityError):
            record.remove_from_set(Atom("Age"), Value(35))

    def test_set_cannot_be_assigned_scalar(self, record):
        record.add_to_set(Atom("FamMembers"), Atom("bob"))
        with pytest.raises(ArityError):
            record.set_scalar(Atom("FamMembers"), Atom("bob"))


class TestMethodArguments:
    def test_cells_keyed_by_arguments(self, record):
        # earns(proj) and earns(course) are distinct cells (§2 "Methods").
        record.set_scalar(Atom("earns"), Atom("pay1"), (Atom("proj"),))
        record.set_scalar(Atom("earns"), Atom("gradeA"), (Atom("course"),))
        assert record.get(Atom("earns"), (Atom("proj"),)).as_set() == frozenset(
            {Atom("pay1")}
        )
        assert record.get(Atom("earns"), (Atom("course"),)).as_set() == frozenset(
            {Atom("gradeA")}
        )
        assert record.get(Atom("earns")) is None


class TestUndefinedness:
    def test_absent_is_undefined(self, record):
        # Undefinedness is "analogous to the null value" — simply no cell.
        assert record.get(Atom("Age")) is None

    def test_unset_restores_undefined(self, record):
        record.set_scalar(Atom("Age"), Value(35))
        record.unset(Atom("Age"))
        assert record.get(Atom("Age")) is None

    def test_unset_missing_is_noop(self, record):
        record.unset(Atom("Age"))


class TestIntrospection:
    def test_defined_methods_deduplicated(self, record):
        record.set_scalar(Atom("earns"), Atom("p"), (Atom("a"),))
        record.set_scalar(Atom("earns"), Atom("q"), (Atom("b"),))
        record.set_scalar(Atom("Age"), Value(1))
        assert sorted(m.name for m in record.defined_methods()) == [
            "Age",
            "earns",
        ]

    def test_entries_iteration(self, record):
        record.set_scalar(Atom("Age"), Value(1))
        entries = list(record.entries())
        assert len(entries) == 1
        (method, args), cell = entries[0]
        assert method == Atom("Age") and args == ()
