"""Tests for inverted attribute indexes ([BERT89]-style)."""

import pytest

from repro.datamodel import ObjectStore, PythonMethod
from repro.oid import Atom, Value


@pytest.fixture
def store() -> ObjectStore:
    s = ObjectStore()
    s.declare_class("P")
    s.declare_class("Addr")
    s.declare_signature("P", "Residence", "Addr")
    s.declare_signature("P", "Knows", "P", set_valued=True)
    home = s.create_object(Atom("home"), ["Addr"])
    away = s.create_object(Atom("away"), ["Addr"])
    a = s.create_object(Atom("a"), ["P"])
    b = s.create_object(Atom("b"), ["P"])
    s.set_attr(a, "Residence", home)
    s.set_attr(b, "Residence", home)
    s.add_to_set(a, "Knows", b)
    return s


class TestMaintenance:
    def test_backfill_on_enable(self, store):
        store.enable_index("Residence")
        owners = store.lookup_by_value("Residence", Atom("home"))
        assert owners == frozenset({Atom("a"), Atom("b")})

    def test_incremental_scalar_update(self, store):
        store.enable_index("Residence")
        store.set_attr(Atom("a"), "Residence", Atom("away"))
        assert store.lookup_by_value("Residence", Atom("home")) == frozenset(
            {Atom("b")}
        )
        assert store.lookup_by_value("Residence", Atom("away")) == frozenset(
            {Atom("a")}
        )

    def test_set_membership_updates(self, store):
        store.enable_index("Knows")
        store.add_to_set(Atom("b"), "Knows", Atom("a"))
        assert store.lookup_by_value("Knows", Atom("a")) == frozenset(
            {Atom("b")}
        )
        store.set_attr_set(Atom("b"), "Knows", [])
        assert store.lookup_by_value("Knows", Atom("a")) == frozenset()

    def test_unset_removes_entries(self, store):
        store.enable_index("Residence")
        store.unset_attr(Atom("a"), "Residence")
        assert store.lookup_by_value("Residence", Atom("home")) == frozenset(
            {Atom("b")}
        )

    def test_purge_removes_owner(self, store):
        store.enable_index("Residence")
        store.purge_object(Atom("a"))
        assert store.lookup_by_value("Residence", Atom("home")) == frozenset(
            {Atom("b")}
        )

    def test_disable(self, store):
        store.enable_index("Residence")
        store.disable_index("Residence")
        assert store.lookup_by_value("Residence", Atom("home")) is None


class TestCompleteness:
    def test_no_index_means_no_answer(self, store):
        assert store.lookup_by_value("Residence", Atom("home")) is None

    def test_class_default_disables_reverse_lookup(self, store):
        # A class-level default can give instances values with no own
        # cell — the index must refuse rather than answer incompletely.
        store.enable_index("Residence")
        store.set_attr(Atom("P"), "Residence", Atom("away"))
        assert store.lookup_by_value("Residence", Atom("home")) is None

    def test_computed_method_disables_reverse_lookup(self, store):
        store.enable_index("Residence")
        store.define_method(
            "P",
            PythonMethod(name=Atom("Residence"), fn=lambda s, o: Atom("home")),
        )
        assert store.lookup_by_value("Residence", Atom("home")) is None

    def test_args_distinguish_cells(self, store):
        store.declare_class("Sem")
        sem = store.create_object(Atom("f95"), ["Sem"])
        store.set_attr(Atom("a"), "Works", Value(10), args=[sem])
        store.enable_index("Works")
        assert store.lookup_by_value(
            "Works", Value(10), args=[sem]
        ) == frozenset({Atom("a")})
        assert store.lookup_by_value("Works", Value(10), args=[]) == frozenset()


class TestQueryIntegration:
    def test_indexed_and_scan_answers_agree(self, paper_session):
        query = "SELECT X WHERE X.Residence[addr_austin]"
        scan = paper_session.query(query)
        paper_session.store.enable_index("Residence")
        indexed = paper_session.query(query)
        assert indexed.rows() == scan.rows()
        assert paper_session.store.index_stats()["hits"] > 0

    def test_index_not_used_for_unbound_selector(self, paper_session):
        paper_session.store.enable_index("Residence")
        hits_before = paper_session.store.index_stats()["hits"]
        paper_session.query("SELECT Y FROM Person X WHERE X.Residence[Y]")
        assert paper_session.store.index_stats()["hits"] == hits_before

    def test_index_used_after_selector_bound_elsewhere(self, paper_session):
        paper_session.store.enable_index("Residence")
        query = (
            "SELECT X FROM Address Y "
            "WHERE Y.City['newyork'] and X.Residence[Y]"
        )
        indexed = paper_session.query(query)
        paper_session.store.disable_index("Residence")
        scan = paper_session.query(query)
        assert indexed.rows() == scan.rows()
        assert len(indexed) > 0
