"""Unit tests for the MVCC version layer (versions.py).

Covers the Version value type, pin/unpin lifecycle and chain GC, the
copy-on-write pre-image families (cells, memberships, known set,
relations, schema), and the read-only StoreView surface.
"""

import pytest

from repro.datamodel import ObjectStore
from repro.datamodel.versions import StoreView, Version
from repro.errors import (
    SnapshotReadOnlyError,
    UnknownClassError,
)
from repro.oid import Atom, Value


ANN = Atom("ann")


def seeded_store() -> ObjectStore:
    store = ObjectStore()
    store.declare_class("Person")
    store.declare_class("Employee", ["Person"])
    store.declare_signature("Person", "Name", "String")
    store.declare_signature("Person", "Age", "Numeral")
    store.declare_signature("Employee", "Salary", "Numeral")
    store.create_object(ANN, ["Employee"])
    store.set_attr(ANN, "Name", "Ann")
    store.set_attr(ANN, "Age", 30)
    return store


class TestVersion:
    def test_version_is_a_value(self):
        assert Version(3, 1, 2) == Version(3, 1, 2)
        assert Version(3, 1, 2) != Version(4, 1, 2)
        assert str(Version(3, 1, 2)) == "v3(schema=1, data=2)"

    def test_component_comparisons(self):
        a = Version(3, 1, 2)
        assert a.same_schema(Version(9, 1, 7))
        assert not a.same_schema(Version(9, 2, 2))
        assert a.same_data(Version(9, 5, 2))
        assert not a.same_data(Version(9, 1, 3))

    def test_every_mutator_advances_the_ticket(self):
        store = seeded_store()
        before = store.version.ticket
        store.set_attr(ANN, "Age", 31)
        assert store.version.ticket > before

    def test_ticket_catches_relation_inserts(self):
        # insert_tuple bumps neither generation counter; the ticket is
        # what makes relation churn visible to version comparisons.
        store = seeded_store()
        store.declare_relation("Likes", ["who", "what"])
        before = store.version
        store.insert_tuple("Likes", [Atom("ann"), Value("jazz")])
        after = store.version
        assert after.ticket > before.ticket
        assert after != before

    def test_read_path_discovery_does_not_advance(self):
        store = seeded_store()
        before = store.version.ticket
        store.invoke_kinded(Atom("ann"), Atom("Age"))
        store.extent("Person")
        assert store.version.ticket == before


class TestPinLifecycle:
    def test_no_pins_means_no_recording(self):
        store = seeded_store()
        store.set_attr(ANN, "Age", 31)
        status = store.version_status()
        assert status["pins"] == 0
        assert status["cell_chain_entries"] == 0

    def test_chains_grow_only_while_pinned(self):
        store = seeded_store()
        pin = store.pin()
        store.set_attr(ANN, "Age", 31)
        assert store.version_status()["cell_chain_entries"] == 1
        pin.release()
        assert store.version_status()["cell_chain_entries"] == 0

    def test_release_is_idempotent(self):
        store = seeded_store()
        pin = store.pin()
        pin.release()
        pin.release()
        assert store.version_status()["pins"] == 0

    def test_skip_append_bounds_chain_growth(self):
        # One pin era -> at most one chain entry per key, however many
        # times the key is rewritten.
        store = seeded_store()
        with store.pin():
            for age in range(31, 60):
                store.set_attr(ANN, "Age", age)
            assert store.version_status()["cell_chain_entries"] == 1

    def test_gc_keeps_entries_for_surviving_pins(self):
        store = seeded_store()
        old = store.pin()
        store.set_attr(ANN, "Age", 31)
        young = store.pin()
        store.set_attr(ANN, "Age", 32)
        young.release()
        # The old pin still needs both pre-images (31's chain entry is
        # above its floor); releasing it drops everything.
        assert store.version_status()["cell_chain_entries"] >= 1
        old.release()
        assert store.version_status()["cell_chain_entries"] == 0


class TestSnapshotReads:
    def test_scalar_pre_image(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            store.set_attr(ANN, "Age", 99)
            assert view.invoke(Atom("ann"), Atom("Age")) == {Value(30)}
            assert store.invoke(Atom("ann"), Atom("Age")) == {Value(99)}

    def test_unset_resurfaces_in_snapshot(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            store.unset_attr(ANN, "Age")
            assert view.invoke(Atom("ann"), Atom("Age")) == {Value(30)}

    def test_post_pin_object_is_invisible(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            store.create_object(Atom("bob"), ["Person"])
            assert Atom("bob") not in view.known_objects()
            assert Atom("bob") not in view.extent("Person")
            assert Atom("bob") in store.extent("Person")

    def test_membership_pre_image(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            store.remove_instance(ANN, "Employee")
            assert Atom("ann") in view.extent("Employee")
            assert Atom("ann") not in store.extent("Employee")

    def test_purge_pre_image_is_complete(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            store.purge_object(ANN)
            assert Atom("ann") in view.extent("Person")
            assert view.invoke(Atom("ann"), Atom("Name")) == {Value("Ann")}
            assert Atom("ann") not in store.known_objects()

    def test_relation_pre_image(self):
        store = seeded_store()
        store.declare_relation("Likes", ["who", "what"])
        store.insert_tuple("Likes", [Atom("ann"), Value("jazz")])
        with store.snapshot_view() as view:
            store.insert_tuple("Likes", [Atom("ann"), Value("rock")])
            assert len(view.relation("Likes")) == 1
            assert len(store.relation("Likes")) == 2

    def test_post_pin_relation_is_absent(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            store.declare_relation("Hates", ["who", "what"])
            with pytest.raises(UnknownClassError):
                view.relation("Hates")

    def test_post_pin_ddl_is_invisible(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            store.declare_class("Robot")
            assert Atom("Robot") not in view.hierarchy
            assert Atom("Robot") in store.hierarchy

    def test_view_version_is_stable(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            pinned = view.version
            store.set_attr(ANN, "Age", 77)
            assert view.version == pinned
            assert store.version != pinned


class TestStoreViewSurface:
    def test_every_mutator_raises(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            for call in (
                lambda: view.declare_class("X"),
                lambda: view.declare_signature("Person", "Z", "String"),
                lambda: view.create_object("x", ["Person"]),
                lambda: view.add_instance(ANN, "Person"),
                lambda: view.remove_instance(ANN, "Employee"),
                lambda: view.purge_object(ANN),
                lambda: view.set_attr(ANN, "Age", 1),
                lambda: view.set_attr_set(ANN, "Age", [1]),
                lambda: view.add_to_set(ANN, "Age", 1),
                lambda: view.unset_attr(ANN, "Age"),
                lambda: view.enable_index("Age"),
                lambda: view.disable_index("Age"),
                lambda: view.declare_relation("R", ["a"]),
                lambda: view.insert_tuple("R", [Atom("x")]),
            ):
                with pytest.raises(SnapshotReadOnlyError):
                    call()

    def test_statistics_are_frozen(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            frozen = view.statistics.generation
            store.set_attr(ANN, "Age", 44)
            assert view.statistics.generation == frozen
            with pytest.raises(SnapshotReadOnlyError):
                view.statistics.note_schema_change()

    def test_indexes_never_claim_completeness(self):
        store = seeded_store()
        store.enable_index("Name")
        with store.snapshot_view() as view:
            assert store.index_is_complete_for(Atom("Name"))
            assert not view.index_is_complete_for(Atom("Name"))
            # The forward-evaluation fallback still answers correctly.
            assert Value("Ann") in view.invoke(Atom("ann"), Atom("Name"))

    def test_at_requires_matching_pin(self):
        store = seeded_store()
        pin = store.pin()
        view = store.at(pin)
        assert isinstance(view, StoreView)
        view.release()

    def test_describe_reads_through_the_snapshot(self):
        store = seeded_store()
        with store.snapshot_view() as view:
            store.set_attr(ANN, "Name", "Renamed")
            assert "Ann" in view.describe(ANN)
