"""Tests for store serialization (save/load round-trips)."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datamodel import ObjectStore, PythonMethod
from repro.datamodel.serialize import (
    SerializationError,
    load_store,
    save_store,
    store_from_dict,
    store_to_dict,
)
from repro.oid import Atom, FuncOid, Value
from repro.workloads.generator import WorkloadConfig, generate_database
from tests.conftest import make_paper_session


def roundtrip(store: ObjectStore) -> ObjectStore:
    payload, _report = store_to_dict(store)
    # push through real JSON so only JSON-expressible state survives.
    return store_from_dict(json.loads(json.dumps(payload)))


class TestRoundTrip:
    def test_paper_database_roundtrips(self):
        original = make_paper_session().store
        loaded = roundtrip(original)
        assert loaded.known_objects() == original.known_objects()
        assert loaded.hierarchy.edges() == original.hierarchy.edges()
        for obj in sorted(original.extent("Person"), key=str):
            assert loaded.classes_of(obj) == original.classes_of(obj)
            assert loaded.invoke(obj, "Name") == original.invoke(obj, "Name")
            assert loaded.invoke(obj, "FamMembers") == original.invoke(
                obj, "FamMembers"
            )

    def test_queries_agree_after_roundtrip(self):
        from repro.xsql.session import Session

        session = make_paper_session()
        loaded = Session(roundtrip(session.store))
        for text in (
            "SELECT mary123.Residence.City",
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
            "SELECT #X WHERE TurboEngine subclassOf #X",
        ):
            assert loaded.query(text).rows() == session.query(text).rows()

    def test_signatures_preserved(self):
        original = make_paper_session().store
        loaded = roundtrip(original)
        sigs = loaded.signatures_of("Employee", "FamMembers")
        assert sigs and sigs[0].set_valued

    def test_funcoids_and_method_args_roundtrip(self):
        store = ObjectStore()
        store.declare_class("P")
        view_obj = FuncOid("V", (Atom("x"), Value(3)))
        store.create_object(view_obj, ["P"])
        store.set_attr(view_obj, "Score", 9, args=[Value(2000)])
        loaded = roundtrip(store)
        assert loaded.invoke(view_obj, "Score", [Value(2000)]) == frozenset(
            {Value(9)}
        )

    def test_relations_roundtrip(self):
        store = ObjectStore()
        store.declare_relation("Likes", ["who", "what"])
        store.insert_tuple("Likes", [Atom("a"), Value("jazz")])
        loaded = roundtrip(store)
        assert (Atom("a"), Value("jazz")) in loaded.relation("Likes")

    def test_resolutions_roundtrip(self):
        store = ObjectStore()
        store.declare_class("A")
        store.declare_class("B")
        store.declare_class("C", ["A", "B"])
        store.set_attr(Atom("A"), "X", 1)
        store.set_attr(Atom("B"), "X", 2)
        store.resolve_inheritance("C", "X", "B")
        obj = store.create_object(Atom("o"), ["C"])
        loaded = roundtrip(store)
        assert loaded.invoke(Atom("o"), "X") == frozenset({Value(2)})

    def test_indexes_rebuilt(self):
        store = make_paper_session().store
        store.enable_index("Residence")
        loaded = roundtrip(store)
        owners = loaded.lookup_by_value("Residence", Atom("addr_austin"))
        assert owners == store.lookup_by_value(
            "Residence", Atom("addr_austin")
        )

    def test_options_preserved(self):
        store = ObjectStore(strict_method_namespace=True, validate_values=True)
        loaded = roundtrip(store)
        assert loaded.catalogue.strict_method_namespace
        assert loaded.validate_values


class TestReportAndErrors:
    def test_report_counts(self):
        store = make_paper_session().store
        _payload, report = store_to_dict(store)
        assert report.objects > 30
        assert report.cells > 80
        assert report.classes >= 16

    def test_implementations_reported_skipped(self):
        store = ObjectStore()
        store.declare_class("P")
        store.define_method(
            "P", PythonMethod(name=Atom("M"), fn=lambda s, o: Value(1))
        )
        _payload, report = store_to_dict(store)
        assert any("implementation" in entry for entry in report.skipped)

    def test_bad_format_rejected(self):
        with pytest.raises(SerializationError):
            store_from_dict({"format": "something-else"})

    def test_bad_version_rejected(self):
        with pytest.raises(SerializationError):
            store_from_dict({"format": "xsql-store", "version": 99})

    def test_file_roundtrip(self, tmp_path):
        store = make_paper_session().store
        path = str(tmp_path / "db.json")
        report = save_store(store, path)
        assert report.objects > 0
        loaded = load_store(path)
        assert loaded.known_objects() == store.known_objects()


@given(seed=st.integers(0, 2000), n_people=st.integers(1, 25))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_synthetic_roundtrip_property(seed, n_people):
    """Property: any generated database survives JSON round-tripping."""
    original = generate_database(
        WorkloadConfig(n_people=n_people, seed=seed)
    )
    loaded = roundtrip(original)
    assert loaded.known_objects() == original.known_objects()
    for obj in sorted(original.extent("Employee"), key=str):
        assert loaded.invoke(obj, "Salary") == original.invoke(obj, "Salary")
