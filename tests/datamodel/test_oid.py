"""Tests for logical object ids and id-terms (paper §2, §4.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.oid import (
    NIL,
    Atom,
    FuncOid,
    Value,
    Variable,
    VarSort,
    is_ground,
    oid,
    substitute,
    term_sort_key,
    variables_of,
)


class TestAtoms:
    def test_equality_by_name(self):
        assert Atom("mary123") == Atom("mary123")
        assert Atom("mary123") != Atom("john13")

    def test_str(self):
        assert str(Atom("secretary")) == "secretary"

    def test_hashable(self):
        assert len({Atom("a"), Atom("a"), Atom("b")}) == 2


class TestValues:
    def test_numeric_literal(self):
        assert str(Value(20)) == "20"

    def test_string_literal_quoted(self):
        assert str(Value("Ford Motor Co.")) == "'Ford Motor Co.'"

    def test_string_and_atom_are_distinct_objects(self):
        # 'Ford' (a string object) is not the symbolic oid Ford.
        assert Value("Ford") != Atom("Ford")

    def test_rejects_non_scalar_payload(self):
        with pytest.raises(TypeError):
            Value([1, 2])  # type: ignore[arg-type]

    def test_bool_payload_allowed(self):
        assert Value(True).value is True


class TestFuncOids:
    def test_id_function_application(self):
        term = FuncOid("secretary", (Atom("dept77"),))
        assert str(term) == "secretary(dept77)"

    def test_nested(self):
        inner = FuncOid("f", (Value(1),))
        outer = FuncOid("g", (inner, Atom("a")))
        assert str(outer) == "g(f(1), a)"

    def test_equality_is_structural(self):
        a = FuncOid("f", (Atom("x"), Value(2)))
        b = FuncOid("f", (Atom("x"), Value(2)))
        assert a == b and hash(a) == hash(b)

    def test_rejects_variable_arguments(self):
        with pytest.raises(TypeError):
            FuncOid("f", (Variable("X"),))  # type: ignore[arg-type]


class TestVariables:
    def test_sorts_render_with_paper_prefixes(self):
        assert str(Variable("X")) == "X"
        assert str(Variable("X", VarSort.CLASS)) == "#X"
        assert str(Variable("Y", VarSort.METHOD)) == '"Y'
        assert str(Variable("Y", VarSort.PATH)) == "*Y"

    def test_same_name_different_sort_distinct(self):
        assert Variable("X") != Variable("X", VarSort.CLASS)


class TestHelpers:
    def test_oid_coercion(self):
        assert oid(20) == Value(20)
        assert oid("newyork") == Value("newyork")
        assert oid(Atom("a")) == Atom("a")

    def test_is_ground(self):
        assert is_ground(Atom("a"))
        assert is_ground(NIL)
        assert not is_ground(Variable("X"))

    def test_substitute(self):
        var = Variable("X")
        assert substitute(var, {var: Atom("a")}) == Atom("a")
        assert substitute(var, {}) == var
        assert substitute(Atom("b"), {var: Atom("a")}) == Atom("b")

    def test_variables_of(self):
        assert list(variables_of(Variable("X"))) == [Variable("X")]
        assert list(variables_of(Atom("a"))) == []


class TestSortKey:
    def test_values_before_atoms_before_funcs(self):
        ordered = sorted(
            [FuncOid("f", ()), Atom("a"), Value(1)], key=term_sort_key
        )
        assert ordered == [Value(1), Atom("a"), FuncOid("f", ())]

    def test_numbers_before_strings(self):
        assert term_sort_key(Value(99)) < term_sort_key(Value("a"))

    @given(st.integers(), st.integers())
    def test_numeric_order_matches_python(self, a, b):
        ka, kb = term_sort_key(Value(a)), term_sort_key(Value(b))
        assert (ka < kb) == (a < b)

    @given(st.text(max_size=10), st.text(max_size=10))
    def test_atom_order_matches_name_order(self, a, b):
        ka, kb = term_sort_key(Atom(a)), term_sort_key(Atom(b))
        assert (ka < kb) == (a < b)

    @given(
        st.lists(
            st.one_of(
                st.integers().map(Value),
                st.text(max_size=6).map(Atom),
                st.text(max_size=6).map(Value),
            ),
            max_size=20,
        )
    )
    def test_total_order_is_stable(self, terms):
        once = sorted(terms, key=term_sort_key)
        twice = sorted(once, key=term_sort_key)
        assert once == twice
