"""Quote-driven tests for the §2 data-model claims.

Each test pins one sentence of the paper's data-model review to observable
behaviour of the implementation.
"""

import pytest

from repro import Session
from repro.datamodel import ObjectStore
from repro.oid import Atom, FuncOid, Value
from tests.conftest import names


class TestObjectsAndIdentity:
    def test_literals_carry_their_usual_properties(self):
        # "'20' [is] a logical id of the abstract object with the usual
        # properties of the number 20."
        store = ObjectStore()
        assert store.is_instance(Value(20), "Numeral")
        from repro.xsql.comparisons import element_compare

        assert element_compare("<", Value(20), Value(21))

    def test_multiple_logical_oids_may_denote_one_object(self):
        # "_mary65 and secretary(dept77) may refer to the same object" —
        # aliasing is conceptual; the store does not force uniqueness of
        # ids, so both ids can coexist and be given the same description.
        store = ObjectStore()
        store.declare_class("P")
        direct = store.create_object(Atom("mary65"), ["P"])
        via_fn = store.create_object(
            FuncOid("secretary", (Atom("dept77"),)), ["P"]
        )
        store.set_attr(direct, "Name", "Mary")
        store.set_attr(via_fn, "Name", "Mary")
        assert store.invoke(direct, "Name") == store.invoke(via_fn, "Name")

    def test_id_functions_supply_fresh_ids(self):
        # "use explicit id-functions ... to get our hands on a sufficient
        # supply of such ids."
        a = FuncOid("f", (Atom("x"),))
        b = FuncOid("f", (Atom("y"),))
        c = FuncOid("g", (Atom("x"),))
        assert len({a, b, c}) == 3


class TestAttributes:
    def test_undefined_is_not_inapplicable(self, nobel_session):
        # "undefinedness does not imply inapplicability."
        store = nobel_session.store
        curie = store.create_object(Atom("curie2"), ["Scientist"])
        # undefined: no value...
        assert store.invoke(curie, "WonNobelPrize") == frozenset()
        # ...yet applicable: a Scientist signature covers it.
        result = nobel_session.query(
            "SELECT M WHERE M applicableTo curie2"
        )
        assert "WonNobelPrize" in names(result)

    def test_set_objects_are_single_attribute_tuple_objects(self):
        # "Set-objects are described in our model as tuple-objects having
        # a single, set-valued attribute."
        store = ObjectStore()
        store.declare_class("Bag")
        bag = store.create_object(Atom("bag1"), ["Bag"])
        store.set_attr_set(bag, "Members", [Value(1), Value(2)])
        record = next(
            r for r in store.iter_records() if r.oid == bag
        )
        assert [m.name for m in record.defined_methods()] == ["Members"]

    def test_nested_sets_via_intermediate_objects(self):
        # "modeling sets of arbitrary nesting depth becomes quite easy."
        store = ObjectStore()
        store.declare_class("Bag")
        inner = store.create_object(Atom("inner"), ["Bag"])
        store.set_attr_set(inner, "Members", [Value(1)])
        outer = store.create_object(Atom("outer"), ["Bag"])
        store.set_attr_set(outer, "Members", [inner])
        session = Session(store)
        flattened = session.query("SELECT outer.Members.Members")
        assert flattened.scalars() == [1]


class TestClasses:
    def test_membership_does_not_create_subclassing(self):
        # "if at some point the only students registered in the database
        # are teaching assistants, this does not make the class Student a
        # subclass of the class TA."
        store = ObjectStore()
        store.declare_class("Student")
        store.declare_class("TA", ["Student"])
        store.create_object(Atom("s1"), ["TA"])  # the only student is a TA
        assert not store.hierarchy.is_subclass(Atom("Student"), Atom("TA"))
        assert store.extent("Student") == store.extent("TA")

    def test_classes_are_queryable_objects(self):
        # "classes are also objects. They can have attributes just like
        # regular objects and can be queried as regular objects."
        store = ObjectStore()
        store.declare_class("Engines")
        store.set_attr(Atom("Engines"), "Curator", "smith")
        session = Session(store)
        result = session.query("SELECT Engines.Curator")
        assert result.scalars() == ["smith"]

    def test_no_metaclasses_needed(self):
        # "Representing classes as objects ... eliminates the need for
        # metaclasses" — class variables range over classes directly.
        session = Session()
        session.store.declare_class("A")
        session.store.declare_class("B", ["A"])
        result = session.query("SELECT #X WHERE B subclassOf #X")
        assert names(result) == ["A", "Object"]


class TestMethods:
    def test_attributes_are_zero_ary_methods(self):
        # "we do not really distinguish between methods and attributes
        # and simply view the latter as 0-ary methods."
        store = ObjectStore()
        store.declare_class("P")
        obj = store.create_object(Atom("o"), ["P"])
        store.set_attr(obj, "Name", "N")  # stored under (Name, ())
        assert store.invoke(obj, "Name", []) == frozenset({Value("N")})

    def test_method_names_returned_as_answers(self, shared_paper_session):
        # "method names are logical oids and therefore can be returned as
        # query answers, which is useful for schema exploration."
        result = shared_paper_session.query(
            "SELECT M WHERE uniSQL.M[kim]"
        )
        assert names(result) == ["President"]

    def test_methods_partial_functions(self, university_session):
        # "Being a partial function, a method ... may have no value for
        # some arguments."
        store = university_session.store
        assert store.invoke(
            Atom("hal"), "earns", [Atom("proj1")]
        ) != frozenset()
        assert store.invoke(
            Atom("hal"), "earns", [Atom("cse305")]
        ) == frozenset()


class TestRelationsFirstClass:
    def test_symmetric_relationship_as_relation(self):
        # "Relations are more convenient ... when a symmetric binary
        # relationship between [objects] is called for."
        session = Session()
        session.store.declare_class("P")
        for name in ("a", "b"):
            session.store.create_object(Atom(name), ["P"])
        session.execute("CREATE RELATION Sibling (x, y)")
        session.execute("INSERT INTO Sibling VALUES (a, b), (b, a)")
        forward = session.query("SELECT Y WHERE Sibling(a, Y)")
        backward = session.query("SELECT Y WHERE Sibling(Y, a)")
        assert names(forward) == names(backward) == ["b"]
