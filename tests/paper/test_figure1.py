"""Integrity of the Figure 1 schema as built by the library."""

from repro.datamodel import ObjectStore
from repro.oid import Atom
from repro.schema.figure1 import FIGURE1_CLASSES, build_figure1_schema


def test_all_classes_declared():
    store = build_figure1_schema(ObjectStore())
    for name in FIGURE1_CLASSES:
        assert Atom(name) in store.class_universe(), name


def test_isa_hierarchy_matches_figure():
    store = build_figure1_schema(ObjectStore())
    h = store.hierarchy
    expectations = [
        ("Motorbike", "Vehicle"),
        ("Bicycle", "Vehicle"),
        ("Automobile", "Vehicle"),
        ("Employee", "Person"),
        ("TwoStrokeEngine", "PistonEngine"),
        ("FourStrokeEngine", "PistonEngine"),
        ("TurboEngine", "FourStrokeEngine"),
        ("DieselEngine", "FourStrokeEngine"),
        ("TurboEngine", "PistonEngine"),  # transitive
    ]
    for sub, sup in expectations:
        assert h.is_subclass(Atom(sub), Atom(sup)), (sub, sup)
    # the figure has no Engine superclass between PistonEngine and Object:
    # query (4)'s stated answer {FourStrokeEngine, PistonEngine, Object}
    # depends on this.
    assert h.superclasses(Atom("TurboEngine")) == frozenset(
        {Atom("FourStrokeEngine"), Atom("PistonEngine"), Atom("Object")}
    )


def test_set_valued_attributes_starred_in_figure():
    store = build_figure1_schema(ObjectStore())
    starred = [
        ("Person", "OwnedVehicles"),
        ("Employee", "Qualifications"),
        ("Employee", "FamMembers"),
        ("Company", "Divisions"),
        ("Division", "Employees"),
    ]
    for cls, attr in starred:
        sigs = store.signatures_of(cls, attr)
        assert sigs and all(s.set_valued for s in sigs), (cls, attr)
    scalar = [
        ("Person", "Residence"),
        ("Vehicle", "Manufacturer"),
        ("Division", "Manager"),
        ("Company", "President"),
    ]
    for cls, attr in scalar:
        sigs = store.signatures_of(cls, attr)
        assert sigs and not any(s.set_valued for s in sigs), (cls, attr)


def test_aggregation_domains():
    store = build_figure1_schema(ObjectStore())
    domains = {
        ("Vehicle", "Manufacturer"): "Company",
        ("Vehicle", "Drivetrain"): "VehicleDrivetrain",
        ("VehicleDrivetrain", "Engine"): "PistonEngine",
        ("Automobile", "Body"): "AutoBody",
        ("Person", "Residence"): "Address",
        ("Company", "Divisions"): "Division",
        ("Division", "Manager"): "Employee",
    }
    for (cls, attr), result in domains.items():
        sigs = store.declared_signatures(cls, attr)
        assert sigs and sigs[0].result == Atom(result), (cls, attr)


def test_footnote9_attributes_present():
    store = build_figure1_schema(ObjectStore())
    assert store.signatures_of("Company", "Retirees")
    assert store.signatures_of("Employee", "Dependents")


def test_idempotent_build():
    store = ObjectStore()
    build_figure1_schema(store)
    build_figure1_schema(store)  # no duplicate-edge/cycle errors
    assert len(store.signatures_of("Employee", "FamMembers")) == 1
