"""Every worked example of the paper, end to end.

Each test carries the paper locus it reproduces; answers asserted here are
either stated in the paper's text or follow from the reconstructed
instance database (see ``repro.workloads.paper_db``).
"""

import pytest

from repro.errors import IllDefinedQueryError
from repro.oid import NIL, Atom, FuncOid, Value
from tests.conftest import names


class TestSection31PathExpressions:
    def test_expression_1_residence_city(self, shared_paper_session):
        # (1) mary123.Residence.City
        result = shared_paper_session.query("SELECT mary123.Residence.City")
        assert result.scalars() == ["newyork"]

    def test_type_error_path_is_empty(self, shared_paper_session):
        # "mary123.Residence.Salary ... is a type error" — under the
        # metalogical reading it simply describes no paths.
        result = shared_paper_session.query(
            "SELECT mary123.Residence.Salary"
        )
        assert len(result) == 0

    def test_president_family_names(self, shared_paper_session):
        # uniSQL.President.FamlMembers.Name — several satisfying paths.
        result = shared_paper_session.query(
            "SELECT uniSQL.President.FamMembers.Name"
        )
        assert result.scalars() == ["Lee", "Sue"]

    def test_selector_query_newyork(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']"
        )
        assert names(result) == ["addr_ny1", "addr_ny2"]

    def test_intermediate_vselector_restricts_class(self, shared_paper_session):
        # "the purpose of the variable Y is to restrict the search through
        # employee-owned vehicles to just automobiles" — mary's motorbike
        # engine is excluded both by FROM Employee and FROM Automobile.
        result = shared_paper_session.query(
            "SELECT Z FROM Employee X, Automobile Y "
            "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]"
        )
        assert names(result) == ["eng_diesel", "eng_four", "eng_turbo"]

    def test_query_3_schema_browsing(self, shared_paper_session):
        # (3): which attribute connects a Person to newyork?
        result = shared_paper_session.query(
            "SELECT Y FROM Person X WHERE X.Y.City['newyork']"
        )
        assert names(result) == ["Residence"]

    def test_query_3_without_selector_is_weaker(self, shared_paper_session):
        # "if the selector ['newyork'] were omitted ... the above query
        # would have (potentially) returned more attributes".
        with_selector = shared_paper_session.query(
            "SELECT Y FROM Person X WHERE X.Y.City['austin']"
        )
        without = shared_paper_session.query(
            "SELECT Y FROM Person X WHERE X.Y.City"
        )
        assert set(names(with_selector)) <= set(names(without))

    def test_query_4_subclassOf(self, shared_paper_session):
        # (4): the paper states the answer exactly.
        result = shared_paper_session.query(
            "SELECT #X WHERE TurboEngine subclassOf #X"
        )
        assert names(result) == ["FourStrokeEngine", "Object", "PistonEngine"]

    def test_subclassOf_is_strict(self, shared_paper_session):
        # "Cl subclassOf Cl is always false".
        result = shared_paper_session.query(
            "SELECT #X WHERE #X subclassOf #X"
        )
        assert len(result) == 0

    def test_template_class_of_individuals(self, shared_paper_session):
        # the §3.1 closing template: classes of individuals satisfying a
        # condition.
        result = shared_paper_session.query(
            "SELECT #X FROM #X Y WHERE Y.CylinderN[6]"
        )
        assert "TurboEngine" in names(result)

    def test_path_variable_extension(self, shared_paper_session):
        # "we could then replace the path expression in (3) by
        # X.*Y.City['newyork']".
        result = shared_paper_session.query(
            "SELECT X FROM Person X WHERE X.*Y.City['newyork']"
        )
        assert "mary123" in names(result)
        assert "ben" in names(result)


class TestSection32Comparisons:
    def test_john_family_some_over_20(self, shared_paper_session):
        # _john13.FamMembers.Age some> 20 is true (Anna is 22).
        result = shared_paper_session.query(
            "SELECT X WHERE john13.FamMembers.Age some> 20"
        )
        assert len(result) > 0

    def test_employees_with_adult_family(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"
        )
        assert names(result) == ["john13", "kim"]

    def test_blue_and_red_young_president(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] "
            "and X.President.OwnedVehicles.Color containsEq "
            "{'blue', 'red'} and X.President.Age < 30"
        )
        assert names(result) == ["uniSQL"]

    def test_range_inferred_without_from(self, shared_paper_session):
        # "it is not necessary to define the range of X since it can be
        # inferred from the path expression".
        result = shared_paper_session.query(
            "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X]"
        )
        assert set(names(result)) == {"uniSQL", "acme"}

    def test_same_city_all(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Employee X WHERE count(X.FamMembers) > 0 and "
            "X.Residence.City =all X.FamMembers.Residence.City"
        )
        assert names(result) == ["ben", "john13", "kim"]

    def test_all_less_than_all(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT Y, X FROM Employee Y, Employee X "
            "WHERE count(Y.FamMembers) > 0 and count(X.FamMembers) > 0 "
            "and Y.FamMembers.Age all<all X.FamMembers.Age"
        )
        assert [(str(a), str(b)) for a, b in result.rows()] == [
            ("ben", "john13")
        ]

    def test_aggregate_query(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
            "and X.Residence =all X.FamMembers.Residence "
            "and X.Salary < 35000"
        )
        assert names(result) == ["ben"]


class TestSection33Relations:
    def test_query_5_company_salary_relation(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X.Name, W.Salary FROM Company X "
            "WHERE X.Divisions.Employees[W]"
        )
        rows = {(str(a), str(b)) for a, b in result.rows()}
        assert ("'UniSQL'", "30000") in rows
        assert ("'Acme'", "250000") in rows
        assert len(rows) == 5  # ben and john13 share (UniSQL, 30000)

    def test_query_6_explicit_join(self, shared_paper_session):
        result = shared_paper_session.query(
            "SELECT X, Y FROM Company X "
            "WHERE X.Name =some X.Divisions.Employees[Y].Name"
        )
        assert [(str(a), str(b)) for a, b in result.rows()] == [
            ("acme", "acmeEmp")
        ]

    def test_union_minus(self, shared_paper_session):
        employees = shared_paper_session.query("SELECT X FROM Employee X")
        non_employees = shared_paper_session.query(
            "SELECT X FROM Person X MINUS SELECT X FROM Employee X"
        )
        assert len(non_employees) > 0
        assert not (employees.rows() & non_employees.rows())


class TestSection41Creation:
    def test_emp_salary_per_pair(self, paper_session):
        result = paper_session.execute(
            "SELECT EmpSalary = W.Salary FROM Company X "
            "OID FUNCTION OF X, W WHERE X.Divisions.Employees[W]"
        )
        assert len(result.created) == 6

    def test_ill_defined_query_detected(self, paper_session):
        with pytest.raises(IllDefinedQueryError):
            paper_session.execute(
                "SELECT CompName = X.Name, EmpSalary = W.Salary "
                "FROM Company X OID FUNCTION OF X "
                "WHERE X.Divisions.Employees[W]"
            )

    def test_query_7_company_rosters(self, paper_session):
        result = paper_session.execute(
            "SELECT CompName = Y.Name, Employees = Y.Divisions.Employees "
            "FROM Company Y OID FUNCTION OF Y"
        )
        store = paper_session.store
        created = {str(o): o for o in result.created}
        uni = next(o for s, o in created.items() if "uniSQL" in s)
        assert store.invoke(uni, "Employees") == frozenset(
            {Atom("john13"), Atom("ben"), Atom("rich")}
        )

    def test_query_8_beneficiaries(self, paper_session):
        result = paper_session.execute(
            "SELECT CompName = Y.Name, Beneficiaries = {W} "
            "FROM Company Y OID FUNCTION OF Y "
            "WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]"
        )
        store = paper_session.store
        (uni,) = result.created  # acme has no beneficiaries
        assert store.invoke(uni, "Beneficiaries") == frozenset(
            {Atom("ret1"), Atom("bob"), Atom("benfam1")}
        )


class TestSection42Views:
    VIEW = (
        "CREATE VIEW CompSalaries AS SUBCLASS OF Object "
        "SIGNATURE CompName = String, DivName = String, Salary = Numeral "
        "SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary "
        "FROM Company X OID FUNCTION OF X, W "
        "WHERE X.Divisions[Y].Employees[W]"
    )

    def test_query_9_view_creation(self, paper_session):
        paper_session.execute(self.VIEW)
        assert len(paper_session.store.extent("CompSalaries")) == 6

    def test_query_10_view_in_query(self, paper_session):
        paper_session.execute(self.VIEW)
        result = paper_session.query(
            "SELECT X.Manufacturer.Name FROM Automobile X, Employee W "
            "WHERE CompSalaries(X.Manufacturer, W).Salary > 35000"
        )
        assert sorted(result.scalars()) == ["Acme", "UniSQL"]

    def test_view_update_translation(self, paper_session):
        paper_session.execute(self.VIEW)
        target = FuncOid("CompSalaries", (Atom("uniSQL"), Atom("rich")))
        paper_session.update_view(
            "CompSalaries", "Salary", {target: Value(95000)}
        )
        assert paper_session.store.invoke_scalar(
            Atom("rich"), "Salary"
        ) == Value(95000)


class TestSection5Methods:
    MNGR = (
        "ALTER CLASS Company "
        "ADD SIGNATURE MngrSalary : String => Numeral "
        "SELECT (MngrSalary @ Y.Name) = W FROM Company X OID X "
        "WHERE X.Divisions[Y].Manager.Salary[W]"
    )
    RAISE = (
        "ALTER CLASS Company "
        "ADD SIGNATURE RaiseMngrSalary : Numeral => Object "
        "SELECT (RaiseMngrSalary @ W) = nil FROM Company X, Numeral W "
        "OID X WHERE W < 20 and (UPDATE CLASS Company "
        "SET X.Divisions[Y].Manager.Salary = "
        "(1 + W/100) * X.(MngrSalary @ Y.Name))"
    )

    def test_query_12_method_definition(self, paper_session):
        paper_session.execute(self.MNGR)
        assert paper_session.store.invoke(
            Atom("acme"), "MngrSalary", [Value("Advertizing")]
        ) == frozenset({Value(300000)})

    def test_query_13_high_paying_manufacturers(self, paper_session):
        paper_session.execute(self.MNGR)
        result = paper_session.query(
            "SELECT X FROM Vehicle X WHERE 200000 <all "
            "(SELECT W FROM Division Y "
            "WHERE X.Manufacturer.(MngrSalary @ Y.Name)[W])"
        )
        assert names(result) == ["carWhite", "moto1"]

    def test_update_method_raise(self, paper_session):
        paper_session.execute(self.MNGR)
        paper_session.execute(self.RAISE)
        outcome = paper_session.store.invoke(
            Atom("uniSQL"), "RaiseMngrSalary", [Value(10)]
        )
        assert outcome == frozenset({NIL})
        assert paper_session.store.invoke_scalar(
            Atom("john13"), "Salary"
        ) == Value(33000)

    def test_update_method_guard(self, paper_session):
        paper_session.execute(self.MNGR)
        paper_session.execute(self.RAISE)
        outcome = paper_session.store.invoke(
            Atom("uniSQL"), "RaiseMngrSalary", [Value(50)]
        )
        assert outcome == frozenset()


class TestIntroductionExamples:
    def test_nobel_prize_query(self, nobel_session):
        result = nobel_session.query("SELECT X WHERE X.WonNobelPrize")
        assert names(result) == ["einstein", "unicef"]

    def test_engine_types_installed(self, shared_paper_session):
        # footnote 1: engine types "currently installed in some vehicles".
        result = shared_paper_session.query(
            "SELECT #E FROM Vehicle X, #E Z "
            "WHERE X.Drivetrain.Engine[Z] and #E subclassOf PistonEngine"
        )
        assert names(result) == [
            "DieselEngine",
            "FourStrokeEngine",
            "TurboEngine",
            "TwoStrokeEngine",
        ]

    def test_engine_types_all(self, shared_paper_session):
        # footnote 1: "all the engine types that exist, including those
        # that are currently not installed" — pure schema query.
        result = shared_paper_session.query(
            "SELECT #X WHERE #X subclassOf PistonEngine"
        )
        assert names(result) == [
            "DieselEngine",
            "FourStrokeEngine",
            "TurboEngine",
            "TwoStrokeEngine",
        ]


class TestSection2University:
    def test_workstudy_polymorphic_signatures(self, university_session):
        sigs = university_session.store.signatures_of(
            "UDepartment", "workstudy"
        )
        assert {s.result.name for s in sigs} == {"UStudent", "UEmployee"}

    def test_earns_two_type_expressions(self, university_session):
        # "earns has two type expressions, employee, project => pay and
        # student, course => grade" — both visible on workstudy (§6.1).
        exprs = university_session.store.all_type_exprs("earns")
        assert len(exprs) == 2

    def test_workstudy_earns_both_ways(self, university_session):
        store = university_session.store
        pay = store.invoke(Atom("pam"), "earns", [Atom("proj1")])
        grade = store.invoke(Atom("pam"), "earns", [Atom("cse305")])
        assert pay == frozenset({Atom("pay1")})
        assert grade == frozenset({Atom("gradeA")})

    def test_workstudy_query(self, university_session):
        result = university_session.query(
            "SELECT W FROM UDepartment D "
            "WHERE D.(workstudy @ fall95)[W]"
        )
        assert names(result) == ["pam"]
