"""Schema validation and CI-gate logic for the BENCH_scale.json artifact.

Runs the real harness once at the 1k tier (canonical mode only, one
round) to pin the artifact shape, then exercises
``validate_artifact``/``strip_timings``/``compare_to_baseline`` on
synthetic payloads so the regression gate itself is tested.
"""

import copy
import json

import pytest

from repro.bench.scale import (
    compare_to_baseline,
    render_report,
    run_scale_benchmark,
    strip_timings,
    validate_artifact,
)


@pytest.fixture(scope="module")
def artifact():
    return run_scale_benchmark(
        tiers=("1k",), rounds=1, modes=[("cost", "hash", "rows", 1)]
    )


class TestArtifactShape:
    def test_real_run_validates(self, artifact):
        validate_artifact(artifact)

    def test_spec_embedded_per_tier(self, artifact):
        tier = artifact["tiers"][0]
        assert tier["spec"]["n_objects"] == 1_000
        assert tier["spec"]["counts"]["total"] == 1_000
        assert tier["ingest"]["objects_per_sec"] > 0

    def test_every_query_reports_percentiles_and_operators(self, artifact):
        queries = artifact["tiers"][0]["modes"][0]["queries"]
        assert len(queries) >= 8
        for query in queries:
            assert query["p95_ms"] >= query["p50_ms"] >= 0
            assert query["operators"], query["query"]
            assert all("p95_ms" in op for op in query["operators"])

    def test_curves_keyed_by_tier(self, artifact):
        assert artifact["curves"]
        for curve in artifact["curves"].values():
            assert set(curve) == {"1k"}

    def test_json_serializable_and_renderable(self, artifact):
        json.dumps(artifact)
        text = render_report(artifact)
        assert "obj/s" in text and "p95" in text

    def test_validate_rejects_malformed(self, artifact):
        for mutilate in (
            lambda p: p.pop("tiers"),
            lambda p: p.__setitem__("suite", "other"),
            lambda p: p.__setitem__("schema_version", 999),
            lambda p: p["tiers"][0].pop("ingest"),
            lambda p: p["tiers"][0]["modes"][0]["queries"][0].pop("p95_ms"),
            lambda p: p["tiers"][0]["modes"][0].pop("skipped"),
        ):
            broken = copy.deepcopy(artifact)
            mutilate(broken)
            with pytest.raises(ValueError):
                validate_artifact(broken)


class TestReproducibility:
    def test_strip_timings_zeroes_latency_but_keeps_rows(self, artifact):
        stripped = strip_timings(artifact)
        tier = stripped["tiers"][0]
        assert tier["ingest"]["objects_per_sec"] == 0
        assert tier["ingest"]["objects"] == 1_000
        query = tier["modes"][0]["queries"][0]
        assert query["p95_ms"] == 0 and query["rows"] >= 0
        # The original is untouched.
        assert artifact["tiers"][0]["ingest"]["objects_per_sec"] > 0


class TestBaselineGate:
    def test_identical_runs_pass(self, artifact):
        assert compare_to_baseline(artifact, artifact) == []

    def test_flags_ingest_regression(self, artifact):
        slow = copy.deepcopy(artifact)
        slow["tiers"][0]["ingest"]["objects_per_sec"] = (
            artifact["tiers"][0]["ingest"]["objects_per_sec"] / 3
        )
        problems = compare_to_baseline(slow, artifact)
        assert any("ingest" in line for line in problems)

    def test_flags_p95_regression(self, artifact):
        slow = copy.deepcopy(artifact)
        slow["tiers"][0]["modes"][0]["worst_p95_ms"] = (
            artifact["tiers"][0]["modes"][0]["worst_p95_ms"] * 3 + 1
        )
        problems = compare_to_baseline(slow, artifact)
        assert any("worst p95" in line for line in problems)

    def test_within_2x_band_passes(self, artifact):
        wobbly = copy.deepcopy(artifact)
        wobbly["tiers"][0]["modes"][0]["worst_p95_ms"] = (
            artifact["tiers"][0]["modes"][0]["worst_p95_ms"] * 1.8
        )
        wobbly["tiers"][0]["ingest"]["objects_per_sec"] = (
            artifact["tiers"][0]["ingest"]["objects_per_sec"] / 1.8
        )
        assert compare_to_baseline(wobbly, artifact) == []

    def test_unknown_tiers_and_modes_are_ignored(self, artifact):
        baseline = copy.deepcopy(artifact)
        baseline["tiers"][0]["tier"] = "other"
        assert compare_to_baseline(artifact, baseline) == []
