"""Exception hierarchy for the XSQL reproduction.

Every error raised by the library derives from :class:`XsqlError`, so callers
can catch one base class.  The taxonomy mirrors the paper's own distinctions:
schema errors (ill-formed IS-A graphs, bad signatures), type errors
(inapplicable methods, ill-typed queries under a chosen typing discipline),
run-time query errors (ill-defined object-creating queries, §4.1), and plain
syntax errors from the XSQL parser.
"""

from __future__ import annotations


class XsqlError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(XsqlError):
    """An ill-formed schema operation (unknown class, bad signature, ...)."""


class CyclicHierarchyError(SchemaError):
    """Adding an IS-A edge would make the class hierarchy cyclic.

    The paper requires the subclass relationship to be acyclic (§2,
    "Classes").
    """


class UnknownClassError(SchemaError):
    """A class name was used that is not declared in the schema."""


class UnknownObjectError(XsqlError):
    """An object id was referenced that does not denote a stored object."""


class SignatureError(SchemaError):
    """A method signature is malformed or conflicts with the data model."""


class ArityError(XsqlError):
    """A method was invoked with the wrong number of arguments."""


class InheritanceConflictError(XsqlError):
    """Multiple inheritance produced an ambiguous method definition.

    Following the paper's adoption of Meyer's approach (§6.1), conflicts
    between incomparable superclasses must be resolved explicitly by the
    schema designer; until then, invoking the ambiguous method raises this
    error.
    """


class TypingError(XsqlError):
    """Base class for type-system errors (§6)."""


class IllTypedQueryError(TypingError):
    """A query failed the selected well-typing discipline."""


class InapplicableMethodError(TypingError):
    """A method was applied to an object outside every possessed type.

    This is the paper's notion of *inapplicability*: "a situation when an
    attribute is used in the scope of an object to which it does not apply"
    (§2, "Attributes").
    """


class ValueTypeError(TypingError):
    """A stored value violates the declared result class of its method.

    Only raised in a store opened with ``validate_values=True`` — by
    default the model follows the paper's metalogical stance and leaves
    type checking to query analysis.
    """


class QueryError(XsqlError):
    """Base class for run-time query-evaluation errors."""


class IllDefinedQueryError(QueryError):
    """An object-creating query assigned conflicting descriptions to one oid.

    Per §4.1: two result tuples with distinct scalar values mapped to the
    same id-function value are "two conflicting descriptions of the same
    object.  We view this situation as an ill-defined query (a run-time
    error)."
    """


class UnsafeQueryError(QueryError):
    """The smart evaluator was given a query it cannot evaluate safely.

    The naive §3.4 semantics enumerates all substitutions and can evaluate
    anything; the optimized evaluator requires range-restricted queries
    (every variable bound by a positive path expression or the FROM clause).
    """


class ViewError(XsqlError):
    """A view definition or view update is invalid."""


class NonUpdatableViewError(ViewError):
    """A view update could not be translated to a base-database update.

    §4.2 permits translation only when view objects are in one-to-one
    correspondence with objects of some base class.
    """


class SnapshotReadOnlyError(XsqlError):
    """A mutation was attempted through a pinned snapshot view.

    Snapshots (:mod:`repro.datamodel.versions`) expose the database as of
    one committed version; all writes must go through the live store.
    """


class XsqlSyntaxError(XsqlError):
    """A syntax error in XSQL source text, with position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class RelationalError(XsqlError):
    """An error in the relational baseline engine (bad schema, arity, ...)."""
