"""The ordered-KV storage-engine interface and its in-memory member.

Every database in this repository is, underneath, a set of *facts* —
extent memberships, attribute/method cells, index entries, relation
tuples — and every fact kind maps onto a contiguous range of ordered
byte keys (:mod:`repro.storage.codec` owns the layout).  This module
defines the narrow seam everything persists through:

* :class:`StorageEngine` — the abstract ordered key-value store:
  ``get``/``put``/``delete``/``range_scan`` over byte keys, plus
  *batch* commits (:class:`WriteBatch` applied atomically with a
  :class:`CommitStamp`) and explicit fsync points (``sync()``);
* :class:`MemoryEngine` — the reference implementation: a dict plus a
  lazily re-sorted key list, no durability, zero dependencies;
* :class:`~repro.storage.wal.LogStructuredEngine` (sibling module) —
  the durable member: the same memtable fronted by an append-only
  CRC-framed write-ahead log with checkpointing and crash recovery.

The design follows SNIPPETS.md's ``okdb`` note — an ordered key-value
store is the primitive every database is built on — and keeps the
interface small enough that an on-disk B-tree, an LSM tree, or a remote
store can slot in later without touching the data model.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import XsqlError

__all__ = [
    "StorageError",
    "CommitStamp",
    "WriteBatch",
    "StorageEngine",
    "MemoryEngine",
]


class StorageError(XsqlError):
    """A storage-engine operation failed (corruption, misuse, I/O)."""


@dataclass(frozen=True)
class CommitStamp:
    """What one committed batch was stamped with.

    ``lsn`` is the engine-assigned monotonic log sequence number;
    ``schema_generation``, ``statistics_generation``, and ``ticket`` are
    the components of the store's MVCC
    :class:`~repro.datamodel.versions.Version` at commit time — the
    cache-invalidation stamps double as the WAL commit stamp, so a
    recovered store can report exactly which logical version it reached
    and resume its mutation-ticket sequence from there.
    """

    lsn: int = 0
    schema_generation: int = 0
    statistics_generation: int = 0
    ticket: int = 0


#: Op codes inside a :class:`WriteBatch`.
OP_PUT = "put"
OP_DELETE = "del"
OP_DELETE_RANGE = "delrange"


class WriteBatch:
    """An ordered list of mutations applied atomically by ``apply()``."""

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops: List[Tuple] = []

    def put(self, key: bytes, value: bytes = b"") -> None:
        self.ops.append((OP_PUT, key, value))

    def delete(self, key: bytes) -> None:
        self.ops.append((OP_DELETE, key))

    def delete_range(self, start: bytes, end: bytes) -> None:
        """Delete every key in ``[start, end)``."""
        self.ops.append((OP_DELETE_RANGE, start, end))

    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)


class StorageEngine(ABC):
    """Ordered byte-key storage: the primitive the object store sits on.

    Keys are arbitrary ``bytes`` compared lexicographically; values are
    opaque ``bytes``.  Implementations must make ``apply()`` atomic —
    after a crash, either every op of a batch is visible or none is —
    and ``sync()`` a durability point (a no-op for volatile engines).
    """

    #: Short name used by options/REPL status lines.
    name = "abstract"

    # -- point ops ------------------------------------------------------

    @abstractmethod
    def get(self, key: bytes) -> Optional[bytes]:
        """The value stored at *key*, or None."""

    def put(self, key: bytes, value: bytes = b"") -> CommitStamp:
        """Single-op convenience batch."""
        batch = WriteBatch()
        batch.put(key, value)
        return self.apply(batch)

    def delete(self, key: bytes) -> CommitStamp:
        batch = WriteBatch()
        batch.delete(key)
        return self.apply(batch)

    # -- range ops ------------------------------------------------------

    @abstractmethod
    def range_scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        reverse: bool = False,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(key, value)`` for keys in ``[start, end)``, in order."""

    # -- batches and durability ----------------------------------------

    @abstractmethod
    def apply(
        self,
        batch: WriteBatch,
        schema_generation: int = 0,
        statistics_generation: int = 0,
        ticket: int = 0,
    ) -> CommitStamp:
        """Commit *batch* atomically; returns the assigned stamp."""

    @abstractmethod
    def sync(self) -> None:
        """Make everything committed so far durable (fsync point)."""

    @abstractmethod
    def checkpoint(self) -> CommitStamp:
        """Compact the durable representation up to the current LSN."""

    @abstractmethod
    def close(self) -> None:
        """Flush and release resources; the engine is unusable after."""

    # -- introspection --------------------------------------------------

    @abstractmethod
    def last_stamp(self) -> CommitStamp:
        """The stamp of the most recently committed batch."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of live keys."""

    def items(self) -> List[Tuple[bytes, bytes]]:
        """Every live ``(key, value)`` pair in key order (testing aid)."""
        return list(self.range_scan())

    def status(self) -> Dict[str, object]:
        """A JSON-friendly status line (REPL ``.storage``)."""
        stamp = self.last_stamp()
        return {
            "engine": self.name,
            "keys": len(self),
            "lsn": stamp.lsn,
            "schema_generation": stamp.schema_generation,
            "statistics_generation": stamp.statistics_generation,
            "ticket": stamp.ticket,
        }


@dataclass
class _SortedKeys:
    """A lazily maintained sorted view over the memtable's keys.

    Bulk loads insert out of order; re-sorting once per scan amortizes
    far better than keeping a tree for the write-heavy ingest path,
    while point writes into an already-sorted list use ``bisect`` so a
    scan-heavy workload never pays a full re-sort per write.
    """

    keys: List[bytes] = field(default_factory=list)
    dirty: bool = False

    def ensure_sorted(self) -> List[bytes]:
        if self.dirty:
            self.keys.sort()
            self.dirty = False
        return self.keys

    def add(self, key: bytes) -> None:
        if self.dirty:
            self.keys.append(key)
        else:
            bisect.insort(self.keys, key)

    def discard(self, key: bytes) -> None:
        keys = self.ensure_sorted()
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            keys.pop(index)


class MemoryEngine(StorageEngine):
    """The sorted in-memory ordered-KV engine (no durability).

    This is both a usable backend (a KV mirror of the store, handy for
    tests and for staging data that will be shipped elsewhere) and the
    memtable inside :class:`~repro.storage.wal.LogStructuredEngine`.
    """

    name = "memory"

    def __init__(self) -> None:
        self._data: Dict[bytes, bytes] = {}
        self._sorted = _SortedKeys()
        self._stamp = CommitStamp()
        #: Batches committed over this engine's lifetime.
        self.batches_applied = 0

    # -- point ops ------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        return self._data.get(key)

    # -- range ops ------------------------------------------------------

    def range_scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        reverse: bool = False,
    ) -> Iterator[Tuple[bytes, bytes]]:
        keys = self._sorted.ensure_sorted()
        lo = 0 if start is None else bisect.bisect_left(keys, start)
        hi = len(keys) if end is None else bisect.bisect_left(keys, end)
        window = keys[lo:hi]
        if reverse:
            window = reversed(window)
        for key in window:
            yield key, self._data[key]

    # -- batches --------------------------------------------------------

    def _apply_op(self, op: Tuple) -> None:
        kind = op[0]
        if kind == OP_PUT:
            _kind, key, value = op
            if key not in self._data:
                self._sorted.add(key)
            self._data[key] = value
        elif kind == OP_DELETE:
            _kind, key = op
            if key in self._data:
                del self._data[key]
                self._sorted.discard(key)
        elif kind == OP_DELETE_RANGE:
            _kind, start, end = op
            doomed = [key for key, _value in self.range_scan(start, end)]
            for key in doomed:
                del self._data[key]
                self._sorted.discard(key)
        else:  # pragma: no cover - batches are built by WriteBatch only
            raise StorageError(f"unknown batch op {kind!r}")

    def apply(
        self,
        batch: WriteBatch,
        schema_generation: int = 0,
        statistics_generation: int = 0,
        ticket: int = 0,
    ) -> CommitStamp:
        for op in batch.ops:
            self._apply_op(op)
        self._stamp = CommitStamp(
            lsn=self._stamp.lsn + 1,
            schema_generation=schema_generation,
            statistics_generation=statistics_generation,
            ticket=ticket,
        )
        self.batches_applied += 1
        return self._stamp

    # -- durability (volatile: everything is a no-op) -------------------

    def sync(self) -> None:
        pass

    def checkpoint(self) -> CommitStamp:
        return self._stamp

    def close(self) -> None:
        pass

    # -- introspection --------------------------------------------------

    def last_stamp(self) -> CommitStamp:
        return self._stamp

    def set_stamp(self, stamp: CommitStamp) -> None:
        """Restore the stamp after replay (recovery uses this)."""
        self._stamp = stamp

    def __len__(self) -> int:
        return len(self._data)
