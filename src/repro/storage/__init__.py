"""Pluggable ordered-KV storage engines for the object store.

The package re-founds persistence on one narrow seam (see
``docs/STORAGE.md``):

* :mod:`repro.storage.engine` — the :class:`StorageEngine` interface
  (ordered byte keys, atomic batches, fsync points) and the in-memory
  :class:`MemoryEngine`;
* :mod:`repro.storage.wal` — the durable :class:`LogStructuredEngine`:
  CRC-framed write-ahead log, monotonic LSNs, checkpoints, and crash
  recovery to the last committed batch;
* :mod:`repro.storage.codec` — the key layout (every fact kind is a
  contiguous key range) and the :class:`StoreJournal` that mirrors the
  store's single write path into an engine;
* :mod:`repro.storage.options` — the frozen :class:`StorageOptions`
  record backing ``Session.open(path, engine=...)``.

Everyday use goes through the session::

    session = Session.open("company.db")        # recover or create
    session.query("SELECT ...")
    session.checkpoint()                        # durable compaction
    session.close()
"""

from repro.storage.codec import (
    CodecError,
    EncodeReport,
    StoreJournal,
    decode_store,
    encode_store,
    pack_key,
    prefix_range,
    unpack_key,
)
from repro.storage.engine import (
    CommitStamp,
    MemoryEngine,
    StorageEngine,
    StorageError,
    WriteBatch,
)
from repro.storage.options import BACKENDS, StorageOptions, make_engine
from repro.storage.wal import LogStructuredEngine, RecoveryReport

__all__ = [
    "StorageEngine",
    "MemoryEngine",
    "LogStructuredEngine",
    "WriteBatch",
    "CommitStamp",
    "StorageError",
    "CodecError",
    "RecoveryReport",
    "StoreJournal",
    "EncodeReport",
    "StorageOptions",
    "BACKENDS",
    "make_engine",
    "encode_store",
    "decode_store",
    "pack_key",
    "unpack_key",
    "prefix_range",
]
