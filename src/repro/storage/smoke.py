"""Crash-recovery smoke test: kill the WAL mid-record, recover, compare.

The CI gate behind the storage engine's durability claim::

    python -m repro.storage.smoke --batches 24 --out recovery-smoke.log

The harness builds a WAL-backed session and commits ``--batches``
journal batches of deterministic mutations (schema DDL, object churn,
attribute updates, purges, index toggles), snapshotting the expected
store state after every commit.  It then simulates crashes by copying
the database directory and truncating the WAL at several byte offsets —
including mid-record — and for each crash point recovers the engine,
decodes the store, and asserts the survivor equals **exactly** the
state after some prefix of the committed batches (never a torn
half-batch).  The deepest survivor also answers a small query battery
against a never-crashed reference session.

Every crash point appends its recovery report to ``--out``; the process
exits non-zero on the first divergence.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from typing import List, Optional

from repro.oid import Atom

QUERIES = (
    "SELECT X.Name FROM Person X WHERE X.Age > 40",
    "SELECT X FROM Employee X",
    "SELECT X.Name, X.Age FROM Person X WHERE X.Age < 100",
)


def canonical(store) -> str:
    """Order-insensitive canonical form of a store's serialized state."""
    from repro.datamodel.serialize import store_to_dict

    payload, _report = store_to_dict(store)

    def norm(x):
        if isinstance(x, list):
            return sorted(json.dumps(norm(i), sort_keys=True) for i in x)
        if isinstance(x, dict):
            return {k: norm(v) for k, v in x.items()}
        return x

    return json.dumps(norm(payload), sort_keys=True)


def apply_batch(store, i: int) -> None:
    """Deterministic mutation batch *i* (same on crash and reference side)."""
    if i == 1:
        store.declare_class("Person")
        store.declare_class("Employee", ["Person"])
        store.declare_signature("Person", "Name", "String")
        store.declare_signature("Person", "Age", "Numeral")
        store.declare_signature("Employee", "Salary", "Numeral")
        return
    obj = store.create_object(
        Atom(f"p{i}"), ["Employee" if i % 3 == 0 else "Person"]
    )
    store.set_attr(obj, "Name", f"Person {i}")
    store.set_attr(obj, "Age", 20 + (i * 7) % 60)
    if i % 3 == 0:
        store.set_attr(obj, "Salary", 1000 * i)
    if i % 4 == 0:
        store.set_attr(Atom(f"p{i - 1}"), "Age", 99)
    if i % 6 == 0:
        store.purge_object(Atom(f"p{i - 2}"))
    if i % 7 == 0:
        if store.is_indexed("Age"):
            store.disable_index("Age")
        else:
            store.enable_index("Age")


def _query_rows(session, source: str):
    return sorted(repr(row) for row in session.query(source).rows())


def build_database(root: str, batches: int) -> List[str]:
    """Write *batches* journal batches; return expected states per LSN."""
    from repro.datamodel.store import ObjectStore
    from repro.xsql.session import Session

    session = Session.open(root, sync="never")
    reference = ObjectStore()
    # states[lsn] == canonical state the engine holds after that LSN;
    # LSN 1 is the seed batch of the (empty) fresh session.
    states = [canonical(ObjectStore()), canonical(reference)]
    journal = session.store.journal
    for i in range(1, batches + 1):
        with journal.batch():
            apply_batch(session.store, i)
        apply_batch(reference, i)
        states.append(canonical(reference))
    session.close()
    return states


def crash_and_recover(
    root: str, scratch: str, cut: int, states: List[str], log: List[str]
) -> Optional[object]:
    """Copy the db, truncate its WAL at *cut*, recover, check the prefix."""
    from repro.storage import LogStructuredEngine, decode_store

    victim = os.path.join(scratch, f"crash-at-{cut}")
    shutil.copytree(root, victim)
    wal = os.path.join(victim, "wal.log")
    with open(wal, "r+b") as handle:
        handle.truncate(cut)

    engine = LogStructuredEngine(victim, sync="never")
    try:
        recovered = decode_store(engine)
        lsn = engine.last_stamp().lsn
        log.append(f"crash point: WAL truncated to {cut} byte(s)")
        for line in engine.recovery.lines():
            log.append(f"  {line}")
        if lsn >= len(states):
            log.append(f"  FAIL: recovered LSN {lsn} beyond committed history")
            return None
        if canonical(recovered) != states[lsn]:
            log.append(
                f"  FAIL: recovered state diverges from committed "
                f"prefix at LSN {lsn}"
            )
            return None
        log.append(
            f"  state == committed prefix after LSN {lsn}: OK"
        )
        return (lsn, recovered) if lsn >= 2 else True
    finally:
        engine.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage.smoke",
        description="WAL crash-recovery smoke test",
    )
    parser.add_argument(
        "--batches", type=int, default=24,
        help="journal batches to commit before crashing (default 24)",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the recovery log here (default: stdout only)",
    )
    args = parser.parse_args(argv)

    from repro.xsql.session import Session

    scratch = tempfile.mkdtemp(prefix="xsql-storage-smoke-")
    log: List[str] = [f"storage crash-recovery smoke: {args.batches} batches"]
    failed = False
    deepest = None
    try:
        root = os.path.join(scratch, "db")
        states = build_database(root, args.batches)
        wal_size = os.path.getsize(os.path.join(root, "wal.log"))
        log.append(f"WAL size after {args.batches} batches: {wal_size} bytes")

        # Crash points: mid-record in the final frame, three interior
        # offsets (almost certainly mid-record), and just past the
        # magic.  Recovery must land on a committed prefix every time.
        cuts = sorted(
            {
                max(8, wal_size - 3),
                wal_size * 3 // 4,
                wal_size // 2,
                wal_size // 4,
                9,
            }
        )
        for cut in cuts:
            survivor = crash_and_recover(root, scratch, cut, states, log)
            if survivor is None:
                failed = True
            elif survivor is not True:
                deepest = survivor

        if deepest is not None and not failed:
            # Query battery: deepest survivor vs a never-crashed store
            # holding the same committed prefix (LSN 1 is the seed, so
            # LSN k carries mutation batches 1..k-1).
            from repro.datamodel.store import ObjectStore

            lsn, survivor = deepest
            crashed = Session()
            crashed.replace_store(survivor)
            prefix = ObjectStore()
            for i in range(1, lsn):
                apply_batch(prefix, i)
            reference = Session()
            reference.replace_store(prefix)
            for source in QUERIES:
                want = _query_rows(reference, source)
                got = _query_rows(crashed, source)
                if got != want:
                    log.append(f"  FAIL: query battery diverged: {source}")
                    failed = True
                else:
                    log.append(
                        f"  query battery OK ({len(want)} row(s)): {source}"
                    )
        log.append(
            "result: FAIL" if failed else "result: OK (all crash points)"
        )
    finally:
        text = "\n".join(log) + "\n"
        sys.stdout.write(text)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
        shutil.rmtree(scratch, ignore_errors=True)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
