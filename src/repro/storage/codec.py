"""Codecs: the object store as ordered key ranges, and back.

Modeled on ``ion/core/object/codec.py`` (explicit codecs between the
logical model and the wire/storage form) and the okdb note in
SNIPPETS.md (every fact kind is a contiguous ordered key range).

**Key layout.**  Keys are tuples packed by :func:`pack_key` into
order-preserving bytes.  The first component names the keyspace::

    ("s","o")                                → store options (JSON)
    ("s","c", class)                         → direct parent list (JSON)
    ("s","g", class, method, result, set, *args) → b"" (one signature)
    ("o", oid)                               → b"" (individual exists)
    ("x", class, oid)                        → b"" (direct membership)
    ("f", method, owner, *args)              → cell JSON {"s": scalar?,
                                               "v": [encoded oids]}
    ("r","d", relation)                      → column names (JSON)
    ("r","t", relation, *row)                → b"" (one tuple)
    ("v", class, method)                     → {"use": class} (JSON)
    ("i","d", method)                        → b"" (index enabled)
    ("i","e", method, value, owner, *args)   → b"" (one index entry)

so one class's extent, one method's cells, and one index are each a
single ``range_scan`` — which is what makes sharding extents across
engines a key-splitting problem rather than a redesign.

**Tuple packing.**  Each component is tagged, escaped (0x00 →
0x00 0xFF) and 0x00-terminated, FoundationDB-tuple style; 64-bit ints
are offset-encoded and floats sign-flipped so numeric components sort
numerically within their tag.  Oids pack recursively (atoms, literal
values, id-function applications), so ``unpack_key`` recovers the exact
logical key — the codec is a bijection, property-tested per fact kind.

**Journal.**  :class:`StoreJournal` is the store's write-path listener:
every mutation arrives as one ``note_*`` call and leaves as codec-
encoded ops on the attached engine, batched per mutation (autocommit)
or grouped under :meth:`StoreJournal.batch`.  The commit stamp of every
batch carries the store's :class:`~repro.datamodel.versions.Version`
components — schema generation, statistics generation, and the MVCC
mutation ticket — at commit time.
"""

from __future__ import annotations

import json
import struct
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

from repro.oid import Atom, FuncOid, Oid, Value
from repro.storage.engine import (
    CommitStamp,
    StorageEngine,
    StorageError,
    WriteBatch,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datamodel.store import ObjectStore

__all__ = [
    "CodecError",
    "pack_key",
    "unpack_key",
    "prefix_range",
    "encode_cell_value",
    "decode_cell_value",
    "StoreJournal",
    "EncodeReport",
    "encode_store",
    "decode_store",
    "KEYSPACES",
]

#: Human-readable map of the top-level keyspaces (docs + ``.storage``).
KEYSPACES = {
    "s": "schema (options, classes, signatures)",
    "o": "individual object markers",
    "x": "extent memberships",
    "f": "attribute/method fact cells",
    "r": "first-class relations",
    "v": "inheritance resolutions",
    "i": "inverted index registry + entries",
}


class CodecError(StorageError):
    """A key or value failed to encode/decode."""


# ---------------------------------------------------------------------------
# tuple packing
# ---------------------------------------------------------------------------

_TAG_STR = 0x02
_TAG_INT = 0x14
_TAG_BIGINT = 0x15
_TAG_FLOAT = 0x16
_TAG_BOOL = 0x17
_TAG_ATOM = 0x20
_TAG_VALUE = 0x21
_TAG_FUNC = 0x22
_TAG_END = 0x2F

_TERMINATOR = b"\x00"
_ESCAPED_ZERO = b"\x00\xff"
_I64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")
_INT_OFFSET = 1 << 63

KeyPart = Union[str, int, float, bool, Oid]


def _append_escaped(out: List[bytes], raw: bytes) -> None:
    out.append(raw.replace(b"\x00", _ESCAPED_ZERO))
    out.append(_TERMINATOR)


def _append_part(out: List[bytes], part: KeyPart) -> None:
    # bool before int: bool is an int subclass.
    if isinstance(part, bool):
        out.append(bytes((_TAG_BOOL, 1 if part else 0)))
    elif isinstance(part, str):
        out.append(bytes((_TAG_STR,)))
        _append_escaped(out, part.encode("utf-8"))
    elif isinstance(part, int):
        if -_INT_OFFSET <= part < _INT_OFFSET:
            out.append(bytes((_TAG_INT,)))
            out.append(_I64.pack(part + _INT_OFFSET))
        else:
            magnitude = abs(part).to_bytes(
                (abs(part).bit_length() + 7) // 8, "big"
            )
            out.append(bytes((_TAG_BIGINT, 1 if part >= 0 else 0)))
            _append_escaped(out, magnitude)
    elif isinstance(part, float):
        bits = _I64.unpack(_F64.pack(part))[0]
        # Order-preserving transform: flip the sign bit for positives,
        # flip everything for negatives.
        if bits & _INT_OFFSET:
            bits ^= 0xFFFFFFFFFFFFFFFF
        else:
            bits ^= _INT_OFFSET
        out.append(bytes((_TAG_FLOAT,)))
        out.append(_I64.pack(bits))
    elif isinstance(part, Atom):
        out.append(bytes((_TAG_ATOM,)))
        _append_escaped(out, part.name.encode("utf-8"))
    elif isinstance(part, Value):
        out.append(bytes((_TAG_VALUE,)))
        _append_part(out, part.value)
    elif isinstance(part, FuncOid):
        out.append(bytes((_TAG_FUNC,)))
        _append_escaped(out, part.functor.encode("utf-8"))
        for arg in part.args:
            _append_part(out, arg)
        out.append(bytes((_TAG_END,)))
    else:
        raise CodecError(f"cannot pack key component {part!r}")


def pack_key(parts: Tuple[KeyPart, ...]) -> bytes:
    """Pack a key tuple into order-preserving bytes."""
    out: List[bytes] = []
    for part in parts:
        _append_part(out, part)
    return b"".join(out)


def _take_escaped(raw: bytes, offset: int) -> Tuple[bytes, int]:
    pieces: List[bytes] = []
    start = offset
    while True:
        zero = raw.find(b"\x00", offset)
        if zero < 0:
            raise CodecError("unterminated key component")
        if zero + 1 < len(raw) and raw[zero + 1] == 0xFF:
            pieces.append(raw[start:zero] + b"\x00")
            offset = zero + 2
            start = offset
            continue
        pieces.append(raw[start:zero])
        return b"".join(pieces), zero + 1


def _take_part(raw: bytes, offset: int) -> Tuple[KeyPart, int]:
    if offset >= len(raw):
        raise CodecError("key underrun")
    tag = raw[offset]
    offset += 1
    if tag == _TAG_STR:
        piece, offset = _take_escaped(raw, offset)
        return piece.decode("utf-8"), offset
    if tag == _TAG_INT:
        if offset + 8 > len(raw):
            raise CodecError("truncated int component")
        value = _I64.unpack_from(raw, offset)[0] - _INT_OFFSET
        return value, offset + 8
    if tag == _TAG_BIGINT:
        sign = raw[offset]
        magnitude, offset = _take_escaped(raw, offset + 1)
        value = int.from_bytes(magnitude, "big")
        return (value if sign else -value), offset
    if tag == _TAG_FLOAT:
        if offset + 8 > len(raw):
            raise CodecError("truncated float component")
        bits = _I64.unpack_from(raw, offset)[0]
        if bits & _INT_OFFSET:
            bits ^= _INT_OFFSET
        else:
            bits ^= 0xFFFFFFFFFFFFFFFF
        return _F64.unpack(_I64.pack(bits))[0], offset + 8
    if tag == _TAG_BOOL:
        if offset >= len(raw):
            raise CodecError("truncated bool component")
        return bool(raw[offset]), offset + 1
    if tag == _TAG_ATOM:
        piece, offset = _take_escaped(raw, offset)
        return Atom(piece.decode("utf-8")), offset
    if tag == _TAG_VALUE:
        payload, offset = _take_part(raw, offset)
        if isinstance(payload, Oid):
            raise CodecError("malformed literal component")
        return Value(payload), offset
    if tag == _TAG_FUNC:
        piece, offset = _take_escaped(raw, offset)
        args: List[Oid] = []
        while True:
            if offset >= len(raw):
                raise CodecError("unterminated id-function component")
            if raw[offset] == _TAG_END:
                offset += 1
                break
            arg, offset = _take_part(raw, offset)
            if not isinstance(arg, Oid):
                raise CodecError("id-function argument must be an oid")
            args.append(arg)
        return FuncOid(piece.decode("utf-8"), tuple(args)), offset
    raise CodecError(f"unknown key tag 0x{tag:02x}")


def unpack_key(raw: bytes) -> Tuple[KeyPart, ...]:
    """Invert :func:`pack_key`."""
    parts: List[KeyPart] = []
    offset = 0
    while offset < len(raw):
        part, offset = _take_part(raw, offset)
        parts.append(part)
    return tuple(parts)


def prefix_range(parts: Tuple[KeyPart, ...]) -> Tuple[bytes, bytes]:
    """The ``[start, end)`` byte range of keys extending *parts*."""
    start = pack_key(parts)
    end = bytearray(start)
    while end and end[-1] == 0xFF:  # pragma: no cover - tags are < 0xFF
        end.pop()
    if not end:  # pragma: no cover - empty prefix means "everything"
        return start, b"\xff" * 16
    end[-1] += 1
    return start, bytes(end)


# ---------------------------------------------------------------------------
# value codecs (JSON bodies reuse the serialize module's oid encoding)
# ---------------------------------------------------------------------------


def _encode_term_json(term: Oid) -> object:
    from repro.datamodel.serialize import encode_oid

    return encode_oid(term)


def _decode_term_json(data: object) -> Oid:
    from repro.datamodel.serialize import decode_oid

    return decode_oid(data)


def encode_cell_value(scalar: bool, values) -> bytes:
    """The value body of one ``("f", ...)`` cell key."""
    return json.dumps(
        {
            "s": scalar,
            "v": [_encode_term_json(v) for v in sorted(values, key=str)],
        },
        sort_keys=True,
    ).encode("utf-8")


def decode_cell_value(raw: bytes) -> Tuple[bool, List[Oid]]:
    data = json.loads(raw.decode("utf-8"))
    return bool(data["s"]), [_decode_term_json(v) for v in data["v"]]


def _json_bytes(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


# ---------------------------------------------------------------------------
# the journal: store mutations -> engine batches
# ---------------------------------------------------------------------------


class StoreJournal:
    """Mirrors every store mutation into an ordered-KV engine.

    The store calls one ``note_*`` method per logical mutation from its
    single write path; each call appends codec-encoded ops to the
    pending batch.  Outside an explicit :meth:`batch` block every
    mutation commits (and WAL-frames) individually; inside one, the
    whole group commits atomically with one stamp — that is the unit
    crash recovery restores to.
    """

    def __init__(self, engine: StorageEngine, store: "ObjectStore") -> None:
        self.engine = engine
        self.store = store
        self._pending = WriteBatch()
        self._depth = 0
        #: Batches this journal has committed (REPL ``.storage``).
        self.batches_committed = 0

    # -- batching -------------------------------------------------------

    @contextmanager
    def batch(self) -> Iterator["StoreJournal"]:
        """Group every mutation inside the block into one commit."""
        self._depth += 1
        try:
            yield self
        finally:
            self._depth -= 1
            if self._depth == 0:
                self._flush()

    def _commit(self) -> None:
        if self._depth == 0:
            self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, WriteBatch()
        self.engine.apply(
            batch,
            schema_generation=self.store.schema_generation,
            statistics_generation=self.store.statistics.generation,
            ticket=self.store.version.ticket,
        )
        self.batches_committed += 1

    # -- schema ---------------------------------------------------------

    def note_options(self) -> None:
        self._pending.put(
            pack_key(("s", "o")),
            _json_bytes(
                {
                    "strict_method_namespace": (
                        self.store.catalogue.strict_method_namespace
                    ),
                    "validate_values": self.store.validate_values,
                }
            ),
        )
        self._commit()

    def note_class(self, cls: Atom, parents: List[Atom]) -> None:
        self._pending.put(
            pack_key(("s", "c", cls)),
            _json_bytes(sorted(p.name for p in parents)),
        )
        self._commit()

    def note_signature(
        self,
        cls: Atom,
        method: Atom,
        result: Atom,
        args: Tuple[Atom, ...],
        set_valued: bool,
    ) -> None:
        self._pending.put(
            pack_key(("s", "g", cls, method, result, set_valued) + args)
        )
        self._commit()

    def note_resolution(self, cls: Atom, method: Atom, use: Atom) -> None:
        self._pending.put(
            pack_key(("v", cls, method)), _json_bytes({"use": use.name})
        )
        self._commit()

    # -- instances ------------------------------------------------------

    def note_object(self, obj: Oid) -> None:
        self._pending.put(pack_key(("o", obj)))
        self._commit()

    def note_membership(self, cls: Atom, obj: Oid, present: bool) -> None:
        key = pack_key(("x", cls, obj))
        if present:
            self._pending.put(key)
        else:
            self._pending.delete(key)
        self._commit()

    def note_cell(
        self,
        owner: Oid,
        method: Atom,
        args: Tuple[Oid, ...],
        old_values,
        new_values,
        scalar: bool,
        present: bool = True,
    ) -> None:
        key = pack_key(("f", method, owner) + args)
        if present:
            # An explicit owner marker rides along so objects reached
            # only through the cell write path (no ``create_object``)
            # survive a later unset: membership in ``known_objects()``
            # must not depend on still holding a cell.
            if not self.store.catalogue.is_class(owner):
                self._pending.put(pack_key(("o", owner)))
            self._pending.put(key, encode_cell_value(scalar, new_values))
        else:
            self._pending.delete(key)
        if self.store.is_indexed(method):
            for value in old_values - new_values:
                self._pending.delete(
                    pack_key(("i", "e", method, value, owner) + args)
                )
            for value in new_values - old_values:
                self._pending.put(
                    pack_key(("i", "e", method, value, owner) + args)
                )
        self._commit()

    def note_purge(self, obj: Oid, memberships, cells) -> None:
        """Remove an object: marker, memberships, cells, index entries."""
        self._pending.delete(pack_key(("o", obj)))
        for cls in memberships:
            self._pending.delete(pack_key(("x", cls, obj)))
        for (method, args), cell in cells:
            self._pending.delete(pack_key(("f", method, obj) + args))
            if self.store.is_indexed(method):
                for value in cell.as_set():
                    self._pending.delete(
                        pack_key(("i", "e", method, value, obj) + args)
                    )
        self._commit()

    # -- relations ------------------------------------------------------

    def note_relation(self, name: str, columns: Tuple[str, ...]) -> None:
        self._pending.put(
            pack_key(("r", "d", name)), _json_bytes(list(columns))
        )
        self._commit()

    def note_tuple(self, name: str, row: Tuple[Oid, ...]) -> None:
        self._pending.put(pack_key(("r", "t", name) + row))
        self._commit()

    # -- indexes --------------------------------------------------------

    def note_index(self, method: Atom, enabled: bool) -> None:
        registry = pack_key(("i", "d", method))
        if not enabled:
            self._pending.delete(registry)
            self._pending.delete_range(
                *prefix_range(("i", "e", method))
            )
            self._commit()
            return
        self._pending.put(registry)
        # Back-fill the entry range from the engine's own cell range —
        # the KV mirror is self-contained, no store scan needed.
        start, end = prefix_range(("f", method))
        for raw_key, raw_value in self.engine.range_scan(start, end):
            parts = unpack_key(raw_key)
            owner = parts[2]
            args = parts[3:]
            _scalar, values = decode_cell_value(raw_value)
            for value in values:
                self._pending.put(
                    pack_key(("i", "e", method, value, owner) + tuple(args))
                )
        self._commit()


# ---------------------------------------------------------------------------
# whole-store encode / decode
# ---------------------------------------------------------------------------


class EncodeReport:
    """What a bulk encode covered (mirrors SerializationReport)."""

    def __init__(self) -> None:
        self.classes = 0
        self.objects = 0
        self.cells = 0
        self.relations = 0
        self.skipped: List[str] = []
        self.stamp = CommitStamp()


def encode_store(
    store: "ObjectStore", engine: StorageEngine
) -> EncodeReport:
    """Write *store*'s complete state into *engine* as one batch.

    Computed method implementations are not representable (they are
    Python callables / re-installed DDL) and are reported as skipped,
    exactly like :func:`repro.datamodel.serialize.store_to_dict`.
    """
    from repro.datamodel.catalogue import BUILTIN_CLASSES
    from repro.datamodel.hierarchy import OBJECT_CLASS
    from repro.datamodel.objects import ScalarCell

    report = EncodeReport()
    journal = StoreJournal(engine, store)
    hierarchy = store.hierarchy
    implicit = set(BUILTIN_CLASSES) | {OBJECT_CLASS}
    with journal.batch():
        journal.note_options()
        for cls in hierarchy.classes():
            if cls in implicit:
                continue
            parents = [
                sup
                for sup in hierarchy.direct_superclasses(cls)
                if sup != OBJECT_CLASS
            ]
            journal.note_class(cls, parents)
            report.classes += 1
        for cls in hierarchy.classes():
            for signature in store.declared_signatures(cls):
                journal.note_signature(
                    cls,
                    signature.method,
                    signature.result,
                    tuple(signature.type_expr.args),
                    signature.set_valued,
                )
        for record in store.iter_records():
            obj = record.oid
            if not store.catalogue.is_class(obj):
                journal.note_object(obj)
                # Explicit memberships only: implicit classes (Object,
                # the literal builtins) are re-derived by the catalogue
                # and must not become explicit instance-of facts.
                for cls in sorted(
                    store.explicit_classes_of(obj), key=lambda a: a.name
                ):
                    journal.note_membership(cls, obj, True)
            for (method, args), cell in record.entries():
                journal.note_cell(
                    obj,
                    method,
                    args,
                    frozenset(),
                    cell.as_set(),
                    isinstance(cell, ScalarCell),
                )
                report.cells += 1
            report.objects += 1
        for name, relation in sorted(store.relations().items()):
            journal.note_relation(name, relation.column_names)
            for row in relation.sorted_rows():
                journal.note_tuple(name, tuple(row))
            report.relations += 1
        for (cls, method), use in sorted(
            store.resolver._resolutions.items(), key=str
        ):
            journal.note_resolution(cls, method, use)
        for (cls, method) in sorted(store._implementations, key=str):
            report.skipped.append(
                f"method implementation {method} on {cls} (re-install "
                f"implementations after loading)"
            )
        for method in sorted(store.indexed_methods(), key=str):
            journal.note_index(method, True)
    report.stamp = engine.last_stamp()
    return report


def _scan(engine: StorageEngine, prefix: Tuple[KeyPart, ...]):
    start, end = prefix_range(prefix)
    for raw_key, raw_value in engine.range_scan(start, end):
        yield unpack_key(raw_key), raw_value


def decode_store(engine: StorageEngine) -> "ObjectStore":
    """Rebuild an :class:`ObjectStore` from an engine's key ranges.

    The rebuild runs with no journal attached and no caches live, so
    replaying a million records bumps nothing but the fresh store's own
    counters; at the end the store's generation pair is raised to the
    engine's last commit stamp, so a session adopting the store
    invalidates its compiled plans exactly once — never once per
    replayed record.
    """
    from repro.datamodel.store import ObjectStore

    options: Dict[str, object] = {}
    raw_options = engine.get(pack_key(("s", "o")))
    if raw_options is not None:
        options = json.loads(raw_options.decode("utf-8"))
    store = ObjectStore(
        strict_method_namespace=bool(
            options.get("strict_method_namespace", False)
        ),
        validate_values=False,  # re-enabled below, as serialize does
    )

    # Classes, with the same dependency-ordered pending loop as the
    # JSON deserializer (parents must exist before children).
    parents: Dict[str, List[str]] = {}
    pending: List[str] = []
    for parts, raw in _scan(engine, ("s", "c")):
        name = parts[2].name
        pending.append(name)
        parents[name] = json.loads(raw.decode("utf-8"))
    guard = len(pending) + 1
    while pending and guard:
        guard -= 1
        still = []
        for name in pending:
            wanted = parents.get(name, [])
            if all(
                Atom(p) in store.hierarchy or p == "Object" for p in wanted
            ):
                store.declare_class(name, wanted)
            else:
                still.append(name)
        if len(still) == len(pending):  # pragma: no cover - cyclic
            raise CodecError(f"unresolvable class dependencies: {still}")
        pending = still

    for parts, _raw in _scan(engine, ("s", "g")):
        _s, _g, cls, method, result, set_valued = parts[:6]
        args = parts[6:]
        store.declare_signature(
            cls, method, result, args=list(args), set_valued=bool(set_valued)
        )

    for parts, _raw in _scan(engine, ("o",)):
        store.create_object(parts[1])

    for parts, _raw in _scan(engine, ("x",)):
        _x, cls, obj = parts
        store.add_instance(obj, cls)

    for parts, raw in _scan(engine, ("f",)):
        method, owner = parts[1], parts[2]
        args = list(parts[3:])
        scalar, values = decode_cell_value(raw)
        if scalar:
            if len(values) != 1:
                raise CodecError(
                    f"scalar cell {method} of {owner} has "
                    f"{len(values)} values"
                )
            store.set_attr(owner, method, values[0], args=args)
        else:
            store.set_attr_set(owner, method, values, args=args)

    for parts, raw in _scan(engine, ("r", "d")):
        store.declare_relation(parts[2], json.loads(raw.decode("utf-8")))
    for parts, _raw in _scan(engine, ("r", "t")):
        store.insert_tuple(parts[2], list(parts[3:]))

    for parts, raw in _scan(engine, ("v",)):
        _v, cls, method = parts
        use = json.loads(raw.decode("utf-8"))["use"]
        store.resolve_inheritance(cls, method, use)

    for parts, _raw in _scan(engine, ("i", "d")):
        store.enable_index(parts[2])

    store.validate_values = bool(options.get("validate_values", False))

    stamp = engine.last_stamp()
    store.schema_generation = max(
        store.schema_generation, stamp.schema_generation
    )
    store.statistics.generation = max(
        store.statistics.generation, stamp.statistics_generation
    )
    store.restore_version_ticket(stamp.ticket)
    return store
