"""Storage options: one frozen record for every persistence knob.

The persistence API grew the way execution options once did — a JSON
``save_store`` here, a ``Session.snapshot()`` there.  Mirroring
:class:`repro.xsql.options.ExecutionOptions`, :class:`StorageOptions`
gathers the storage knobs into a single validated frozen dataclass
accepted uniformly by :meth:`Session.open`, the REPL's ``--storage``
flag, and :func:`make_engine`.

Backends:

``dict``
    The historical in-process dictionaries — no engine attached, the
    write path pays nothing.  With a ``path``, ``checkpoint()`` writes
    the JSON snapshot there (the old ``save_store`` format).
``memory``
    A :class:`~repro.storage.engine.MemoryEngine` KV mirror: every
    mutation flows through the codec, nothing touches disk.
``log``
    A :class:`~repro.storage.wal.LogStructuredEngine` at ``path``:
    write-ahead logged, checkpointable, crash-recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.storage.engine import MemoryEngine, StorageEngine, StorageError
from repro.storage.wal import SYNC_MODES, LogStructuredEngine

__all__ = ["BACKENDS", "StorageOptions", "make_engine"]

#: Storage backends, ordered by durability.
BACKENDS = ("dict", "memory", "log")


@dataclass(frozen=True)
class StorageOptions:
    """Frozen bundle of persistence knobs for one session.

    ``backend``
        One of :data:`BACKENDS`.
    ``path``
        Database directory (``log``) or JSON snapshot path (``dict``);
        required for ``log``, optional otherwise.
    ``sync``
        Fsync policy for the ``log`` backend: ``"commit"`` (every
        batch), ``"checkpoint"`` (default: flushed per batch, fsynced
        at checkpoints and close), or ``"never"`` (tests).
    """

    backend: str = "dict"
    path: Optional[str] = None
    sync: str = "checkpoint"

    def validate(self) -> "StorageOptions":
        if self.backend not in BACKENDS:
            raise StorageError(
                f"unknown storage backend {self.backend!r}; "
                f"choose from {BACKENDS}"
            )
        if self.sync not in SYNC_MODES:
            raise StorageError(
                f"unknown sync mode {self.sync!r}; choose from {SYNC_MODES}"
            )
        if self.path is not None and not isinstance(self.path, str):
            raise StorageError(f"path must be a string, got {self.path!r}")
        if self.backend == "log" and not self.path:
            raise StorageError("the log backend needs a path")
        return self

    def with_overrides(self, **overrides) -> "StorageOptions":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides).validate()

    def cache_key(self) -> Tuple:
        return (self.backend, self.path, self.sync)

    @classmethod
    def coerce(
        cls,
        options: Optional["StorageOptions"] = None,
        **kwargs,
    ) -> "StorageOptions":
        """Build options from an explicit record and/or loose kwargs.

        Mirrors :meth:`ExecutionOptions.coerce`: kwargs left as ``None``
        keep the base value, so callers thread optional CLI flags
        straight through.
        """
        base = options if options is not None else cls()
        if not isinstance(base, cls):
            raise StorageError(
                f"storage options must be StorageOptions, "
                f"got {type(base).__name__}"
            )
        overrides = {
            name: value for name, value in kwargs.items() if value is not None
        }
        if overrides:
            base = replace(base, **overrides)
        return base.validate()

    @classmethod
    def parse(cls, spec: str) -> "StorageOptions":
        """Parse a CLI/REPL spec: ``dict``, ``memory``, ``log:PATH``,
        or a bare ``PATH`` (shorthand for ``log:PATH``)."""
        spec = spec.strip()
        if not spec:
            raise StorageError("empty storage spec")
        backend, _, rest = spec.partition(":")
        if backend in BACKENDS:
            return cls(
                backend=backend, path=rest or None
            ).validate()
        return cls(backend="log", path=spec).validate()


def make_engine(options: StorageOptions) -> Optional[StorageEngine]:
    """Instantiate the engine *options* describes (None for ``dict``)."""
    options = options.validate()
    if options.backend == "dict":
        return None
    if options.backend == "memory":
        return MemoryEngine()
    return LogStructuredEngine(options.path, sync=options.sync)
