"""The log-structured engine: WAL framing, checkpoints, crash recovery.

On disk a database is a directory::

    <root>/
      wal.log           append-only write-ahead log (one record per batch)
      checkpoint.snap   full memtable image as of some LSN (optional)

**WAL record framing.**  The log starts with an 8-byte magic header.
Each committed batch is one record::

    u32 payload_length | u32 crc32(payload) | payload
    payload := u64 lsn | u64 schema_generation | u64 statistics_generation
             | u64 ticket | u32 op_count | op*
    op      := 'P' u32 klen key u32 vlen value      (put)
             | 'D' u32 klen key                     (delete)
             | 'R' u32 len start u32 len end        (delete_range)

LSNs are assigned at commit and strictly monotonic for the lifetime of
the database (they survive checkpoints).  The two generation fields are
the store's schema/statistics counters at commit time and ``ticket`` is
the MVCC mutation ticket — together the commit stamp, from which a
recovered store resumes its version sequence.

**Recovery.**  Replay loads the checkpoint image (if any), then scans
the WAL from the top: a record is applied iff its frame is complete,
its CRC matches, and its LSN continues the sequence.  The first torn or
corrupt record ends replay — everything before it is exactly the last
durably committed batch, everything after is discarded (the tail is
truncated before appending resumes).  Recovering an already-recovered
database is a no-op: ``recover(recover(wal)) == recover(wal)``.

**Checkpoint protocol.**  ``checkpoint()`` writes the whole memtable to
``checkpoint.snap.tmp`` (same length+CRC framing, single frame), fsyncs,
atomically renames over ``checkpoint.snap``, then swaps in a fresh
(empty) WAL the same way.  A crash between the two renames leaves the
old WAL in place; replay skips records with ``lsn <=`` the checkpoint's
LSN, so the protocol is correct at every interleaving.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, List, Optional, Tuple

from repro.storage.engine import (
    OP_DELETE,
    OP_DELETE_RANGE,
    OP_PUT,
    CommitStamp,
    MemoryEngine,
    StorageEngine,
    StorageError,
    WriteBatch,
)

__all__ = ["RecoveryReport", "LogStructuredEngine", "WAL_MAGIC", "CKP_MAGIC"]

WAL_MAGIC = b"XSQLWAL2"
CKP_MAGIC = b"XSQLCKP2"

_FRAME = struct.Struct(">II")  # payload length, crc32(payload)
# lsn, schema gen, stats gen, mvcc ticket, op count
_BATCH_HEAD = struct.Struct(">QQQQI")
_U32 = struct.Struct(">I")

#: ``sync`` policies: fsync every commit, only at checkpoints/close, or
#: never (tests and throwaway stores).
SYNC_MODES = ("commit", "checkpoint", "never")


@dataclass
class RecoveryReport:
    """What recovery found and did — the crash-recovery audit trail."""

    path: str = ""
    checkpoint_lsn: int = 0
    checkpoint_keys: int = 0
    replayed_batches: int = 0
    replayed_ops: int = 0
    skipped_batches: int = 0
    last_lsn: int = 0
    #: Byte offset the WAL was truncated to (None = clean tail).
    truncated_at: Optional[int] = None
    #: Why replay stopped early ('' = reached a clean end of log).
    torn_reason: str = ""

    def lines(self) -> List[str]:
        out = [
            f"recovery of {self.path}",
            f"  checkpoint: lsn={self.checkpoint_lsn} "
            f"keys={self.checkpoint_keys}",
            f"  replayed: {self.replayed_batches} batch(es), "
            f"{self.replayed_ops} op(s), skipped={self.skipped_batches}",
            f"  last committed lsn: {self.last_lsn}",
        ]
        if self.truncated_at is not None:
            out.append(
                f"  torn tail: {self.torn_reason}; "
                f"truncated WAL to {self.truncated_at} byte(s)"
            )
        return out


def _encode_batch(
    batch: WriteBatch, stamp: CommitStamp
) -> bytes:
    parts = [
        _BATCH_HEAD.pack(
            stamp.lsn,
            stamp.schema_generation,
            stamp.statistics_generation,
            stamp.ticket,
            len(batch.ops),
        )
    ]
    for op in batch.ops:
        kind = op[0]
        if kind == OP_PUT:
            _k, key, value = op
            parts.append(b"P")
            parts.append(_U32.pack(len(key)))
            parts.append(key)
            parts.append(_U32.pack(len(value)))
            parts.append(value)
        elif kind == OP_DELETE:
            _k, key = op
            parts.append(b"D")
            parts.append(_U32.pack(len(key)))
            parts.append(key)
        elif kind == OP_DELETE_RANGE:
            _k, start, end = op
            parts.append(b"R")
            parts.append(_U32.pack(len(start)))
            parts.append(start)
            parts.append(_U32.pack(len(end)))
            parts.append(end)
        else:  # pragma: no cover - WriteBatch only emits the three kinds
            raise StorageError(f"unknown batch op {kind!r}")
    return b"".join(parts)


def _decode_batch(payload: bytes) -> Tuple[CommitStamp, WriteBatch]:
    lsn, schema_gen, stats_gen, ticket, op_count = _BATCH_HEAD.unpack_from(
        payload, 0
    )
    offset = _BATCH_HEAD.size
    batch = WriteBatch()

    def take(n: int) -> bytes:
        nonlocal offset
        if offset + n > len(payload):
            raise StorageError("batch payload underrun")
        piece = payload[offset : offset + n]
        offset += n
        return piece

    for _ in range(op_count):
        kind = take(1)
        if kind == b"P":
            key = take(_U32.unpack(take(4))[0])
            value = take(_U32.unpack(take(4))[0])
            batch.put(key, value)
        elif kind == b"D":
            batch.delete(take(_U32.unpack(take(4))[0]))
        elif kind == b"R":
            start = take(_U32.unpack(take(4))[0])
            end = take(_U32.unpack(take(4))[0])
            batch.delete_range(start, end)
        else:
            raise StorageError(f"unknown op byte {kind!r} in WAL record")
    if offset != len(payload):
        raise StorageError("trailing bytes in WAL record payload")
    stamp = CommitStamp(
        lsn=lsn,
        schema_generation=schema_gen,
        statistics_generation=stats_gen,
        ticket=ticket,
    )
    return stamp, batch


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _write_atomically(path: Path, data: bytes, do_sync: bool) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if do_sync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


class LogStructuredEngine(StorageEngine):
    """An ordered-KV engine backed by a write-ahead log on disk.

    Reads are served from an in-memory :class:`MemoryEngine` memtable;
    every committed batch is first framed into ``wal.log``.  Opening a
    directory that already holds a database *is* crash recovery — there
    is no separate recovery entry point to forget to call.
    """

    name = "log"

    def __init__(
        self,
        path: os.PathLike,
        sync: str = "checkpoint",
    ) -> None:
        if sync not in SYNC_MODES:
            raise StorageError(
                f"unknown sync mode {sync!r}; choose from {SYNC_MODES}"
            )
        self.root = Path(path)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sync_mode = sync
        self._mem = MemoryEngine()
        self._closed = False
        self._checkpoint_lsn = 0
        self.recovery = RecoveryReport(path=str(self.root))
        self._load_checkpoint()
        self._replay_wal()
        self._wal: IO[bytes] = open(self._wal_path, "ab")
        self._wal_offset = self._wal_path.stat().st_size

    # -- paths ----------------------------------------------------------

    @property
    def _wal_path(self) -> Path:
        return self.root / "wal.log"

    @property
    def _ckp_path(self) -> Path:
        return self.root / "checkpoint.snap"

    # -- recovery -------------------------------------------------------

    def _load_checkpoint(self) -> None:
        path = self._ckp_path
        if not path.exists():
            return
        blob = path.read_bytes()
        if len(blob) < len(CKP_MAGIC) + _FRAME.size or not blob.startswith(
            CKP_MAGIC
        ):
            raise StorageError(f"{path} is not a checkpoint image")
        length, crc = _FRAME.unpack_from(blob, len(CKP_MAGIC))
        payload = blob[len(CKP_MAGIC) + _FRAME.size :]
        if len(payload) != length or zlib.crc32(payload) != crc:
            # The tmp+rename protocol never publishes a partial image,
            # so a bad checkpoint is corruption, not a crash artifact.
            raise StorageError(f"checkpoint image {path} fails its CRC")
        stamp, batch = _decode_batch(payload)
        self._mem.apply(
            batch,
            stamp.schema_generation,
            stamp.statistics_generation,
            stamp.ticket,
        )
        self._mem.set_stamp(stamp)
        self._checkpoint_lsn = stamp.lsn
        self.recovery.checkpoint_lsn = stamp.lsn
        self.recovery.checkpoint_keys = len(self._mem)
        self.recovery.last_lsn = stamp.lsn

    def _replay_wal(self) -> None:
        path = self._wal_path
        if not path.exists():
            with open(path, "wb") as handle:
                handle.write(WAL_MAGIC)
                handle.flush()
                if self.sync_mode != "never":
                    os.fsync(handle.fileno())
            return
        blob = path.read_bytes()
        report = self.recovery
        if not blob.startswith(WAL_MAGIC):
            raise StorageError(f"{path} is not a WAL (bad magic)")
        offset = len(WAL_MAGIC)
        good_end = offset
        last_lsn = self._checkpoint_lsn
        while True:
            if offset == len(blob):
                break  # clean end of log
            if offset + _FRAME.size > len(blob):
                report.torn_reason = "torn frame header"
                break
            length, crc = _FRAME.unpack_from(blob, offset)
            body_start = offset + _FRAME.size
            if body_start + length > len(blob):
                report.torn_reason = "torn record body"
                break
            payload = blob[body_start : body_start + length]
            if zlib.crc32(payload) != crc:
                report.torn_reason = "record CRC mismatch"
                break
            try:
                stamp, batch = _decode_batch(payload)
            except StorageError as exc:
                report.torn_reason = f"undecodable record ({exc})"
                break
            if stamp.lsn <= self._checkpoint_lsn:
                # Pre-checkpoint record left behind by a crash between
                # the checkpoint rename and the WAL swap: already in the
                # image, skip it.
                report.skipped_batches += 1
            elif stamp.lsn != last_lsn + 1:
                report.torn_reason = (
                    f"LSN gap (expected {last_lsn + 1}, found {stamp.lsn})"
                )
                break
            else:
                self._mem.apply(
                    batch,
                    stamp.schema_generation,
                    stamp.statistics_generation,
                    stamp.ticket,
                )
                self._mem.set_stamp(stamp)
                last_lsn = stamp.lsn
                report.replayed_batches += 1
                report.replayed_ops += len(batch)
            offset = body_start + length
            good_end = offset
        report.last_lsn = last_lsn
        if good_end != len(blob):
            report.truncated_at = good_end
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                if self.sync_mode != "never":
                    os.fsync(handle.fileno())

    # -- point/range reads (memtable) -----------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        return self._mem.get(key)

    def range_scan(self, start=None, end=None, reverse=False):
        return self._mem.range_scan(start, end, reverse)

    # -- commits --------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError(f"engine over {self.root} is closed")

    def apply(
        self,
        batch: WriteBatch,
        schema_generation: int = 0,
        statistics_generation: int = 0,
        ticket: int = 0,
    ) -> CommitStamp:
        self._require_open()
        stamp = CommitStamp(
            lsn=self._mem.last_stamp().lsn + 1,
            schema_generation=schema_generation,
            statistics_generation=statistics_generation,
            ticket=ticket,
        )
        record = _frame(_encode_batch(batch, stamp))
        self._wal.write(record)
        self._wal.flush()
        if self.sync_mode == "commit":
            os.fsync(self._wal.fileno())
        self._wal_offset += len(record)
        self._mem.apply(
            batch, schema_generation, statistics_generation, ticket
        )
        self._mem.set_stamp(stamp)
        return stamp

    def sync(self) -> None:
        self._require_open()
        self._wal.flush()
        if self.sync_mode != "never":
            os.fsync(self._wal.fileno())

    def wal_size(self) -> int:
        """Bytes written to the current WAL (header + committed records)."""
        return self._wal_offset

    # -- checkpointing --------------------------------------------------

    def checkpoint(self) -> CommitStamp:
        """Write the full memtable image and start a fresh WAL."""
        self._require_open()
        self.sync()
        stamp = self._mem.last_stamp()
        snapshot = WriteBatch()
        for key, value in self._mem.range_scan():
            snapshot.put(key, value)
        payload = _encode_batch(snapshot, stamp)
        do_sync = self.sync_mode != "never"
        _write_atomically(
            self._ckp_path, CKP_MAGIC + _frame(payload), do_sync
        )
        # Swap in an empty WAL; a crash before this rename leaves the
        # old one, whose records replay as skips (lsn <= checkpoint).
        self._wal.close()
        _write_atomically(self._wal_path, WAL_MAGIC, do_sync)
        self._wal = open(self._wal_path, "ab")
        self._wal_offset = len(WAL_MAGIC)
        self._checkpoint_lsn = stamp.lsn
        return stamp

    def close(self) -> None:
        if self._closed:
            return
        self._wal.flush()
        if self.sync_mode != "never":
            os.fsync(self._wal.fileno())
        self._wal.close()
        self._closed = True

    # -- introspection --------------------------------------------------

    def last_stamp(self) -> CommitStamp:
        return self._mem.last_stamp()

    def __len__(self) -> int:
        return len(self._mem)

    def status(self):
        info = super().status()
        info.update(
            {
                "path": str(self.root),
                "sync": self.sync_mode,
                "wal_bytes": self._wal_offset,
                "checkpoint_lsn": self._checkpoint_lsn,
            }
        )
        return info
