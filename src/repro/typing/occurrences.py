"""The normalized query form the §6.2 definitions operate on.

§6.2 fixes a simplified fragment: "the WHERE clause is a conjunction ...
the SELECT clause is a list of variables ... each path expression has only
v-selectors, g-selectors, and method names".  Two rewritings bring queries
into the normal form the definitions assume:

* footnote 13 — a comparison side that is a non-trivial path must end in a
  v-selector: a trailing g-selector is pulled out into the comparison and
  the path becomes a separate conjunct; a missing trailing selector gets a
  fresh v-selector;
* "we assume that all selectors Sel_i appear (this assumption can be
  easily satisfied by adding new distinct v-selectors wherever selectors
  are originally missing)".

Aggregate operands are normalized the same way (their argument path
becomes a conjunct; the aggregate side is treated as a numeral).  Queries
outside the fragment — disjunction, negation, updates, method variables in
method-expression role, path variables — raise
:class:`TypingUnsupportedError`, matching the paper's explicit scoping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.errors import TypingError
from repro.oid import Atom, Oid, Variable, VarSort
from repro.xsql import ast

__all__ = [
    "TypingUnsupportedError",
    "MethodOccurrence",
    "TypedPath",
    "CompSide",
    "TypedComparison",
    "TypedQuery",
    "build_typed_query",
    "flatten_conjunction",
]


class TypingUnsupportedError(TypingError):
    """The query lies outside the §6.2 conjunctive typed fragment."""


Term = Union[Oid, Variable]


@dataclass(frozen=True)
class MethodOccurrence:
    """One occurrence of a method name in the WHERE clause."""

    path_index: int
    position: int  # 1-based step index within the path
    method: Atom
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        if self.args:
            inner = ", ".join(str(a) for a in self.args)
            return f"{self.method}@{inner}#p{self.path_index}.{self.position}"
        return f"{self.method}#p{self.path_index}.{self.position}"


@dataclass(frozen=True)
class TypedPath:
    """A normalized path: every selector present, methods ground names."""

    index: int
    selectors: Tuple[Term, ...]  # Sel_0 .. Sel_m
    occurrences: Tuple[MethodOccurrence, ...]  # mthd_1 .. mthd_m

    def __str__(self) -> str:
        parts = [str(self.selectors[0])]
        for occ, sel in zip(self.occurrences, self.selectors[1:]):
            parts.append(f"{occ.method}[{sel}]")
        return ".".join(parts)


@dataclass(frozen=True)
class CompSide:
    """One side of a normalized comparison.

    ``kind`` is ``'term'`` (an oid or the tail v-selector of a path) or
    ``'numeral'`` (the result of an aggregate — always a numeral object).
    """

    kind: str
    term: Optional[Term] = None


@dataclass(frozen=True)
class TypedComparison:
    op: str
    left: CompSide
    right: CompSide


@dataclass
class TypedQuery:
    """The typing view of a query: paths, comparisons, FROM constraints.

    ``path_sources[i]`` is the index of the original WHERE conjunct that
    path ``i`` came from, or ``None`` for paths manufactured by the
    footnote-13 / aggregate normalization; the Theorem 6.1 optimizer uses
    it to reorder the original conjuncts along a coherent plan.
    """

    paths: Tuple[TypedPath, ...]
    comparisons: Tuple[TypedComparison, ...]
    from_types: Dict[Variable, Tuple[Atom, ...]]
    select_terms: Tuple[Term, ...]
    path_sources: Tuple[Optional[int], ...] = ()

    def all_occurrences(self) -> List[MethodOccurrence]:
        return [occ for path in self.paths for occ in path.occurrences]

    def variables(self) -> FrozenSet[Variable]:
        found: set = set()
        for path in self.paths:
            for sel in path.selectors:
                if isinstance(sel, Variable):
                    found.add(sel)
            for occ in path.occurrences:
                for arg in occ.args:
                    if isinstance(arg, Variable):
                        found.add(arg)
        for comp in self.comparisons:
            for side in (comp.left, comp.right):
                if side.kind == "term" and isinstance(side.term, Variable):
                    found.add(side.term)
        found.update(self.from_types)
        for term in self.select_terms:
            if isinstance(term, Variable):
                found.add(term)
        return frozenset(found)


class _Builder:
    def __init__(self) -> None:
        self._paths: List[TypedPath] = []
        self._comparisons: List[TypedComparison] = []
        self._sources: List[Optional[int]] = []
        self._current_source: Optional[int] = None
        self._fresh = 0

    def fresh_var(self) -> Variable:
        self._fresh += 1
        return Variable(f"_t{self._fresh}")

    # ------------------------------------------------------------------

    def add_path(self, path: ast.PathExpr) -> TypedPath:
        selectors: List[Term] = [self._check_selector(path.head)]
        occurrences: List[MethodOccurrence] = []
        index = len(self._paths)
        for position, step in enumerate(path.steps, start=1):
            method = step.method_expr.method
            if isinstance(method, Variable):
                if method.sort == VarSort.PATH:
                    raise TypingUnsupportedError(
                        "path variables are outside the typed fragment"
                    )
                raise TypingUnsupportedError(
                    "method variables cannot appear in the role of method "
                    "expressions in the typed fragment (§6.2)"
                )
            args = tuple(
                self._check_selector(arg) for arg in step.method_expr.args
            )
            occurrences.append(
                MethodOccurrence(index, position, method, args)
            )
            if step.selector is None:
                selectors.append(self.fresh_var())
            else:
                selectors.append(self._check_selector(step.selector))
        typed = TypedPath(index, tuple(selectors), tuple(occurrences))
        self._paths.append(typed)
        self._sources.append(self._current_source)
        return typed

    @staticmethod
    def _check_selector(node: object) -> Term:
        if isinstance(node, (Oid, Variable)):
            return node
        raise TypingUnsupportedError(
            f"id-term selectors such as {node} are outside the typed "
            f"fragment (§6.2)"
        )

    # ------------------------------------------------------------------

    def side_of_operand(self, operand: ast.Operand) -> CompSide:
        """Normalize one comparison side (footnote 13)."""
        if isinstance(operand, ast.PathOperand):
            path = operand.path
            if path.is_trivial:
                return CompSide("term", self._check_selector(path.head))
            last = path.steps[-1]
            if last.selector is None:
                fresh = self.fresh_var()
                steps = path.steps[:-1] + (
                    ast.Step(last.method_expr, fresh),
                )
                self.add_path(ast.PathExpr(path.head, steps))
                return CompSide("term", fresh)
            # Ends in a selector: pull it out, keep the path as a conjunct.
            self.add_path(path)
            return CompSide("term", self._check_selector(last.selector))
        if isinstance(operand, ast.AggOperand):
            path = operand.path
            if path.steps:
                last = path.steps[-1]
                if last.selector is None:
                    fresh = self.fresh_var()
                    steps = path.steps[:-1] + (
                        ast.Step(last.method_expr, fresh),
                    )
                    self.add_path(ast.PathExpr(path.head, steps))
                else:
                    self.add_path(path)
            return CompSide("numeral")
        raise TypingUnsupportedError(
            f"operand {operand} is outside the typed fragment"
        )

    def add_comparison(self, cond: ast.Comparison) -> None:
        left = self.side_of_operand(cond.lhs)
        right = self.side_of_operand(cond.rhs)
        self._comparisons.append(TypedComparison(cond.op, left, right))

    # ------------------------------------------------------------------

    def visit_conjuncts(self, conjuncts: Sequence[ast.Cond]) -> None:
        for position, cond in enumerate(conjuncts):
            if isinstance(cond, ast.PathCond):
                self._current_source = position
                self.add_path(cond.path)
                self._current_source = None
            elif isinstance(cond, ast.Comparison):
                self.add_comparison(cond)
            elif isinstance(cond, ast.SchemaCond):
                # Schema-browsing predicates range over class-objects;
                # they carry no data-level typing obligations in §6.2.
                pass
            else:
                raise TypingUnsupportedError(
                    f"{type(cond).__name__} is outside the conjunctive "
                    f"typed fragment (§6.2 considers conjunctions only)"
                )


def flatten_conjunction(cond: Optional[ast.Cond]) -> List[ast.Cond]:
    """Flatten nested AndConds into one conjunct list (order-preserving)."""
    if cond is None:
        return []
    if isinstance(cond, ast.AndCond):
        items: List[ast.Cond] = []
        for item in cond.items:
            items.extend(flatten_conjunction(item))
        return items
    return [cond]


def build_typed_query(query: ast.Query) -> TypedQuery:
    """Bring *query* into the §6.2 normal form for type analysis."""
    builder = _Builder()
    from_types: Dict[Variable, List[Atom]] = {}
    for decl in query.from_:
        if isinstance(decl.cls, Variable):
            raise TypingUnsupportedError(
                "class variables in FROM are outside the typed fragment"
            )
        from_types.setdefault(decl.var, []).append(decl.cls)
    if query.where is not None:
        builder.visit_conjuncts(flatten_conjunction(query.where))
    select_terms: List[Term] = []
    for item in query.select:
        if isinstance(item, ast.PathItem) and item.path.is_trivial:
            head = item.path.head
            if isinstance(head, (Oid, Variable)):
                select_terms.append(head)
                continue
        raise TypingUnsupportedError(
            "the typed fragment assumes the SELECT clause is a list of "
            "variables (§6.2)"
        )
    return TypedQuery(
        paths=tuple(builder._paths),
        comparisons=tuple(builder._comparisons),
        from_types={v: tuple(cs) for v, cs in from_types.items()},
        select_terms=tuple(select_terms),
        path_sources=tuple(builder._sources),
    )
