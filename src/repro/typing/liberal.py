"""Liberal well-typing (§6.2).

"We define a query to be liberally well-typed if there is (at least) one
valid and complete type assignment A, such that for each variable X (of
the WHERE clause) the range A(X) is not empty."

Liberal typing is metalogical: it never blocks evaluation, but "if a
preliminary (liberal) type analysis shows that a query is ill-typed then
it is guaranteed that this query returns no answers regardless of the
database contents."
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional

from repro.datamodel.store import ObjectStore
from repro.errors import TypingError
from repro.typing.assignments import (
    TypeAssignment,
    candidate_type_exprs,
    is_valid_assignment,
)
from repro.typing.occurrences import TypedQuery

__all__ = [
    "complete_assignments",
    "find_liberal_assignment",
    "is_liberally_well_typed",
]

#: Guard against combinatorial blow-up of the assignment search space.
MAX_ASSIGNMENTS = 200_000


def complete_assignments(
    typed_query: TypedQuery, store: ObjectStore
) -> Iterator[TypeAssignment]:
    """All complete assignments built from per-occurrence candidates."""
    occurrences = typed_query.all_occurrences()
    candidate_lists = []
    total = 1
    for occ in occurrences:
        candidates = candidate_type_exprs(store, occ)
        if not candidates:
            return  # some occurrence possesses no type: nothing complete
        candidate_lists.append(candidates)
        total *= len(candidates)
        if total > MAX_ASSIGNMENTS:
            raise TypingError(
                f"type-assignment search space exceeds {MAX_ASSIGNMENTS}"
            )
    for combo in itertools.product(*candidate_lists):
        yield TypeAssignment.of(dict(zip(occurrences, combo)))


def find_liberal_assignment(
    typed_query: TypedQuery, store: ObjectStore
) -> Optional[TypeAssignment]:
    """A witnessing valid, complete, non-empty-range assignment (or None)."""
    for assignment in complete_assignments(typed_query, store):
        if not is_valid_assignment(assignment, typed_query, store):
            continue
        ranges = assignment.all_ranges(typed_query)
        if any(r.is_empty(store.hierarchy) for r in ranges.values()):
            continue
        return assignment
    return None


def is_liberally_well_typed(
    typed_query: TypedQuery, store: ObjectStore
) -> bool:
    """The §6.2 liberal judgement: some valid, complete, non-empty-range
    assignment exists."""
    return find_liberal_assignment(typed_query, store) is not None
