"""The XSQL type system (paper §6).

Implements the full spectrum of well-typing notions:

* **liberal well-typing** — some valid, complete type assignment gives
  every variable a non-empty range (§6.2);
* **strict well-typing** — additionally, an execution plan exists that is
  *coherent* with the assignment: every method's arguments are bound to
  appropriately-typed oids by the time it is evaluated;
* **well-typing with exemptions** — selected argument positions are
  excused from the coherence test, interpolating between the liberal
  (everything exempt) and conservative (nothing exempt) extremes.

:func:`analyze` produces a :class:`~repro.typing.analysis.TypingReport`
for a query; :class:`~repro.typing.optimizer.TypedEvaluator` exploits a
coherent pair per Theorem 6.1, restricting each v-selector's
instantiations to the extent of its range.
"""

from repro.typing.occurrences import TypedQuery, build_typed_query
from repro.typing.ranges import Range
from repro.typing.assignments import (
    TypeAssignment,
    candidate_type_exprs,
    is_valid_assignment,
)
from repro.typing.plans import ExecutionPlan, all_plans
from repro.typing.liberal import find_liberal_assignment, is_liberally_well_typed
from repro.typing.strict import (
    Exemptions,
    find_coherent_pair,
    is_coherent,
    is_strictly_well_typed,
    minimal_exemptions,
)
from repro.typing.analysis import TypingReport, analyze
from repro.typing.optimizer import TypedEvaluator
from repro.typing.inference import (
    InferredSignature,
    infer_signatures,
    install_inferred,
)

__all__ = [
    "TypedQuery",
    "build_typed_query",
    "Range",
    "TypeAssignment",
    "candidate_type_exprs",
    "is_valid_assignment",
    "ExecutionPlan",
    "all_plans",
    "find_liberal_assignment",
    "is_liberally_well_typed",
    "Exemptions",
    "find_coherent_pair",
    "is_coherent",
    "is_strictly_well_typed",
    "minimal_exemptions",
    "TypingReport",
    "analyze",
    "TypedEvaluator",
    "InferredSignature",
    "infer_signatures",
    "install_inferred",
]
