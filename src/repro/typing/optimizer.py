"""The Theorem 6.1 optimizer: typed, range-restricted evaluation.

Theorem 6.1: for a strictly well-typed query with coherent pair (A, P),

1. evaluating with respect to any coherent plan yields the same result;
2. "it suffices to consider only those instantiations o of X such that
   o ∈ A(X), for every v-selector X in Q."

"This potentially very powerful optimization is not possible with untyped
queries and is not always possible even with queries that are liberally
(but not strictly) well-typed."

:class:`TypedEvaluator` realizes both halves: it reorders the WHERE
conjuncts along the coherent plan and instantiates each variable only from
the intersection of the extents of its range classes.  The test suite
checks result-equality against the untyped evaluator; the benchmark
harness measures the speedup as the database grows.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.datamodel.hierarchy import OBJECT_CLASS
from repro.datamodel.store import ObjectStore
from repro.errors import IllTypedQueryError
from repro.oid import Oid, Variable
from repro.typing.analysis import TypingReport, analyze
from repro.typing.assignments import TypeAssignment
from repro.typing.occurrences import TypedQuery, flatten_conjunction
from repro.typing.plans import ExecutionPlan
from repro.typing.strict import Exemptions
from repro.xsql import ast
from repro.xsql.evaluator import Evaluator
from repro.xsql.result import QueryResult

__all__ = ["TypedEvaluator"]


class TypedEvaluator:
    """Evaluates strictly well-typed queries with range restriction."""

    def __init__(
        self,
        store: ObjectStore,
        exemptions: Exemptions = Exemptions.NONE,
        id_function_instances=None,
        use_reorder: bool = True,
        use_restrictions: bool = True,
    ) -> None:
        """Both Theorem 6.1 levers are on by default.

        ``use_reorder`` applies the coherent plan's conjunct order;
        ``use_restrictions`` limits variable instantiation to range
        extents.  The flags exist for the ablation benchmarks — each lever
        alone is sound, and measuring them separately shows where the
        speedup comes from.
        """
        self.store = store
        self.exemptions = exemptions
        self._id_function_instances = id_function_instances
        self.use_reorder = use_reorder
        self.use_restrictions = use_restrictions

    # ------------------------------------------------------------------

    def plan(self, query: ast.Query) -> TypingReport:
        return analyze(query, self.store, self.exemptions)

    def run(
        self, query: ast.Query, report: Optional[TypingReport] = None
    ) -> QueryResult:
        """Evaluate *query*; raises :class:`IllTypedQueryError` otherwise.

        Pass a pre-computed *report* to amortize type analysis across
        repeated executions (the benchmark harness does).
        """
        if report is None:
            report = self.plan(query)
        if not report.strict or report.strict_witness is None:
            raise IllTypedQueryError(
                f"query is not strictly well-typed "
                f"({report.discipline()}): Theorem 6.1 does not apply"
            )
        assignment, plan = report.strict_witness
        assert report.typed_query is not None
        restrictions = (
            self.extent_restrictions(assignment, report.typed_query, query)
            if self.use_restrictions
            else None
        )
        reordered = (
            self.reorder(query, report.typed_query, plan)
            if self.use_reorder
            else query
        )
        evaluator = Evaluator(
            self.store,
            id_function_instances=self._id_function_instances,
            restrictions=restrictions,
        )
        return evaluator.run(reordered)

    # ------------------------------------------------------------------

    def extent_restrictions(
        self,
        assignment: TypeAssignment,
        typed_query: TypedQuery,
        query: ast.Query,
        skip: FrozenSet[Variable] = frozenset(),
    ) -> Dict[Variable, FrozenSet[Oid]]:
        """Per-variable instantiation sets from the ranges A(X).

        An oid is in A(X) iff it is an instance of every class of the
        range; the allowed set is the intersection of those extents.
        ``Object``-only ranges impose nothing and are skipped.

        Restrictions are an optimization, never needed for correctness
        (Theorem 6.1 part 1), so callers that already restrict a
        variable some cheaper way — e.g. the cost pipeline's index
        probes — may list it in ``skip`` to avoid the extent scans.
        """
        query_vars = set(ast.free_variables(query))
        ranges = assignment.all_ranges(typed_query)
        restrictions: Dict[Variable, FrozenSet[Oid]] = {}
        for var, range_ in ranges.items():
            if var not in query_vars or var in skip:
                continue
            classes = [
                cls
                for cls in range_.sorted_classes()
                if cls != OBJECT_CLASS and cls in self.store.hierarchy
            ]
            if not classes:
                continue
            allowed: Optional[FrozenSet[Oid]] = None
            for cls in classes:
                extent = self.store.extent(cls)
                allowed = extent if allowed is None else allowed & extent
            if allowed is not None:
                restrictions[var] = allowed
        return restrictions

    def reorder(
        self,
        query: ast.Query,
        typed_query: TypedQuery,
        plan: ExecutionPlan,
    ) -> ast.Query:
        """Reorder WHERE conjuncts along the coherent plan.

        Path-expression conjuncts are sequenced by the plan; comparisons
        and schema conditions follow, in their original relative order
        (their variables are bound by then — that is exactly what
        coherence guarantees).  Reordering a pure conjunction never
        changes the declarative §3.4 semantics.
        """
        conjuncts = flatten_conjunction(query.where)
        if not conjuncts:
            return query
        source_by_plan: List[int] = []
        for path_index in plan.order:
            source = typed_query.path_sources[path_index]
            if source is not None and source not in source_by_plan:
                source_by_plan.append(source)
        path_positions = set(source_by_plan)
        ordered: List[ast.Cond] = [conjuncts[i] for i in source_by_plan]
        ordered.extend(
            cond
            for position, cond in enumerate(conjuncts)
            if position not in path_positions
        )
        where: ast.Cond
        if len(ordered) == 1:
            where = ordered[0]
        else:
            where = ast.AndCond(tuple(ordered))
        return ast.Query(
            select=query.select,
            from_=query.from_,
            where=where,
            oid_vars=query.oid_vars,
            oid_scope=query.oid_scope,
        )
