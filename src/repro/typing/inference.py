"""Signature inference: discovering schema from stored data.

The §6 typing framework assumes declared signatures; databases built
bottom-up (or loaded from untyped dumps) often have none.  This module
proposes signatures by inspecting a class's instances:

* for each method observed on the instances, the result class is the most
  specific class common to every observed value (``Object`` when nothing
  narrower exists);
* arrow kind is set-valued iff any instance stores a set cell;
* argument positions are typed the same way from the observed argument
  oids.

Inference is conservative and deterministic; ``install_inferred`` declares
the proposals (skipping methods that already carry a declared signature on
the class), after which the liberal/strict analyses and the Theorem 6.1
optimizer work on previously untyped data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.datamodel.hierarchy import OBJECT_CLASS
from repro.datamodel.signatures import Signature, TypeExpr
from repro.datamodel.store import ObjectStore
from repro.oid import Atom, Oid

__all__ = ["InferredSignature", "infer_signatures", "install_inferred"]


@dataclass(frozen=True)
class InferredSignature:
    """A proposed signature plus how much evidence supports it."""

    cls: Atom
    signature: Signature
    support: int  # number of instances carrying the method

    def __str__(self) -> str:
        return f"{self.cls}: {self.signature}  (support={self.support})"


def _common_class(store: ObjectStore, values: Sequence[Oid]) -> Atom:
    """The most specific class every value belongs to."""
    hierarchy = store.hierarchy
    common: Optional[FrozenSet[Atom]] = None
    for value in values:
        classes = frozenset(
            c for c in store.classes_of(value) if c in hierarchy
        )
        common = classes if common is None else common & classes
    if not common:
        return OBJECT_CLASS
    # minimal (most specific) element; name-ordered for determinism.
    minimal = [
        c
        for c in common
        if not any(
            other != c and hierarchy.is_subclass(other, c)
            for other in common
        )
    ]
    return sorted(minimal, key=lambda a: a.name)[0]


def infer_signatures(
    store: ObjectStore, cls: Atom, min_support: int = 1
) -> List[InferredSignature]:
    """Propose signatures for *cls* from its direct instances' cells."""
    store.hierarchy.require(cls)
    # (method, arity) -> (value oids, per-position arg oids, set?, support)
    observed: Dict[Tuple[Atom, int], Dict[str, object]] = {}
    for obj in sorted(store.extent(cls, direct=True), key=str):
        record = next(
            (r for r in store.iter_records() if r.oid == obj), None
        )
        if record is None:
            continue
        seen_here = set()
        for (method, args), cell in record.entries():
            key = (method, len(args))
            entry = observed.setdefault(
                key,
                {"values": [], "args": [[] for _ in args], "set": False,
                 "support": 0},
            )
            entry["values"].extend(cell.as_set())
            for position, arg in enumerate(args):
                entry["args"][position].append(arg)
            entry["set"] = entry["set"] or cell.set_valued
            if key not in seen_here:
                entry["support"] += 1
                seen_here.add(key)
    proposals: List[InferredSignature] = []
    for (method, arity), entry in sorted(
        observed.items(), key=lambda item: (item[0][0].name, item[0][1])
    ):
        if entry["support"] < min_support or not entry["values"]:
            continue
        result = _common_class(store, entry["values"])
        arg_classes = tuple(
            _common_class(store, position_args) if position_args
            else OBJECT_CLASS
            for position_args in entry["args"]
        )
        signature = Signature(
            method,
            TypeExpr(cls, arg_classes, result, bool(entry["set"])),
        )
        proposals.append(
            InferredSignature(cls=cls, signature=signature,
                              support=int(entry["support"]))
        )
    return proposals


def install_inferred(
    store: ObjectStore, cls: Atom, min_support: int = 1
) -> List[InferredSignature]:
    """Declare the inferred signatures (skipping already-declared methods)."""
    installed: List[InferredSignature] = []
    for proposal in infer_signatures(store, cls, min_support):
        method = proposal.signature.method
        if store.declared_signatures(cls, method):
            continue
        type_expr = proposal.signature.type_expr
        store.declare_signature(
            cls,
            method,
            type_expr.result,
            args=list(type_expr.args),
            set_valued=type_expr.set_valued,
        )
        installed.append(proposal)
    return installed
