"""One-call typing analysis: liberal, strict, and witnesses.

"We discuss typing ... and show that there is more than one way of
settling the issue" (§1) — :func:`analyze` reports where a query falls on
the spectrum, with the witnessing assignment/plan when one exists, so
callers (and the Theorem 6.1 optimizer) can act on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.datamodel.store import ObjectStore
from repro.typing.assignments import TypeAssignment
from repro.typing.liberal import find_liberal_assignment
from repro.typing.occurrences import (
    TypedQuery,
    TypingUnsupportedError,
    build_typed_query,
)
from repro.typing.plans import ExecutionPlan
from repro.typing.strict import Exemptions, find_coherent_pair
from repro.xsql import ast
from repro.xsql.parser import parse_query

__all__ = ["TypingReport", "analyze"]


@dataclass
class TypingReport:
    """The outcome of typing one query."""

    typed_query: Optional[TypedQuery]
    liberal: bool
    strict: bool
    liberal_witness: Optional[TypeAssignment] = None
    strict_witness: Optional[Tuple[TypeAssignment, ExecutionPlan]] = None
    unsupported_reason: Optional[str] = None

    @property
    def in_typed_fragment(self) -> bool:
        return self.typed_query is not None

    def discipline(self) -> str:
        """Where the query lands on the §6.2 spectrum."""
        if not self.in_typed_fragment:
            return "outside-fragment"
        if self.strict:
            return "strict"
        if self.liberal:
            return "liberal-only"
        return "ill-typed"

    def summary(self) -> str:
        if not self.in_typed_fragment:
            return f"outside the typed fragment: {self.unsupported_reason}"
        lines = [f"discipline: {self.discipline()}"]
        if self.strict_witness is not None:
            assignment, plan = self.strict_witness
            lines.append(f"coherent plan: {plan}")
            for occ, expr in assignment.entries:
                lines.append(f"  {occ} : {expr}")
        elif self.liberal_witness is not None:
            for occ, expr in self.liberal_witness.entries:
                lines.append(f"  {occ} : {expr}")
        return "\n".join(lines)


def analyze(
    query: Union[str, ast.Query],
    store: ObjectStore,
    exemptions: Exemptions = Exemptions.NONE,
) -> TypingReport:
    """Type-check a query under both the liberal and strict disciplines."""
    if isinstance(query, str):
        parsed = parse_query(query)
        if not isinstance(parsed, ast.Query):
            raise TypingUnsupportedError(
                "UNION/MINUS/INTERSECT queries are typed per branch"
            )
        query = parsed
    try:
        typed_query = build_typed_query(query)
    except TypingUnsupportedError as exc:
        return TypingReport(
            typed_query=None,
            liberal=False,
            strict=False,
            unsupported_reason=str(exc),
        )
    liberal_witness = find_liberal_assignment(typed_query, store)
    strict_witness = find_coherent_pair(typed_query, store, exemptions)
    return TypingReport(
        typed_query=typed_query,
        liberal=liberal_witness is not None,
        strict=strict_witness is not None,
        liberal_witness=liberal_witness,
        strict_witness=strict_witness,
    )
