"""Variable ranges: sets of classes constraining instantiation (§6.2).

"We define the range of X with respect to A, denoted A(X), as the set
consisting of Object, all the types that A assigns to occurrences of X in
the WHERE clause, and all the types that are assigned to occurrences of X
in the FROM clause."

An oid is *within* the range iff it is an instance of every class in it.
The schema-level decision procedures:

* **emptiness** — "if A(X) contains both Person and Company, then it is
  empty".  Our criterion: the range is non-empty iff its classes share a
  common (non-strict) descendant class, i.e. some class whose instances
  would belong to all of them.
* **subrange** — "R is a subrange of a class T if every oid belonging to
  the range R is also an instance of T"; schematically, iff some class of
  R is a (non-strict) subclass of T.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from repro.datamodel.hierarchy import OBJECT_CLASS, ClassHierarchy
from repro.datamodel.store import ObjectStore
from repro.oid import Atom, Oid

__all__ = ["Range"]


@dataclass(frozen=True)
class Range:
    """A set of classes an oid must simultaneously belong to."""

    classes: FrozenSet[Atom]

    @staticmethod
    def of(classes: Iterable[Atom]) -> "Range":
        return Range(frozenset(classes) | {OBJECT_CLASS})

    def with_classes(self, classes: Iterable[Atom]) -> "Range":
        return Range(self.classes | frozenset(classes))

    def is_empty(self, hierarchy: ClassHierarchy) -> bool:
        """Could no oid ever belong to every class of this range?"""
        known = [c for c in self.classes if c in hierarchy]
        return not hierarchy.potentially_joint(known)

    def is_subrange_of(self, cls: Atom, hierarchy: ClassHierarchy) -> bool:
        """Must every member of this range be an instance of *cls*?"""
        return any(
            c in hierarchy and hierarchy.is_subclass(c, cls, strict=False)
            for c in self.classes
        )

    def contains_oid(self, oid: Oid, store: ObjectStore) -> bool:
        """Is *oid* within the range (instance of every class)?"""
        membership = store.classes_of(oid)
        return all(cls in membership for cls in self.classes)

    def sorted_classes(self) -> Tuple[Atom, ...]:
        return tuple(sorted(self.classes, key=lambda a: a.name))

    def __str__(self) -> str:
        inner = ", ".join(str(c) for c in self.sorted_classes())
        return "{" + inner + "}"
