"""Execution plans: orders over the WHERE path expressions (§6.2).

"An execution plan for a query is just a partial order on the path
expressions in the WHERE clause."  We enumerate *total* orders: if a type
assignment is coherent with some partial order, it is coherent with every
linear extension of it (linearization only adds visible occurrences, which
only grows the restriction ranges, which only makes the subrange tests
easier), so searching total orders finds a coherent pair whenever any
partial order admits one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import TypingError
from repro.typing.occurrences import TypedQuery

__all__ = ["ExecutionPlan", "all_plans"]

#: Factorial growth guard: queries in the typed fragment are small; a
#: WHERE clause with more path expressions than this gets a clear error
#: instead of a silent multi-minute search.
MAX_PATHS_FOR_ENUMERATION = 8


@dataclass(frozen=True)
class ExecutionPlan:
    """A total evaluation order of path-expression indices."""

    order: Tuple[int, ...]

    def position_of(self, path_index: int) -> int:
        return self.order.index(path_index)

    def preceding(self, path_index: int) -> Tuple[int, ...]:
        """Indices of path expressions evaluated before *path_index*."""
        position = self.position_of(path_index)
        return self.order[:position]

    def __str__(self) -> str:
        return " -> ".join(f"p{i}" for i in self.order)


def all_plans(typed_query: TypedQuery) -> Iterator[ExecutionPlan]:
    """Every total order over the query's path expressions."""
    count = len(typed_query.paths)
    if count > MAX_PATHS_FOR_ENUMERATION:
        raise TypingError(
            f"plan enumeration over {count} path expressions exceeds the "
            f"{MAX_PATHS_FOR_ENUMERATION}-path limit"
        )
    for order in itertools.permutations(range(count)):
        yield ExecutionPlan(tuple(order))
