"""Strict well-typing, coherence, and exemptions (§6.2).

A query is *strictly* well-typed when a valid, complete assignment A and
an execution plan P exist such that — evaluating path expressions in plan
order, left to right within a path — every method occurrence finds its
(variable) arguments and scope selector already restricted to oids of the
expected types.  The check uses the *restriction* A' of A to the
occurrences already evaluated, and the subrange test of §6.2.

"Whenever desired, we can exempt arguments of certain method occurrences
from the second test ... the liberal and the conservative notions of
well-typing are just the two extremes of the notion of well-typing with
exemptions."  Exemption keys name a method and an argument index (0 = the
scope argument, 1..k = the explicit arguments), optionally pinned to one
occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.datamodel.store import ObjectStore
from repro.oid import Atom, Oid, Variable
from repro.typing.assignments import TypeAssignment, is_valid_assignment
from repro.typing.liberal import complete_assignments
from repro.typing.occurrences import MethodOccurrence, TypedQuery
from repro.typing.plans import ExecutionPlan, all_plans
from repro.typing.ranges import Range

__all__ = [
    "Exemptions",
    "coherence_failure",
    "is_coherent",
    "find_coherent_pair",
    "is_strictly_well_typed",
]


@dataclass(frozen=True)
class Exemptions:
    """Argument positions excused from the coherence test.

    ``by_method`` entries are ``(method name, argument index)`` pairs that
    exempt every occurrence of the method — the paper's Nobel-prize fix
    "exempt the 0-th argument of WonNobelPrize" is
    ``Exemptions.for_method("WonNobelPrize", 0)``.  ``by_occurrence``
    entries pin the exemption to one syntactic occurrence.
    """

    by_method: FrozenSet[Tuple[str, int]] = frozenset()
    by_occurrence: FrozenSet[Tuple[int, int, int]] = frozenset()

    NONE: "Exemptions" = None  # type: ignore[assignment]

    @staticmethod
    def for_method(method: str, arg_index: int) -> "Exemptions":
        return Exemptions(by_method=frozenset({(method, arg_index)}))

    @staticmethod
    def all_of(parts: Iterable["Exemptions"]) -> "Exemptions":
        by_method: Set[Tuple[str, int]] = set()
        by_occurrence: Set[Tuple[int, int, int]] = set()
        for part in parts:
            by_method |= part.by_method
            by_occurrence |= part.by_occurrence
        return Exemptions(frozenset(by_method), frozenset(by_occurrence))

    def exempts(self, occ: MethodOccurrence, arg_index: int) -> bool:
        if (occ.method.name, arg_index) in self.by_method:
            return True
        return (
            occ.path_index,
            occ.position,
            arg_index,
        ) in self.by_occurrence


Exemptions.NONE = Exemptions()


def _restricted_range(
    restriction: TypeAssignment,
    var: Variable,
    typed_query: TypedQuery,
) -> Range:
    """A'(X): range of X under the restricted assignment."""
    return restriction.range_of(var, typed_query)


def coherence_failure(
    assignment: TypeAssignment,
    plan: ExecutionPlan,
    typed_query: TypedQuery,
    store: ObjectStore,
    exemptions: Exemptions = Exemptions.NONE,
) -> Optional[str]:
    """None if (A, P) are coherent; otherwise the first failing obligation."""
    assigned = assignment.as_dict()
    hierarchy = store.hierarchy
    for path_index in plan.order:
        path = typed_query.paths[path_index]
        earlier_paths = set(plan.preceding(path_index))
        for occ in path.occurrences:
            expr = assigned.get(occ)
            if expr is None:
                return f"{occ} has no assigned type (assignment incomplete)"
            visible: List[MethodOccurrence] = [
                other
                for other in typed_query.all_occurrences()
                if other.path_index in earlier_paths
                or (
                    other.path_index == path_index
                    and other.position < occ.position
                )
            ]
            restriction = assignment.restrict_to(visible)
            # (a) variable arguments must be subranges of expected types.
            for arg_index, (arg, expected) in enumerate(
                zip(occ.args, expr.args), start=1
            ):
                if not isinstance(arg, Variable):
                    continue
                if exemptions.exempts(occ, arg_index):
                    continue
                arg_range = _restricted_range(restriction, arg, typed_query)
                if not arg_range.is_subrange_of(expected, hierarchy):
                    return (
                        f"{occ}: argument {arg} has range {arg_range}, not "
                        f"a subrange of {expected}"
                    )
            # (b) the scope selector must be a subrange of the scope type.
            scope_sel = path.selectors[occ.position - 1]
            if isinstance(scope_sel, Variable) and not exemptions.exempts(
                occ, 0
            ):
                scope_range = _restricted_range(
                    restriction, scope_sel, typed_query
                )
                if not scope_range.is_subrange_of(expr.scope, hierarchy):
                    return (
                        f"{occ}: scope {scope_sel} has range {scope_range}, "
                        f"not a subrange of {expr.scope}"
                    )
    return None


def is_coherent(
    assignment: TypeAssignment,
    plan: ExecutionPlan,
    typed_query: TypedQuery,
    store: ObjectStore,
    exemptions: Exemptions = Exemptions.NONE,
) -> bool:
    """True iff the pair (A, P) passes every §6.2 coherence obligation."""
    return (
        coherence_failure(assignment, plan, typed_query, store, exemptions)
        is None
    )


def find_coherent_pair(
    typed_query: TypedQuery,
    store: ObjectStore,
    exemptions: Exemptions = Exemptions.NONE,
) -> Optional[Tuple[TypeAssignment, ExecutionPlan]]:
    """Search for a valid, complete assignment coherent with some plan."""
    plans = list(all_plans(typed_query))
    for assignment in complete_assignments(typed_query, store):
        if not is_valid_assignment(assignment, typed_query, store):
            continue
        ranges = assignment.all_ranges(typed_query)
        if any(r.is_empty(store.hierarchy) for r in ranges.values()):
            continue
        for plan in plans:
            if is_coherent(assignment, plan, typed_query, store, exemptions):
                return assignment, plan
    return None


def is_strictly_well_typed(
    typed_query: TypedQuery,
    store: ObjectStore,
    exemptions: Exemptions = Exemptions.NONE,
) -> bool:
    """The §6.2 strict judgement: some coherent (A, P) pair exists."""
    return find_coherent_pair(typed_query, store, exemptions) is not None


def minimal_exemptions(
    typed_query: TypedQuery,
    store: ObjectStore,
    max_size: int = 3,
) -> Optional[Exemptions]:
    """The smallest exemption set that makes the query strictly typed.

    Realizes the paper's "well-typing with exemptions" as a tool: rather
    than asking the user to guess which argument to exempt (as the Nobel
    example does by hand), search the argument positions occurring in the
    query for a minimum-cardinality set under which a coherent pair
    exists.  Returns ``None`` when no exemption set of at most *max_size*
    positions helps (e.g. the query is ill-typed for range reasons, which
    no exemption repairs).
    """
    import itertools

    if find_coherent_pair(typed_query, store) is not None:
        return Exemptions.NONE
    positions: List[Tuple[str, int]] = []
    for occ in typed_query.all_occurrences():
        for arg_index in range(len(occ.args) + 1):  # 0 = scope argument
            key = (occ.method.name, arg_index)
            if key not in positions:
                positions.append(key)
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(positions, size):
            candidate = Exemptions(by_method=frozenset(combo))
            if find_coherent_pair(typed_query, store, candidate) is not None:
                return candidate
    return None
