"""Type assignments and their validity (§6.2).

"A type assignment A to a given query is an assignment of at most one type
expression to each occurrence of a method name in the WHERE clause."  The
assignment *forces* types onto selectors and arguments; a variable's range
collects everything forced on its occurrences plus its FROM classes and
``Object``.

Candidate enumeration.  A valid assignment must assign each occurrence a
type expression *possessed* by the method — the upward closure of the
declared expressions under the supertype order (§6.1).  The closure is
infinite, but only two directions of movement exist: narrowing
scope/argument classes to subclasses (which can never repair validity or
coherence — it only tightens instance checks and subrange obligations) and
broadening the result class to superclasses (which can repair range
emptiness).  Enumerating the declared expressions together with their
result-superclass generalizations is therefore complete for both the
liberal and the strict analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.datamodel.catalogue import NUMERAL, STRING
from repro.datamodel.signatures import TypeExpr
from repro.datamodel.store import ObjectStore
from repro.oid import Atom, Oid, Variable
from repro.typing.occurrences import (
    CompSide,
    MethodOccurrence,
    TypedComparison,
    TypedQuery,
)
from repro.typing.ranges import Range

__all__ = [
    "TypeAssignment",
    "candidate_type_exprs",
    "is_valid_assignment",
    "validity_failure",
]

Term = Union[Oid, Variable]


def candidate_type_exprs(
    store: ObjectStore, occurrence: MethodOccurrence
) -> List[TypeExpr]:
    """Possessed type expressions worth assigning to *occurrence*.

    Declared expressions of matching arity, plus each with the result
    generalized to its (non-strict) superclasses (see the module docstring
    for the completeness argument).
    """
    hierarchy = store.hierarchy
    candidates: List[TypeExpr] = []
    for declared in store.all_type_exprs(occurrence.method):
        if declared.arity != len(occurrence.args):
            continue
        # The declared expression first (tightest constraints), then its
        # result generalizations — the search finds precise witnesses
        # before falling back to loosened ones.
        results = [declared.result] + sorted(
            hierarchy.superclasses(declared.result, strict=True),
            key=lambda a: a.name,
        )
        for result in results:
            variant = TypeExpr(
                declared.scope, declared.args, result, declared.set_valued
            )
            if variant not in candidates:
                candidates.append(variant)
    return candidates


@dataclass(frozen=True)
class TypeAssignment:
    """A (possibly partial) mapping from method occurrences to types."""

    entries: Tuple[Tuple[MethodOccurrence, TypeExpr], ...]

    @staticmethod
    def of(mapping: Dict[MethodOccurrence, TypeExpr]) -> "TypeAssignment":
        return TypeAssignment(
            tuple(sorted(mapping.items(), key=lambda kv: str(kv[0])))
        )

    def as_dict(self) -> Dict[MethodOccurrence, TypeExpr]:
        return dict(self.entries)

    def type_of(self, occurrence: MethodOccurrence) -> Optional[TypeExpr]:
        for occ, expr in self.entries:
            if occ == occurrence:
                return expr
        return None

    def is_complete_for(self, typed_query: TypedQuery) -> bool:
        assigned = {occ for occ, _expr in self.entries}
        return all(
            occ in assigned for occ in typed_query.all_occurrences()
        )

    def restrict_to(
        self, visible: Iterable[MethodOccurrence]
    ) -> "TypeAssignment":
        """The restriction A' of §6.2: keep only *visible* occurrences."""
        keep = set(visible)
        return TypeAssignment(
            tuple((occ, expr) for occ, expr in self.entries if occ in keep)
        )

    # ------------------------------------------------------------------
    # forced types and ranges
    # ------------------------------------------------------------------

    def forced_types(
        self, typed_query: TypedQuery
    ) -> Dict[Term, List[Atom]]:
        """Types this assignment forces onto selectors and arguments.

        "If mthd_i is assigned T_i0, T_i1, ..., T_ik ~> R_i, then A_ij is
        assigned T_ij, Sel_{i-1} is assigned T_i0, and Sel_i is assigned
        R_i."
        """
        forced: Dict[Term, List[Atom]] = {}

        def push(term: Term, cls: Atom) -> None:
            forced.setdefault(term, []).append(cls)

        assigned = self.as_dict()
        for path in typed_query.paths:
            for occ in path.occurrences:
                expr = assigned.get(occ)
                if expr is None:
                    continue
                for arg, cls in zip(occ.args, expr.args):
                    push(arg, cls)
                push(path.selectors[occ.position - 1], expr.scope)
                push(path.selectors[occ.position], expr.result)
        return forced

    def range_of(
        self, var: Variable, typed_query: TypedQuery
    ) -> Range:
        """The range A(X) of §6.2 (Object + forced + FROM types)."""
        forced = self.forced_types(typed_query)
        classes: List[Atom] = list(forced.get(var, []))
        classes.extend(typed_query.from_types.get(var, ()))
        return Range.of(classes)

    def all_ranges(
        self, typed_query: TypedQuery
    ) -> Dict[Variable, Range]:
        forced = self.forced_types(typed_query)
        ranges: Dict[Variable, Range] = {}
        for var in typed_query.variables():
            classes: List[Atom] = list(forced.get(var, []))
            classes.extend(typed_query.from_types.get(var, ()))
            ranges[var] = Range.of(classes)
        return ranges


# ----------------------------------------------------------------------
# validity (§6.2 "We say that a type assignment A is valid if ...")
# ----------------------------------------------------------------------

_ORDER_OPS = frozenset({"<", "<=", ">", ">="})


def _possessed(
    store: ObjectStore, occurrence: MethodOccurrence, expr: TypeExpr
) -> bool:
    """Is *expr* possessed by the occurrence's method (§6.1)?"""
    if expr.arity != len(occurrence.args):
        return False
    return any(
        expr.is_supertype_of(declared, store.hierarchy)
        for declared in store.all_type_exprs(occurrence.method)
        if declared.arity == expr.arity
    )


def _side_is_orderable(
    side: CompSide,
    domain: Atom,
    ranges: Dict[Variable, Range],
    store: ObjectStore,
) -> bool:
    if side.kind == "numeral":
        return domain == NUMERAL
    term = side.term
    if isinstance(term, Oid):
        return store.is_instance(term, domain)
    range_ = ranges.get(term)
    if range_ is None:
        return False
    return range_.is_subrange_of(domain, store.hierarchy)


def _comparison_well_defined(
    comp: TypedComparison,
    ranges: Dict[Variable, Range],
    store: ObjectStore,
) -> bool:
    """Is the comparison well defined for every pair in the ranges?

    Equality and the set comparators apply to arbitrary objects; the
    ordering comparators need both sides to be numerals (or both strings).
    """
    if comp.op not in _ORDER_OPS:
        return True
    for domain in (NUMERAL, STRING):
        if _side_is_orderable(
            comp.left, domain, ranges, store
        ) and _side_is_orderable(comp.right, domain, ranges, store):
            return True
    return False


def validity_failure(
    assignment: TypeAssignment,
    typed_query: TypedQuery,
    store: ObjectStore,
) -> Optional[str]:
    """None if the assignment is valid; otherwise a human-readable reason."""
    assigned = assignment.as_dict()
    for path in typed_query.paths:
        for occ in path.occurrences:
            expr = assigned.get(occ)
            if expr is None:
                continue
            if not _possessed(store, occ, expr):
                return f"{occ}: {expr} is not possessed by {occ.method}"
    forced = assignment.forced_types(typed_query)
    for term, classes in forced.items():
        if isinstance(term, Oid):
            for cls in classes:
                if not store.is_instance(term, cls):
                    return f"oid {term} is assigned type {cls} but is not an instance"
    ranges = assignment.all_ranges(typed_query)
    for comp in typed_query.comparisons:
        if not _comparison_well_defined(comp, ranges, store):
            return (
                f"comparison {comp.left.term} {comp.op} {comp.right.term} "
                f"is not well defined for the assigned ranges"
            )
    return None


def is_valid_assignment(
    assignment: TypeAssignment,
    typed_query: TypedQuery,
    store: ObjectStore,
) -> bool:
    """True iff the assignment satisfies every §6.2 validity condition."""
    return validity_failure(assignment, typed_query, store) is None
