"""XSQL: a reproduction of *Querying Object-Oriented Databases*
(Kifer, Kim, Sagiv; ACM SIGMOD 1992).

The package implements the paper end to end:

* :mod:`repro.datamodel` — the object-oriented data model of §2 (classes
  as objects, attributes as 0-ary methods, behavioral and structural
  inheritance, first-class relations);
* :mod:`repro.xsql` — the XSQL language of §3–§5 (extended path
  expressions, quantified comparisons, aggregates, schema browsing,
  object-creating queries, query-defined and update methods);
* :mod:`repro.views` — id-functions and views of §4;
* :mod:`repro.typing` — the typing framework of §6 (liberal/strict/
  exemption-based well-typing, execution plans, the Theorem 6.1 optimizer);
* :mod:`repro.flogic` — the F-logic kernel grounding the semantics
  (Theorem 3.1);
* :mod:`repro.relational` — a small relational baseline engine;
* :mod:`repro.schema` / :mod:`repro.workloads` — the Figure 1 schema, the
  paper's instance database, and synthetic workload generators.

Quickstart::

    from repro import Session
    from repro.schema.figure1 import build_figure1_schema
    from repro.workloads.paper_db import populate_paper_database

    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)
    result = session.query(
        "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"
    )
    print(result.pretty())
"""

from repro.datamodel import ObjectStore, PythonMethod
from repro.errors import XsqlError
from repro.metrics import SessionMetrics
from repro.oid import NIL, Atom, FuncOid, Oid, Value, Variable, VarSort
from repro.xsql import CompiledQuery, QueryResult, Session

__version__ = "1.0.0"

__all__ = [
    "Session",
    "CompiledQuery",
    "SessionMetrics",
    "ObjectStore",
    "QueryResult",
    "PythonMethod",
    "Atom",
    "Value",
    "FuncOid",
    "Oid",
    "Variable",
    "VarSort",
    "NIL",
    "XsqlError",
    "__version__",
]
