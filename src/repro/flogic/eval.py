"""Evaluation of conjunctive F-logic queries by backtracking unification.

Atoms are solved left-to-right; a :class:`DataAtom` pattern unifies
against the exported data facts (indexed by method when the method term is
ground), ``IsaAtom``/``SubclassAtom`` are solved against the store's
membership and hierarchy closures, and ``BuiltinAtom`` comparisons are
tested once both sides are ground.

This is deliberately the textbook procedure: the point of the kernel is to
be an executable specification for Theorem 3.1, not a fast engine — the
native evaluator is the fast path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.errors import QueryError
from repro.flogic.database import FlogicDatabase
from repro.flogic.molecules import (
    Atom_,
    BuiltinAtom,
    DataAtom,
    FlogicQuery,
    IsaAtom,
    SubclassAtom,
)
from repro.oid import Oid, Term, Variable, term_sort_key
from repro.xsql.comparisons import element_compare

__all__ = ["evaluate", "solve"]

Bindings = Dict[Variable, Oid]


def _resolve(term: Term, env: Bindings) -> Term:
    if isinstance(term, Variable):
        return env.get(term, term)
    return term


def _unify(pattern: Term, value: Oid, env: Bindings) -> bool:
    resolved = _resolve(pattern, env)
    if isinstance(resolved, Variable):
        env[resolved] = value
        return True
    return resolved == value


def _solve_data(
    db: FlogicDatabase, atom: DataAtom, env: Bindings
) -> Iterator[Bindings]:
    method = _resolve(atom.method, env)
    for host, fact_method, args, value in db.data_facts(method):
        if len(args) != len(atom.args):
            continue
        candidate = dict(env)
        if not _unify(atom.method, fact_method, candidate):
            continue
        if not _unify(atom.host, host, candidate):
            continue
        ok = True
        for pattern, arg in zip(atom.args, args):
            if not _unify(pattern, arg, candidate):
                ok = False
                break
        if ok and _unify(atom.value, value, candidate):
            yield candidate


def _solve_isa(
    db: FlogicDatabase, atom: IsaAtom, env: Bindings
) -> Iterator[Bindings]:
    obj = _resolve(atom.obj, env)
    cls = _resolve(atom.cls, env)
    if isinstance(obj, Variable):
        candidates = sorted(db.individuals(), key=term_sort_key)
    else:
        candidates = [obj]
    for candidate_obj in candidates:
        if isinstance(cls, Variable):
            for membership in sorted(
                db.isa_classes_of(candidate_obj), key=term_sort_key
            ):
                new_env = dict(env)
                if _unify(atom.obj, candidate_obj, new_env) and _unify(
                    atom.cls, membership, new_env
                ):
                    yield new_env
        elif db.isa_holds(candidate_obj, cls):
            new_env = dict(env)
            if _unify(atom.obj, candidate_obj, new_env):
                yield new_env


def _solve_subclass(
    db: FlogicDatabase, atom: SubclassAtom, env: Bindings
) -> Iterator[Bindings]:
    sub = _resolve(atom.sub, env)
    sup = _resolve(atom.sup, env)
    subs = (
        [sub]
        if not isinstance(sub, Variable)
        else sorted(db.classes(), key=term_sort_key)
    )
    for candidate_sub in subs:
        sups = (
            [sup]
            if not isinstance(sup, Variable)
            else sorted(db.classes(), key=term_sort_key)
        )
        for candidate_sup in sups:
            if db.subclass_holds(candidate_sub, candidate_sup):
                new_env = dict(env)
                if _unify(atom.sub, candidate_sub, new_env) and _unify(
                    atom.sup, candidate_sup, new_env
                ):
                    yield new_env


def _solve_builtin(
    atom: BuiltinAtom, env: Bindings
) -> Iterator[Bindings]:
    left = _resolve(atom.left, env)
    right = _resolve(atom.right, env)
    if isinstance(left, Variable) or isinstance(right, Variable):
        raise QueryError(
            f"builtin comparison {atom} has unbound variables; order the "
            f"body so data molecules bind them first"
        )
    if element_compare(atom.op, left, right):
        yield env


def solve(
    db: FlogicDatabase, body: Tuple[Atom_, ...], env: Bindings
) -> Iterator[Bindings]:
    """All bindings satisfying the conjunction *body* under *env*."""
    if not body:
        yield env
        return
    head_atom, rest = body[0], body[1:]
    if isinstance(head_atom, DataAtom):
        stream = _solve_data(db, head_atom, env)
    elif isinstance(head_atom, IsaAtom):
        stream = _solve_isa(db, head_atom, env)
    elif isinstance(head_atom, SubclassAtom):
        stream = _solve_subclass(db, head_atom, env)
    elif isinstance(head_atom, BuiltinAtom):
        stream = _solve_builtin(head_atom, env)
    else:
        raise QueryError(f"unknown atom {head_atom!r}")
    for candidate in stream:
        yield from solve(db, rest, candidate)


def evaluate(
    db: FlogicDatabase, query: FlogicQuery
) -> FrozenSet[Tuple[Oid, ...]]:
    """The answer relation of a conjunctive F-logic query."""
    answers: Set[Tuple[Oid, ...]] = set()
    ordered = _order_body(query.body)
    for env in solve(db, ordered, {}):
        row = []
        for term in query.head:
            value = _resolve(term, env)
            if isinstance(value, Variable):
                raise QueryError(
                    f"answer variable {value} is unbound; the query is "
                    f"not range-restricted"
                )
            row.append(value)
        answers.add(tuple(row))
    return frozenset(answers)


def _order_body(body: Tuple[Atom_, ...]) -> Tuple[Atom_, ...]:
    """Move builtin comparisons after the molecules that bind their vars."""
    molecules = [a for a in body if not isinstance(a, BuiltinAtom)]
    builtins = [a for a in body if isinstance(a, BuiltinAtom)]
    return tuple(molecules + builtins)
