"""The procedure ``P`` of Theorem 3.1: XSQL → F-logic.

"There exists an effective procedure P that for any given XSQL query φ (of
the form considered thus far) returns an equivalent first-order query in
F-logic P(φ)."

The translation implemented here covers the positive-existential fragment:

* FROM declarations → is-a atoms;
* path expressions → chains of data molecules over fresh intermediate
  variables (selectors unify in place);
* ``subclassOf`` / ``instanceOf`` conditions → subclass / is-a atoms;
* elementary comparisons whose quantifiers are (default-)existential →
  data-molecule chains ending in fresh tail variables plus a builtin atom.

Universally quantified comparisons (``all``), aggregates, disjunction, and
negation translate to genuinely first-order — but non-conjunctive —
formulas; they are outside this executable fragment and raise
:class:`TranslationUnsupported`.  The test suite validates equivalence
with the native evaluator over the paper's queries.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.errors import XsqlError
from repro.flogic.molecules import (
    Atom_,
    BuiltinAtom,
    DataAtom,
    FlogicQuery,
    IsaAtom,
    SubclassAtom,
)
from repro.oid import Atom, Oid, Term, Variable, VarSort
from repro.xsql import ast

__all__ = ["TranslationUnsupported", "translate"]


class TranslationUnsupported(XsqlError):
    """The query lies outside the executable conjunctive fragment."""


class _Translator:
    def __init__(self) -> None:
        self._atoms: List[Atom_] = []
        self._fresh = 0

    def fresh(self) -> Variable:
        self._fresh += 1
        return Variable(f"_f{self._fresh}")

    def emit(self, atom: Atom_) -> None:
        self._atoms.append(atom)

    # ------------------------------------------------------------------

    @staticmethod
    def _term(node: object) -> Term:
        if isinstance(node, (Oid, Variable)):
            return node
        raise TranslationUnsupported(
            f"id-term {node} cannot be translated (views are defined by "
            f"creating queries, outside the retrieval fragment)"
        )

    def path_tail(self, path: ast.PathExpr) -> Term:
        """Emit molecules for *path*; return the term naming its tail.

        A path ``sel0.m1[sel1]...mk[selk]`` becomes the conjunction
        ``sel0[m1 -> S1] AND S1[m2 -> S2] AND ...`` where ``Si`` is the
        step's selector when present and a fresh variable otherwise.
        """
        current = self._term(path.head)
        for step in path.steps:
            method = step.method_expr.method
            if isinstance(method, Variable) and method.sort == VarSort.PATH:
                raise TranslationUnsupported(
                    "path variables abbreviate formulas of unbounded "
                    "length; expand them before translating"
                )
            args = tuple(self._term(a) for a in step.method_expr.args)
            if step.selector is not None:
                target = self._term(step.selector)
            else:
                target = self.fresh()
            self.emit(DataAtom(current, method, args, target))
            current = target
        return current

    # ------------------------------------------------------------------

    def operand_term(self, operand: ast.Operand) -> Term:
        if isinstance(operand, ast.PathOperand):
            return self.path_tail(operand.path)
        if isinstance(operand, ast.AggOperand):
            raise TranslationUnsupported(
                f"aggregate {operand.fn}(...) ranges over a whole value "
                f"set; aggregates are outside the conjunctive fragment"
            )
        if isinstance(operand, ast.SetLitOperand):
            raise TranslationUnsupported(
                f"set literal {operand} denotes a whole set; set literals "
                f"are outside the conjunctive fragment"
            )
        if isinstance(operand, ast.SubQueryOperand):
            raise TranslationUnsupported(
                "subquery operands nest a second-order query block; "
                "subqueries are outside the conjunctive fragment"
            )
        if isinstance(operand, ast.ArithOperand):
            raise TranslationUnsupported(
                f"arithmetic expression {operand} needs interpreted "
                f"functions; arithmetic is outside the conjunctive fragment"
            )
        if isinstance(operand, ast.SetOpOperand):
            raise TranslationUnsupported(
                f"set operation {operand.op} combines whole result sets; "
                f"set operations are outside the conjunctive fragment"
            )
        raise TranslationUnsupported(
            f"operand {operand} is outside the conjunctive fragment"
        )

    def condition(self, cond: ast.Cond) -> None:
        if isinstance(cond, ast.AndCond):
            for item in cond.items:
                self.condition(item)
        elif isinstance(cond, ast.PathCond):
            self.path_tail(cond.path)
        elif isinstance(cond, ast.SchemaCond):
            left = self._term(cond.left)
            right = self._term(cond.right)
            if cond.kind == "subclassOf":
                self.emit(SubclassAtom(left, right))
            elif cond.kind == "instanceOf":
                self.emit(IsaAtom(left, right))
            else:
                raise TranslationUnsupported(
                    f"{cond.kind} translates to signature molecules, "
                    f"outside this kernel's data fragment"
                )
        elif isinstance(cond, ast.Comparison):
            if cond.lq == "all" or cond.rq == "all":
                raise TranslationUnsupported(
                    "'all'-quantified comparison translates to a "
                    "universally quantified, non-conjunctive first-order "
                    "formula"
                )
            if cond.op not in ("=", "!=", "<", "<=", ">", ">="):
                raise TranslationUnsupported(
                    f"set comparator {cond.op} is not elementary"
                )
            left = self.operand_term(cond.lhs)
            right = self.operand_term(cond.rhs)
            self.emit(BuiltinAtom(cond.op, left, right))
        elif isinstance(cond, ast.OrCond):
            raise TranslationUnsupported(
                "disjunction ('or') translates to a non-conjunctive "
                "first-order formula"
            )
        elif isinstance(cond, ast.NotCond):
            raise TranslationUnsupported(
                "negation ('not') translates to a non-conjunctive "
                "first-order formula"
            )
        else:
            raise TranslationUnsupported(
                f"{type(cond).__name__} is outside the conjunctive fragment"
            )


def translate(query: ast.Query) -> FlogicQuery:
    """Apply the procedure ``P`` to a conjunctive XSQL query."""
    if query.creates_objects or query.oid_scope is not None:
        raise TranslationUnsupported(
            "object-creating queries extend the database; Theorem 3.1 "
            "covers retrieval queries"
        )
    worker = _Translator()
    for decl in query.from_:
        cls: Term
        if isinstance(decl.cls, Variable):
            cls = decl.cls
        else:
            cls = decl.cls
        worker.emit(IsaAtom(decl.var, cls))
    if query.where is not None:
        worker.condition(query.where)
    head: List[Term] = []
    for item in query.select:
        if not isinstance(item, ast.PathItem):
            raise TranslationUnsupported(
                f"SELECT item {item} is outside the retrieval fragment"
            )
        head.append(worker.path_tail(item.path))
    return FlogicQuery(head=tuple(head), body=tuple(worker._atoms))
