"""Exporting an object store as a set of ground F-logic molecules.

The export covers the *stored* state: explicit data cells, direct
instance-of memberships (plus implicit literal classes), and direct
subclass edges.  Inheritance and transitive closure are part of query
evaluation (:mod:`repro.flogic.eval`), matching F-logic's treatment of
structural/IS-A reasoning as semantics rather than data.

Computed methods (native or query-defined) are intentionally not unfolded
into facts: Theorem 3.1's translation is about the query language, and
the equivalence tests run over stored data, where the export is exact.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.datamodel.store import ObjectStore
from repro.oid import Atom, Oid
from repro.flogic.molecules import DataAtom

__all__ = ["FlogicDatabase"]


class FlogicDatabase:
    """Ground molecules extracted from an object store."""

    def __init__(
        self,
        store: ObjectStore,
    ) -> None:
        self._store = store
        # (host, method, args) -> set of values; also indexed by method.
        self._data: List[Tuple[Oid, Atom, Tuple[Oid, ...], Oid]] = []
        self._by_method: Dict[Atom, List[int]] = {}
        for record in store.iter_records():
            for (method, args), cell in record.entries():
                for value in cell.as_set():
                    index = len(self._data)
                    self._data.append((record.oid, method, args, value))
                    self._by_method.setdefault(method, []).append(index)

    @classmethod
    def from_store(cls, store: ObjectStore) -> "FlogicDatabase":
        return cls(store)

    @property
    def store(self) -> ObjectStore:
        return self._store

    # ------------------------------------------------------------------
    # fact access (used by the evaluator)
    # ------------------------------------------------------------------

    def data_facts(
        self, method: object = None
    ) -> Iterator[Tuple[Oid, Atom, Tuple[Oid, ...], Oid]]:
        if isinstance(method, Atom):
            for index in self._by_method.get(method, ()):
                yield self._data[index]
            return
        yield from self._data

    def isa_holds(self, obj: Oid, cls: Oid) -> bool:
        return isinstance(cls, Atom) and self._store.is_instance(obj, cls)

    def isa_classes_of(self, obj: Oid) -> FrozenSet[Atom]:
        return self._store.classes_of(obj)

    def subclass_holds(self, sub: Oid, sup: Oid) -> bool:
        return (
            isinstance(sub, Atom)
            and isinstance(sup, Atom)
            and self._store.hierarchy.is_subclass(sub, sup, strict=True)
        )

    def individuals(self) -> FrozenSet[Oid]:
        return self._store.individual_universe()

    def classes(self) -> FrozenSet[Atom]:
        return self._store.class_universe()

    def methods(self) -> FrozenSet[Atom]:
        return self._store.method_universe()

    def fact_count(self) -> int:
        return len(self._data)

    def all_molecules(self) -> Iterator[DataAtom]:
        """The export rendered as molecules (for display and tests)."""
        for host, method, args, value in self._data:
            yield DataAtom(host, method, args, value)
