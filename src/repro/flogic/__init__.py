"""The F-logic kernel grounding XSQL's semantics (paper §1, Theorem 3.1).

XSQL's meaning is "rooted in F-logic [KLW90]": Theorem 3.1 promises an
effective procedure ``P`` turning any XSQL query into an equivalent
first-order F-logic query.  This package makes the theorem executable:

* :mod:`repro.flogic.molecules` — is-a assertions ``o : c``, subclass
  assertions ``c :: c'``, and data molecules ``o[m@a1,...,ak -> v]``;
* :mod:`repro.flogic.database` — exporting an object store as a set of
  ground molecules (facts);
* :mod:`repro.flogic.eval` — evaluation of conjunctive F-logic queries by
  unification and backtracking;
* :mod:`repro.flogic.translate` — the procedure ``P`` for the
  positive-existential fragment of XSQL (conjunctions, path expressions,
  ``some``-quantified comparisons); the test suite cross-checks it against
  the native evaluator on the paper's queries.

"In spite of having variables that range over classes, attributes, and
methods, the language is still first order" — data molecules here accept
variables in the method position, exactly as F-logic/HiLog permit.
"""

from repro.flogic.molecules import (
    BuiltinAtom,
    DataAtom,
    FlogicQuery,
    IsaAtom,
    SubclassAtom,
)
from repro.flogic.database import FlogicDatabase
from repro.flogic.eval import evaluate
from repro.flogic.translate import TranslationUnsupported, translate

__all__ = [
    "IsaAtom",
    "SubclassAtom",
    "DataAtom",
    "BuiltinAtom",
    "FlogicQuery",
    "FlogicDatabase",
    "evaluate",
    "translate",
    "TranslationUnsupported",
]
