"""F-logic atoms and queries (after [KLW90]).

The fragment needed to ground XSQL:

* ``IsaAtom(o, c)`` — object *o* is an instance of class *c*;
* ``SubclassAtom(c, c')`` — *c* is a strict subclass of *c'*;
* ``DataAtom(host, method, args, value)`` — the data molecule
  ``host[method@args -> value]``; scalar and set-valued molecules share
  one form (a scalar is a singleton set, matching the paper's uniform
  treatment of attributes as 0-ary methods);
* ``BuiltinAtom(op, left, right)`` — interpreted comparisons over literal
  objects.

Every position may hold a variable — including the *method* position,
which stays first-order by the HiLog/F-logic encoding (§3.1, "higher-order
variables do not make the underlying logic second-order").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from repro.oid import Oid, Term, Variable

__all__ = [
    "IsaAtom",
    "SubclassAtom",
    "DataAtom",
    "BuiltinAtom",
    "Atom_",
    "FlogicQuery",
    "atom_variables",
]


@dataclass(frozen=True)
class IsaAtom:
    obj: Term
    cls: Term

    def __str__(self) -> str:
        return f"{self.obj} : {self.cls}"


@dataclass(frozen=True)
class SubclassAtom:
    sub: Term
    sup: Term

    def __str__(self) -> str:
        return f"{self.sub} :: {self.sup}"


@dataclass(frozen=True)
class DataAtom:
    host: Term
    method: Term
    args: Tuple[Term, ...]
    value: Term

    def __str__(self) -> str:
        if self.args:
            inner = ", ".join(str(a) for a in self.args)
            return f"{self.host}[{self.method}@{inner} -> {self.value}]"
        return f"{self.host}[{self.method} -> {self.value}]"


@dataclass(frozen=True)
class BuiltinAtom:
    """An interpreted comparison (=, !=, <, <=, >, >=) over objects."""

    op: str
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


Atom_ = Union[IsaAtom, SubclassAtom, DataAtom, BuiltinAtom]


@dataclass(frozen=True)
class FlogicQuery:
    """A conjunctive F-logic query: answer terms + body atoms."""

    head: Tuple[Term, ...]
    body: Tuple[Atom_, ...]

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.head)
        body = " AND ".join(str(a) for a in self.body)
        return f"?- {head} <- {body}"


def atom_variables(atom: Atom_) -> Iterator[Variable]:
    if isinstance(atom, IsaAtom):
        terms: Tuple[Term, ...] = (atom.obj, atom.cls)
    elif isinstance(atom, SubclassAtom):
        terms = (atom.sub, atom.sup)
    elif isinstance(atom, DataAtom):
        terms = (atom.host, atom.method, *atom.args, atom.value)
    else:
        terms = (atom.left, atom.right)
    for term in terms:
        if isinstance(term, Variable):
            yield term
