"""Schemas used by the paper's examples.

* :mod:`repro.schema.figure1` — the Figure 1 Vehicle/Person/Company schema;
* :mod:`repro.schema.nobel` — the introduction's Nobel-prize schema;
* :mod:`repro.schema.university` — the §2 workstudy/earns schema
  (polymorphism and multiple inheritance);
* :mod:`repro.schema.typing_examples` — the Organization/Association
  extension used by the §6.2 typing fragments (17)–(20).
"""

from repro.schema.figure1 import build_figure1_schema
from repro.schema.nobel import build_nobel_schema
from repro.schema.university import build_university_schema
from repro.schema.typing_examples import extend_with_typing_classes

__all__ = [
    "build_figure1_schema",
    "build_nobel_schema",
    "build_university_schema",
    "extend_with_typing_classes",
]
