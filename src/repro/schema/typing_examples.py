"""Schema extension for the §6.2 typing fragments (17)–(20).

Fragment (19) needs, beyond Figure 1:

* a class ``Organization`` with ``Company`` as a subclass (so the range
  ``{Object, Organization, Company}`` of ``M`` is non-empty);
* a class ``Association`` (a kind of organization) with the method
  signature ``Member : Association, Numeral => Organization``;
* a second signature ``President : Organization => Person`` (the paper:
  "let President have one more type expression: Organization => Person");
* the individual ``OO_Forum`` whose ``Member`` method maps a year to a
  member organization.
"""

from __future__ import annotations

from repro.datamodel.store import ObjectStore
from repro.oid import Atom, Value

__all__ = ["extend_with_typing_classes"]


def extend_with_typing_classes(store: ObjectStore) -> ObjectStore:
    """Add Organization/Association on top of the Figure 1 schema."""
    store.declare_class("Organization")
    store.hierarchy.add_edge(Atom("Company"), Atom("Organization"))
    store.declare_class("Association", ["Organization"])
    store.declare_signature(
        "Association", "Member", "Organization", args=["Numeral"]
    )
    store.declare_signature("Organization", "President", "Person")
    store.declare_signature("Organization", "Name", "String")
    return store


def populate_oo_forum(store: ObjectStore) -> ObjectStore:
    """OO_Forum with per-year members (used by fragment (19) end-to-end)."""
    forum = store.create_object(Atom("OO_Forum"), ["Association"])
    store.set_attr(forum, "Name", "OO Forum")
    for year, member in ((1990, "uniSQL"), (1991, "acme")):
        if Atom(member) in store.known_objects():
            store.set_attr(forum, "Member", Atom(member), args=[Value(year)])
    return store
