"""The object-oriented schema of the paper's Figure 1.

Thick arrows of the figure (IS-A) become subclass edges; thin arrows
(aggregation) become attribute signatures.  Attribute names ending in ``*``
in the figure are set-valued.  The class/attribute inventory transcribed
from the figure:

* ``Address``: Street, City, State (strings), Phone (numeral)
* ``Vehicle``: Model (string), Manufacturer (Company), Color (string),
  Drivetrain (VehicleDrivetrain); subclasses ``Motorbike`` (Size numeral),
  ``Bicycle``, ``Automobile`` (Drivetrain VehicleDrivetrain, Body AutoBody)
* ``VehicleDrivetrain``: Engine (PistonEngine), Transmission (string)
* ``AutoBody``: Chassis, Interior (strings), Doors (numeral)
* ``PistonEngine``: HPpower, CCsize, CylinderN (numerals); subclasses
  ``TwoStrokeEngine`` and ``FourStrokeEngine``; the latter has subclasses
  ``TurboEngine`` and ``DieselEngine`` — which is what makes query (4)'s
  answer exactly {FourStrokeEngine, PistonEngine, Object}
* ``Person``: Name (string), Age (numeral), Residence (Address),
  OwnedVehicles* (Vehicle); subclass ``Employee``: Qualifications*
  (string), Salary (numeral), FamMembers* (Person)
* ``Company``: Name (string), Headquarters (Address), Divisions*
  (Division), President (Person)
* ``Division``: Name (string), Location (Address), Function (string),
  Manager (Employee), Employees* (Employee)

Footnote 9 mentions two attributes "not shown in Figure 1" that queries (8)
use: ``Company.Retirees*`` and ``Employee.Dependents*``; they are included
here because the paper's own queries need them.
"""

from __future__ import annotations

from repro.datamodel.store import ObjectStore

__all__ = ["build_figure1_schema", "FIGURE1_CLASSES"]

#: Every class of Figure 1 (excluding the built-ins), for integrity checks.
FIGURE1_CLASSES = (
    "Address",
    "Vehicle",
    "Motorbike",
    "Bicycle",
    "Automobile",
    "VehicleDrivetrain",
    "AutoBody",
    "PistonEngine",
    "TwoStrokeEngine",
    "FourStrokeEngine",
    "TurboEngine",
    "DieselEngine",
    "Person",
    "Employee",
    "Company",
    "Division",
)


def build_figure1_schema(store: ObjectStore) -> ObjectStore:
    """Declare the Figure 1 classes and signatures in *store*."""
    store.declare_class("Address")
    store.declare_class("Vehicle")
    store.declare_class("Motorbike", ["Vehicle"])
    store.declare_class("Bicycle", ["Vehicle"])
    store.declare_class("Automobile", ["Vehicle"])
    store.declare_class("VehicleDrivetrain")
    store.declare_class("AutoBody")
    store.declare_class("PistonEngine")
    store.declare_class("TwoStrokeEngine", ["PistonEngine"])
    store.declare_class("FourStrokeEngine", ["PistonEngine"])
    store.declare_class("TurboEngine", ["FourStrokeEngine"])
    store.declare_class("DieselEngine", ["FourStrokeEngine"])
    store.declare_class("Person")
    store.declare_class("Employee", ["Person"])
    store.declare_class("Company")
    store.declare_class("Division")

    store.declare_signature("Address", "Street", "String")
    store.declare_signature("Address", "City", "String")
    store.declare_signature("Address", "State", "String")
    store.declare_signature("Address", "Phone", "Numeral")

    store.declare_signature("Vehicle", "Model", "String")
    store.declare_signature("Vehicle", "Manufacturer", "Company")
    store.declare_signature("Vehicle", "Color", "String")
    store.declare_signature("Vehicle", "Drivetrain", "VehicleDrivetrain")
    store.declare_signature("Motorbike", "Size", "Numeral")
    store.declare_signature("Automobile", "Body", "AutoBody")

    store.declare_signature("VehicleDrivetrain", "Engine", "PistonEngine")
    store.declare_signature("VehicleDrivetrain", "Transmission", "String")

    store.declare_signature("AutoBody", "Chassis", "String")
    store.declare_signature("AutoBody", "Interior", "String")
    store.declare_signature("AutoBody", "Doors", "Numeral")

    store.declare_signature("PistonEngine", "HPpower", "Numeral")
    store.declare_signature("PistonEngine", "CCsize", "Numeral")
    store.declare_signature("PistonEngine", "CylinderN", "Numeral")

    store.declare_signature("Person", "Name", "String")
    store.declare_signature("Person", "Age", "Numeral")
    store.declare_signature("Person", "Residence", "Address")
    store.declare_signature(
        "Person", "OwnedVehicles", "Vehicle", set_valued=True
    )

    store.declare_signature(
        "Employee", "Qualifications", "String", set_valued=True
    )
    store.declare_signature("Employee", "Salary", "Numeral")
    store.declare_signature(
        "Employee", "FamMembers", "Person", set_valued=True
    )
    # Footnote 9: used by query (8) but not drawn in the figure.
    store.declare_signature(
        "Employee", "Dependents", "Person", set_valued=True
    )

    store.declare_signature("Company", "Name", "String")
    store.declare_signature("Company", "Headquarters", "Address")
    store.declare_signature(
        "Company", "Divisions", "Division", set_valued=True
    )
    store.declare_signature("Company", "President", "Person")
    # Footnote 9 again.
    store.declare_signature(
        "Company", "Retirees", "Employee", set_valued=True
    )

    store.declare_signature("Division", "Name", "String")
    store.declare_signature("Division", "Location", "Address")
    store.declare_signature("Division", "Function", "String")
    store.declare_signature("Division", "Manager", "Employee")
    store.declare_signature(
        "Division", "Employees", "Employee", set_valued=True
    )
    return store
