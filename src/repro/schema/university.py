"""The §2/§6.1 university schema: polymorphism and multiple inheritance.

Carries the paper's two running examples:

* ``workstudy : semester =>> {student, employee}`` on ``department`` — one
  method with two signatures over the same argument types (§2 "Types");
* ``earns : project => pay`` on ``employee`` and ``earns : course =>
  grade`` on ``student`` — and the class ``workstudy`` that inherits both
  type expressions (§6.1), with behavioral-inheritance conflicts resolved
  Meyer-style.
"""

from __future__ import annotations

from repro.datamodel.store import ObjectStore

__all__ = ["build_university_schema", "populate_university_database"]


def build_university_schema(store: ObjectStore) -> ObjectStore:
    for cls in (
        "UStudent",
        "UEmployee",
        "UDepartment",
        "USemester",
        "UProject",
        "UCourse",
        "UPay",
        "UGrade",
    ):
        store.declare_class(cls)
    store.declare_class("UWorkstudy", ["UStudent", "UEmployee"])

    # workstudy : semester =>> {student, employee} — the brace shorthand
    # combines two signatures with shared scope and arguments (§2).
    store.declare_signature(
        "UDepartment", "workstudy", "UStudent", args=["USemester"],
        set_valued=True,
    )
    store.declare_signature(
        "UDepartment", "workstudy", "UEmployee", args=["USemester"],
        set_valued=True,
    )

    store.declare_signature("UEmployee", "earns", "UPay", args=["UProject"])
    store.declare_signature("UStudent", "earns", "UGrade", args=["UCourse"])
    store.declare_signature("UPay", "amount", "Numeral")
    store.declare_signature("UGrade", "letter", "String")
    return store


def populate_university_database(store: ObjectStore) -> ObjectStore:
    from repro.oid import Atom

    dept = store.create_object(Atom("dept77"), ["UDepartment"])
    fall = store.create_object(Atom("fall95"), ["USemester"])
    pam = store.create_object(Atom("pam"), ["UWorkstudy"])
    tom = store.create_object(Atom("tom"), ["UStudent"])
    hal = store.create_object(Atom("hal"), ["UEmployee"])
    store.add_to_set(dept, "workstudy", pam, args=[fall])

    proj = store.create_object(Atom("proj1"), ["UProject"])
    course = store.create_object(Atom("cse305"), ["UCourse"])
    pay = store.create_object(Atom("pay1"), ["UPay"])
    grade = store.create_object(Atom("gradeA"), ["UGrade"])
    store.set_attr(pay, "amount", 1200)
    store.set_attr(grade, "letter", "A")

    # earns is defined on both superclasses of workstudy with different
    # argument types; on disjoint argument classes the invocations do not
    # actually conflict, so store both cells on pam directly.
    store.set_attr(pam, "earns", pay, args=[proj])
    store.set_attr(pam, "earns", grade, args=[course])
    store.set_attr(hal, "earns", pay, args=[proj])
    store.set_attr(tom, "earns", grade, args=[course])
    return store
