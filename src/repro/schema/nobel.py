"""The introduction's Nobel-prize schema.

"Winners could be persons or organizations of various types.  It is
unlikely that a casual user would know exactly all the classes in the
database for which WonNobelPrize is defined.  Nevertheless, in XSQL one may
simply write ``SELECT X WHERE X.WonNobelPrize``" — the query that motivates
liberal vs strict well-typing (§1, §6.2).

``WonNobelPrize`` is declared on two *incomparable* classes (``Scientist``
and ``Fund``), so no conservative FROM clause covers all winners.
"""

from __future__ import annotations

from repro.datamodel.store import ObjectStore

__all__ = ["build_nobel_schema", "populate_nobel_database"]


def build_nobel_schema(store: ObjectStore) -> ObjectStore:
    store.declare_class("NPerson")
    store.declare_class("NOrganization")
    store.declare_class("Scientist", ["NPerson"])
    store.declare_class("Politician", ["NPerson"])
    store.declare_class("Fund", ["NOrganization"])
    store.declare_class("NCompany", ["NOrganization"])
    store.declare_signature("NPerson", "Name", "String")
    store.declare_signature("NOrganization", "Name", "String")
    store.declare_signature(
        "Scientist", "WonNobelPrize", "String", set_valued=True
    )
    store.declare_signature(
        "Fund", "WonNobelPrize", "String", set_valued=True
    )
    return store


def populate_nobel_database(store: ObjectStore) -> ObjectStore:
    """A small instance: two winners (a scientist and UNICEF), two others.

    "For example, UNICEF ... won the Nobel Peace Prize" (footnote 3).
    """
    from repro.oid import Atom

    einstein = store.create_object(Atom("einstein"), ["Scientist"])
    store.set_attr(einstein, "Name", "Einstein")
    store.add_to_set(einstein, "WonNobelPrize", "physics")

    unicef = store.create_object(Atom("unicef"), ["Fund"])
    store.set_attr(unicef, "Name", "UNICEF")
    store.add_to_set(unicef, "WonNobelPrize", "peace")

    smith = store.create_object(Atom("smith"), ["Politician"])
    store.set_attr(smith, "Name", "Smith")

    megacorp = store.create_object(Atom("megacorp"), ["NCompany"])
    store.set_attr(megacorp, "Name", "MegaCorp")
    return store
