"""A generate-friendly AST builder for XSQL.

The parser is the usual way into the AST, but programmatic clients — the
differential fuzzer (:mod:`repro.difftest`), test generators, planners —
want to assemble queries without going through concrete syntax.  The
helpers here accept plain Python scalars and strings and coerce them to
the right term classes:

* strings in class position become :class:`~repro.oid.Atom`;
* Python scalars in literal position become :class:`~repro.oid.Value`;
* variable helpers produce correctly sorted :class:`~repro.oid.Variable`.

Every builder returns the same frozen AST nodes the parser produces, so
``parse_query(str(built))`` round-trips (the fuzzer asserts this for the
whole generated corpus).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.oid import Atom, Oid, Value, Variable, VarSort
from repro.xsql import ast

__all__ = [
    "ivar",
    "cvar",
    "mvar",
    "lit",
    "step",
    "path",
    "operand",
    "agg",
    "set_lit",
    "compare",
    "path_cond",
    "schema_cond",
    "conj",
    "disj",
    "neg",
    "select_item",
    "from_decl",
    "query",
]

Scalar = Union[int, float, str, bool]
SelectorLike = Union[Oid, Variable, ast.App, Scalar, None]
OperandLike = Union[ast.Operand, ast.PathExpr, Variable, Oid, Scalar]


def ivar(name: str) -> Variable:
    """An individual variable (``X``)."""
    return Variable(name, VarSort.INDIVIDUAL)


def cvar(name: str) -> Variable:
    """A class variable (``#X``)."""
    return Variable(name, VarSort.CLASS)


def mvar(name: str) -> Variable:
    """A method variable (``"Y``)."""
    return Variable(name, VarSort.METHOD)


def lit(value: Union[Scalar, Oid]) -> Oid:
    """A literal object (or any oid, passed through)."""
    if isinstance(value, Oid):
        return value
    return Value(value)


def _selector(node: SelectorLike) -> Optional[ast.SelectorNode]:
    if node is None or isinstance(node, (Oid, Variable, ast.App)):
        return node
    return Value(node)


def step(
    method: Union[str, Atom, Variable],
    selector: SelectorLike = None,
    args: Sequence[object] = (),
) -> ast.Step:
    """One ``.Method[selector]`` hop; a string method becomes an Atom."""
    if isinstance(method, str):
        method = Atom(method)
    return ast.Step(
        method_expr=ast.MethodExpr(method=method, args=tuple(args)),
        selector=_selector(selector),
    )


def path(
    head: Union[Oid, Variable, ast.App, Scalar],
    *steps: Union[ast.Step, str, Tuple],
) -> ast.PathExpr:
    """A path expression.  Steps may be :class:`~repro.xsql.ast.Step`
    nodes, bare method-name strings, or ``(method, selector)`` tuples."""
    built = []
    for item in steps:
        if isinstance(item, ast.Step):
            built.append(item)
        elif isinstance(item, tuple):
            built.append(step(*item))
        else:
            built.append(step(item))
    head_node = _selector(head)
    assert head_node is not None
    return ast.PathExpr(head=head_node, steps=tuple(built))


def operand(node: OperandLike) -> ast.Operand:
    """Coerce paths, variables, oids, and scalars into operands."""
    if isinstance(node, ast.Operand):
        return node
    if isinstance(node, ast.PathExpr):
        return ast.PathOperand(node)
    if isinstance(node, (Oid, Variable)):
        return ast.PathOperand(ast.path_of_term(node))
    return ast.PathOperand(ast.path_of_term(Value(node)))


def agg(fn: str, over: Union[ast.PathExpr, Variable]) -> ast.AggOperand:
    """``count/sum/avg/min/max`` over a path expression."""
    if isinstance(over, Variable):
        over = ast.path_of_term(over)
    return ast.AggOperand(fn, over)


def set_lit(*values: Union[Scalar, Oid]) -> ast.SetLitOperand:
    """A set literal such as ``{'blue', 'red'}``."""
    return ast.SetLitOperand(tuple(lit(v) for v in values))


def compare(
    lhs: OperandLike,
    op: str,
    rhs: OperandLike,
    lq: Optional[str] = None,
    rq: Optional[str] = None,
) -> ast.Comparison:
    """A (possibly quantified) comparison condition."""
    return ast.Comparison(
        lhs=operand(lhs), op=op, rhs=operand(rhs), lq=lq, rq=rq
    )


def path_cond(node: Union[ast.PathExpr, Variable]) -> ast.PathCond:
    """A stand-alone path condition (true iff the value is non-empty)."""
    if isinstance(node, Variable):
        node = ast.path_of_term(node)
    return ast.PathCond(node)


def schema_cond(
    kind: str,
    left: Union[str, Oid, Variable],
    right: Union[str, Oid, Variable],
) -> ast.SchemaCond:
    """``subclassOf`` / ``instanceOf`` / ``applicableTo`` conditions."""
    if isinstance(left, str):
        left = Atom(left)
    if isinstance(right, str):
        right = Atom(right)
    return ast.SchemaCond(kind, left, right)


def conj(*items: ast.Cond) -> ast.Cond:
    """Conjoin conditions, flattening the one-item case."""
    if len(items) == 1:
        return items[0]
    return ast.AndCond(tuple(items))


def disj(*items: ast.Cond) -> ast.Cond:
    """Disjoin conditions, flattening the one-item case."""
    if len(items) == 1:
        return items[0]
    return ast.OrCond(tuple(items))


def neg(item: ast.Cond) -> ast.NotCond:
    return ast.NotCond(item)


def select_item(
    node: Union[ast.SelectItem, ast.PathExpr, Variable],
    name: Optional[str] = None,
) -> ast.SelectItem:
    if isinstance(node, ast.SelectItem):
        return node
    if isinstance(node, Variable):
        node = ast.path_of_term(node)
    return ast.PathItem(path=node, name=name)


def from_decl(cls: Union[str, Atom, Variable], var: Union[str, Variable]) -> ast.FromDecl:
    if isinstance(cls, str):
        cls = Atom(cls)
    if isinstance(var, str):
        var = ivar(var)
    return ast.FromDecl(cls, var)


def query(
    select: Iterable[Union[ast.SelectItem, ast.PathExpr, Variable]],
    from_: Iterable[Union[ast.FromDecl, Tuple[str, str]]] = (),
    where: Optional[ast.Cond] = None,
) -> ast.Query:
    """Assemble a plain SELECT query."""
    decls = []
    for decl in from_:
        if isinstance(decl, ast.FromDecl):
            decls.append(decl)
        else:
            decls.append(from_decl(*decl))
    return ast.Query(
        select=tuple(select_item(item) for item in select),
        from_=tuple(decls),
        where=where,
    )
