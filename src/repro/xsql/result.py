"""Query results: relations of oid tuples with relational operators (§3.3).

"Queries considered so far return relations, i.e., sets of tuples of object
id's.  The tuples themselves do not have object id's and duplicates are not
allowed."  ``UNION``/``MINUS``/``INTERSECT`` combine compatible results,
"as usual in SQL".

Object-creating queries additionally report the oids they minted
(:attr:`QueryResult.created`), so callers can inspect the new objects in the
store.
"""

from __future__ import annotations

from collections import abc as cabc
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import RelationalError
from repro.oid import Oid, Value, term_sort_key

__all__ = ["QueryResult"]


class QueryResult(cabc.Sequence):
    """A set of tuples of oids, with column names.

    Exposed to callers as an immutable :class:`collections.abc.Sequence`
    of its rows in a *stable, engine-independent order* (the oid sort of
    :func:`repro.oid.term_sort_key`): ``result[0]``, ``result[-2:]``,
    ``for row in result``, ``row in result``, ``result.index(row)`` all
    behave as on a list, and two equal results enumerate identically no
    matter which planner or engine produced them.
    """

    def __init__(
        self,
        columns: Sequence[str],
        rows: Sequence[Tuple[Oid, ...]] = (),
        created: Sequence[Oid] = (),
    ) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self._rows: Set[Tuple[Oid, ...]] = set()
        self._sorted: Optional[List[Tuple[Oid, ...]]] = None
        for row in rows:
            self.add(row)
        self.created: Tuple[Oid, ...] = tuple(created)

    def add(self, row: Tuple[Oid, ...]) -> None:
        if len(row) != len(self.columns):
            raise RelationalError(
                f"row arity {len(row)} does not match columns "
                f"{self.columns}"
            )
        self._rows.add(tuple(row))
        self._sorted = None

    # -- access ----------------------------------------------------------

    def rows(self) -> FrozenSet[Tuple[Oid, ...]]:
        return frozenset(self._rows)

    def _sorted_list(self) -> List[Tuple[Oid, ...]]:
        if self._sorted is None:
            self._sorted = sorted(
                self._rows,
                key=lambda row: tuple(term_sort_key(v) for v in row),
            )
        return self._sorted

    def sorted_rows(self) -> List[Tuple[Oid, ...]]:
        return list(self._sorted_list())

    def to_dicts(self) -> List[Dict[str, Oid]]:
        """The rows as column-keyed dicts, in the stable sorted order."""
        return [dict(zip(self.columns, row)) for row in self._sorted_list()]

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[Tuple[Oid, ...], List[Tuple[Oid, ...]]]:
        return self._sorted_list()[index]

    def single_column(self) -> FrozenSet[Oid]:
        """The values of a one-column result (used by nested subqueries)."""
        if len(self.columns) != 1:
            raise RelationalError(
                f"expected a single column, found {len(self.columns)}"
            )
        return frozenset(row[0] for row in self._rows)

    def scalars(self) -> List[object]:
        """Python payloads of a one-column result of literals (testing aid)."""
        return [
            value.value if isinstance(value, Value) else value
            for value in sorted(self.single_column(), key=term_sort_key)
        ]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple[Oid, ...]]:
        return iter(self._sorted_list())

    def __contains__(self, row: Sequence[Oid]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryResult):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - results rarely hashed
        return hash(frozenset(self._rows))

    # -- relational operators (§3.3) ---------------------------------------

    def _check_compatible(self, other: "QueryResult") -> None:
        if len(self.columns) != len(other.columns):
            raise RelationalError(
                "relational operators need results of equal arity"
            )

    def union(self, other: "QueryResult") -> "QueryResult":
        self._check_compatible(other)
        return QueryResult(self.columns, list(self._rows | other._rows))

    def minus(self, other: "QueryResult") -> "QueryResult":
        self._check_compatible(other)
        return QueryResult(self.columns, list(self._rows - other._rows))

    def intersect(self, other: "QueryResult") -> "QueryResult":
        self._check_compatible(other)
        return QueryResult(self.columns, list(self._rows & other._rows))

    # -- display -----------------------------------------------------------

    def pretty(self, limit: Optional[int] = None) -> str:
        """A fixed-width table rendering for examples and benchmarks."""
        rows = self.sorted_rows()
        if limit is not None:
            rows = rows[:limit]
        cells = [[str(v) for v in row] for row in rows]
        headers = list(self.columns)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in cells), 1)
            if cells
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        if limit is not None and len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QueryResult(columns={self.columns}, rows={len(self._rows)})"
        )
