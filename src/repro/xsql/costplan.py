"""Cost-based join ordering and access-path selection (``plan="cost"``).

The paper's Theorem 6.1 says *which* extents are sound to enumerate; this
module decides *order* and *access path* with numbers.  It consumes the
statistics catalogue (:mod:`repro.datamodel.statistics`) that the store
maintains through its write path and produces a :class:`CostPlan`:

* a **join order** over the normalized conjunctive WHERE — exhaustive
  search for small conjunctions, greedy otherwise — minimizing the
  estimated size of the intermediate binding stream;
* an **access path** per FROM declaration and per conjunct: inverted
  index probe ([BERT89]), Theorem 6.1 restricted range, extent scan,
  bound walk, or plain filter;
* **probe specs** — top-level conjuncts of the shape ``X.M[v]`` with a
  ground method, ground arguments, and a ground selector, whose inverted
  index can restrict ``X``'s instantiation set *before* FROM enumeration
  (the pipeline executes them via ``store.lookup_by_value`` and falls
  back soundly when the index cannot answer exactly);
* **auto-enabled indexes** — when the model predicts an index probe beats
  the scan by :attr:`CostPlanner.payoff_threshold` and the reverse lookup
  would be exact, the planner enables the index on the spot (the Session
  ``index_mode`` knob pins this to ``"manual"`` or forbids it with
  ``"off"``).

Everything here is advisory: estimates rank alternatives, the executor
never relies on them for soundness.  Probe restrictions are derived only
from *top-level* conjuncts (never from inside OR/NOT), so restricting a
variable to the probed owners can never lose an answer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.datamodel.store import ObjectStore
from repro.datamodel.versions import Version
from repro.oid import Atom, Oid, Variable, VarSort
from repro.xsql import ast
from repro.xsql.operators import join_strategy_of, operand_join_vars
from repro.xsql.planner import _cond_has_updates, _flatten

__all__ = ["CostModel", "CostPlan", "CostPlanner", "PlanEntry", "ProbeSpec"]

#: Conjunction sizes up to this bound are ordered by exhaustive search
#: over all permutations; larger WHERE clauses fall back to greedy.
EXHAUSTIVE_LIMIT = 6

_HUGE = 1e18


def _clip(x: float) -> float:
    return min(max(x, 0.0), _HUGE)


def _shorten(text: str, width: int = 48) -> str:
    return text if len(text) <= width else text[: width - 1] + "…"


@dataclass(frozen=True)
class ProbeSpec:
    """An index-probe opportunity: restrict *var* to owners of *value*."""

    var: Variable
    method: Atom
    value: Oid
    args: Tuple[Oid, ...]

    def render(self) -> str:
        args = (
            "@" + ",".join(str(a) for a in self.args) if self.args else ""
        )
        return f"{self.var}.{self.method}{args}[{self.value}]"


@dataclass
class PlanEntry:
    """One unit of the execution pipeline: a FROM decl or a conjunct."""

    kind: str  #: ``"from"`` or ``"cond"``
    label: str
    access_path: str
    #: Estimated binding-stream size *after* this entry.
    estimated_rows: float
    detail: str = ""
    #: For ``"cond"`` entries: how the set-at-a-time executor will run
    #: the conjunct (``"hash"``, ``"semi"``, ``"nested"``, or
    #: ``"pointer"``).
    join_strategy: str = ""
    #: For ``join_strategy == "pointer"`` entries: the range variable the
    #: PointerJoin binds (its FROM entry is re-marked
    #: ``"pointer-fused"`` and its extent scan is skipped) and the
    #: navigation direction (``"forward"`` dereferences stored cells,
    #: ``"backward"`` probes the inverted index).
    pointer_var: Optional[Variable] = None
    pointer_direction: str = ""

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": self.kind,
            "label": self.label,
            "access_path": self.access_path,
            "estimated_rows": round(self.estimated_rows, 1),
        }
        if self.detail:
            data["detail"] = self.detail
        if self.join_strategy:
            data["join_strategy"] = self.join_strategy
        if self.pointer_direction:
            data["direction"] = self.pointer_direction
        return data


@dataclass
class CostPlan:
    """The costed artifact: entries, probes, and provenance."""

    entries: List[PlanEntry] = field(default_factory=list)
    probes: Tuple[ProbeSpec, ...] = ()
    #: The reordered WHERE (None when the query has no WHERE clause or
    #: reordering was inapplicable — execution then uses source order).
    ordered_where: Optional[ast.Cond] = None
    #: Store version the estimates were computed against; the pipeline
    #: re-plans when the data component has moved (optimality only — a
    #: drifted plan is still sound).
    version: Optional["Version"] = None
    estimated_result_rows: float = 0.0
    auto_enabled: Tuple[Atom, ...] = ()
    search: str = "none"  #: ``"exhaustive"``, ``"greedy"``, or ``"none"``

    def as_dict(self) -> Dict[str, object]:
        return {
            "search": self.search,
            "estimated_result_rows": round(self.estimated_result_rows, 1),
            "auto_enabled_indexes": sorted(
                m.name for m in self.auto_enabled
            ),
            "probes": [p.render() for p in self.probes],
            "entries": [e.as_dict() for e in self.entries],
        }


class CostModel:
    """Selectivity and cardinality estimates over the statistics catalogue.

    All numbers are estimates: the catalogue sees explicitly stored cells
    and explicit memberships only, so the model pads unknowns with mild
    defaults.  Its contract is to *rank* plans sanely, nothing more.
    """

    #: Selectivity guess for a filtering condition the model cannot read.
    DEFAULT_FILTER = 0.5
    #: Fan-out guess for a method-variable hop.
    DEFAULT_FAN = 4.0

    def __init__(self, store: ObjectStore) -> None:
        self.store = store
        self.stats = store.statistics
        self._universe = max(1, len(store.individual_universe()))
        self._classes = max(1, len(store.hierarchy.classes()))
        self._methods = max(1, len(store.method_names()))

    # ------------------------------------------------------------------

    def universe_size(self, sort: VarSort) -> float:
        if sort == VarSort.CLASS:
            return float(self._classes)
        if sort == VarSort.METHOD:
            return float(self._methods)
        return float(self._universe)

    def extent_rows(self, cls: Atom) -> float:
        if cls not in self.store.hierarchy:
            return float(self._universe)
        return float(max(1, self.store.extent_estimate(cls)))

    def fan_out(self, method: object) -> float:
        if not isinstance(method, Atom):
            return self.DEFAULT_FAN
        stats = self.stats.method_stats(method)
        return stats.fan_out if stats.cells else 1.0

    def ground_selector_rows(self, method: Atom, value: Oid) -> float:
        """Expected owners whose *method* cell contains *value*."""
        stats = self.stats.method_stats(method)
        if not stats.cells:
            return 1.0
        return max(stats.expected_owners(value), 0.0)

    def ground_selector_fraction(self, method: Atom, value: Oid) -> float:
        """P(a walked value equals *value*) — tail-selectivity of a hop."""
        stats = self.stats.method_stats(method)
        if not stats.rows:
            return self.DEFAULT_FILTER
        return min(1.0, max(self.ground_selector_rows(method, value), 0.05)
                   / stats.rows)


class CostPlanner:
    """Orders conjuncts and picks access paths by estimated cost."""

    #: Under ``pointer_mode="auto"``, fuse only when the skipped extent
    #: scan is at least this many estimated rows — skipping a tiny scan
    #: perturbs the plan for no measurable win.
    MIN_POINTER_EXTENT = 8.0

    def __init__(
        self,
        store: ObjectStore,
        index_mode: str = "auto",
        payoff_threshold: float = 4.0,
        min_scan_rows: int = 32,
        pointer_mode: str = "auto",
    ) -> None:
        if index_mode not in ("auto", "manual", "off"):
            raise ValueError(
                f"index_mode must be auto/manual/off, got {index_mode!r}"
            )
        if pointer_mode not in ("auto", "off", "force"):
            raise ValueError(
                f"pointer_mode must be auto/off/force, got {pointer_mode!r}"
            )
        self.store = store
        self.model = CostModel(store)
        self.index_mode = index_mode
        self.pointer_mode = pointer_mode
        #: Auto-enable an index only when the estimated scan is at least
        #: this many times the estimated probe result...
        self.payoff_threshold = payoff_threshold
        #: ...and the scan is at least this large (tiny extents never pay
        #: for index maintenance).
        self.min_scan_rows = min_scan_rows

    # ------------------------------------------------------------------
    # applicability (mirrors the greedy planner's rules)
    # ------------------------------------------------------------------

    def applicable(self, query: ast.Query) -> bool:
        if query.creates_objects:
            return False
        if query.where is not None and _cond_has_updates(query.where):
            return False
        return True

    # ------------------------------------------------------------------
    # probe discovery
    # ------------------------------------------------------------------

    def find_probes(self, conjuncts: Sequence[ast.Cond]) -> List[ProbeSpec]:
        """Index-probe opportunities among the *top-level* conjuncts.

        Only a conjunct of the whole WHERE may restrict a variable: a
        disjunct or a negated condition does not have to hold in every
        answer, so nothing inside OR/NOT ever produces a probe.
        """
        probes: List[ProbeSpec] = []
        seen: Set[Tuple[Variable, Atom]] = set()
        for cond in conjuncts:
            spec = self._probe_of(cond)
            if spec is not None and (spec.var, spec.method) not in seen:
                seen.add((spec.var, spec.method))
                probes.append(spec)
        return probes

    @staticmethod
    def _probe_of(cond: ast.Cond) -> Optional[ProbeSpec]:
        if not isinstance(cond, ast.PathCond):
            return None
        path = cond.path
        head = path.head
        if (
            not isinstance(head, Variable)
            or head.sort != VarSort.INDIVIDUAL
            or not path.steps
        ):
            return None
        step = path.steps[0]
        method = step.method_expr.method
        if not isinstance(method, Atom):
            return None
        if not isinstance(step.selector, Oid):
            return None
        args = tuple(step.method_expr.args)
        if not all(isinstance(a, Oid) for a in args):
            return None
        return ProbeSpec(head, method, step.selector, args)

    def _usable_probes(
        self, probes: List[ProbeSpec], scan_rows: Dict[Variable, float]
    ) -> Tuple[List[ProbeSpec], List[Atom]]:
        """Filter probes by index availability, auto-enabling when it pays."""
        if self.index_mode == "off":
            return [], []
        usable: List[ProbeSpec] = []
        enabled: List[Atom] = []
        for spec in probes:
            if self.store.index_is_complete_for(spec.method):
                usable.append(spec)
                continue
            if self.index_mode != "auto":
                continue
            if not self.store.reverse_lookup_sound(spec.method):
                continue
            scan = scan_rows.get(
                spec.var, float(self.model.universe_size(spec.var.sort))
            )
            expected = max(
                self.model.ground_selector_rows(spec.method, spec.value), 1.0
            )
            if scan < self.min_scan_rows:
                continue
            if scan / expected < self.payoff_threshold:
                continue
            self.store.enable_index(spec.method)
            enabled.append(spec.method)
            usable.append(spec)
        return usable, enabled

    # ------------------------------------------------------------------
    # per-conjunct estimation
    # ------------------------------------------------------------------

    def _estimate(
        self,
        cond: ast.Cond,
        bound: Set[Variable],
        probed: Dict[Variable, ProbeSpec],
    ) -> Tuple[float, float, str]:
        """(stream multiplier, per-binding cost, access path) of *cond*."""
        model = self.model
        if isinstance(cond, ast.PathCond):
            return self._estimate_path(cond, bound, probed)
        unbound = [v for v in ast.cond_variables(cond) if v not in bound]
        blowup = 1.0
        for var in unbound:
            blowup *= model.universe_size(var.sort)
        if isinstance(cond, ast.SchemaCond):
            return _clip(blowup * 0.5), 1.0 + len(unbound), "filter"
        if isinstance(cond, ast.Comparison):
            if unbound and self._binds_by_membership(cond, bound):
                # `Z = <set>` binds Z from the set, not the universe.
                return model.DEFAULT_FAN, 2.0, "filter"
            return (
                _clip(blowup * model.DEFAULT_FILTER),
                1.0 + blowup,
                "filter",
            )
        if isinstance(cond, ast.NotCond):
            return (
                _clip(blowup * model.DEFAULT_FILTER),
                2.0 + blowup,
                "filter",
            )
        # OR and anything else: coarse filter-ish behaviour.
        return _clip(max(blowup, 1.0)), 2.0 + blowup, "filter"

    @staticmethod
    def _binds_by_membership(
        cond: ast.Comparison, bound: Set[Variable]
    ) -> bool:
        """Mirrors the evaluator's `Z = <set>` membership fast path."""
        if cond.op != "=":
            return False

        def bare_unbound(operand: ast.Operand) -> bool:
            return (
                isinstance(operand, ast.PathOperand)
                and operand.path.is_trivial
                and isinstance(operand.path.head, Variable)
                and operand.path.head not in bound
            )

        return (cond.rq in (None, "some") and bare_unbound(cond.lhs)) or (
            cond.lq in (None, "some") and bare_unbound(cond.rhs)
        )

    def _estimate_path(
        self,
        cond: ast.PathCond,
        bound: Set[Variable],
        probed: Dict[Variable, ProbeSpec],
    ) -> Tuple[float, float, str]:
        model = self.model
        path = cond.path
        head = path.head
        mult = 1.0
        access = "bound-walk"
        if isinstance(head, Variable) and head not in bound:
            spec = probed.get(head)
            if spec is not None:
                mult = max(
                    model.ground_selector_rows(spec.method, spec.value), 0.5
                )
                access = "index-probe"
            else:
                mult = model.universe_size(head.sort)
                access = "universe-scan"
        elif not isinstance(head, Variable) and not isinstance(head, Oid):
            access = "walk"  # App heads: id-function instance enumeration
        cost = 1.0
        first = (
            probed.get(head) is not None
            if isinstance(head, Variable)
            else False
        )
        for position, step in enumerate(path.steps):
            method = step.method_expr.method
            fan = model.fan_out(method)
            cost += mult if mult > 1.0 else 1.0
            for arg in step.method_expr.args:
                if isinstance(arg, Variable) and arg not in bound:
                    mult *= model.universe_size(arg.sort)
            selector = step.selector
            if selector is None:
                mult *= fan
            elif isinstance(selector, Oid):
                if position == 0 and first:
                    # The probe already applied this selectivity while
                    # restricting the head; do not charge it twice.
                    pass
                elif isinstance(method, Atom):
                    mult *= fan * model.ground_selector_fraction(
                        method, selector
                    )
                else:
                    mult *= fan * model.DEFAULT_FILTER
            elif isinstance(selector, Variable) and selector in bound:
                mult *= fan * model.DEFAULT_FILTER
            else:
                mult *= fan  # unbound selector variable: binds, no filter
        return _clip(mult), _clip(cost), access

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------

    def _simulate(
        self,
        conjuncts: Sequence[ast.Cond],
        order: Sequence[int],
        seed: Set[Variable],
        rows0: float,
        probed: Dict[Variable, ProbeSpec],
    ) -> Tuple[float, float, List[Tuple[int, str, float]]]:
        """Total cost, final rows, and per-entry (index, access, rows)."""
        bound = set(seed)
        rows = rows0
        total = 0.0
        shape: List[Tuple[int, str, float]] = []
        for index in order:
            cond = conjuncts[index]
            mult, unit, access = self._estimate(cond, bound, probed)
            total = _clip(total + rows * unit)
            rows = _clip(max(rows, 1.0) * mult)
            bound |= set(ast.cond_variables(cond))
            shape.append((index, access, rows))
        return total, rows, shape

    def _order(
        self,
        conjuncts: Sequence[ast.Cond],
        seed: Set[Variable],
        rows0: float,
        probed: Dict[Variable, ProbeSpec],
    ) -> Tuple[List[int], str]:
        n = len(conjuncts)
        if n <= 1:
            return list(range(n)), "none"
        if n <= EXHAUSTIVE_LIMIT:
            best: Optional[Tuple[float, float, Tuple[int, ...]]] = None
            for perm in itertools.permutations(range(n)):
                total, rows, _shape = self._simulate(
                    conjuncts, perm, seed, rows0, probed
                )
                key = (total, rows, perm)
                if best is None or key < best:
                    best = key
            assert best is not None
            return list(best[2]), "exhaustive"
        remaining = list(range(n))
        bound = set(seed)
        rows = rows0
        order: List[int] = []
        while remaining:
            def score(i: int) -> Tuple[float, float]:
                mult, unit, _access = self._estimate(
                    conjuncts[i], bound, probed
                )
                return (max(rows, 1.0) * mult, unit)

            chosen = min(remaining, key=score)
            remaining.remove(chosen)
            mult, _unit, _access = self._estimate(
                conjuncts[chosen], bound, probed
            )
            rows = _clip(max(rows, 1.0) * mult)
            bound |= set(ast.cond_variables(conjuncts[chosen]))
            order.append(chosen)
        return order, "greedy"

    # ------------------------------------------------------------------
    # pointer-join fusion
    # ------------------------------------------------------------------

    @staticmethod
    def _bare_var(operand: ast.Operand) -> Optional[Variable]:
        if (
            isinstance(operand, ast.PathOperand)
            and operand.path.is_trivial
            and isinstance(operand.path.head, Variable)
        ):
            return operand.path.head
        return None

    @staticmethod
    def _backward_head(operand: ast.Operand) -> Optional[Variable]:
        """Head variable of a single-hop ``X.m`` path the inverted index
        on ``m`` can answer for; None when the shape does not apply."""
        if not isinstance(operand, ast.PathOperand):
            return None
        path = operand.path
        if len(path.steps) != 1 or not isinstance(path.head, Variable):
            return None
        step = path.steps[0]
        if step.selector is not None:
            return None
        if not isinstance(step.method_expr.method, Atom):
            return None
        if not all(isinstance(a, Oid) for a in step.method_expr.args):
            return None
        return path.head

    def _pointer_choice(
        self,
        cond: ast.Cond,
        from_decls: Dict[Variable, ast.FromDecl],
        occurrences: Dict[Variable, int],
        fused: Set[Variable],
    ) -> Optional[Tuple[Variable, str]]:
        """The (variable, direction) a PointerJoin would bind for *cond*.

        Soundness rules: the fused variable must be a FROM range variable
        over a constant class, must occur in no other conjunct (its scan
        is skipped, so an earlier conjunct must never see it unbound),
        and must not appear on the other side of the equality.
        """
        if not isinstance(cond, ast.Comparison) or cond.op != "=":
            return None
        if cond.lq not in (None, "some") or cond.rq not in (None, "some"):
            return None
        if not isinstance(cond.lhs, ast.PathOperand):
            return None
        if not isinstance(cond.rhs, ast.PathOperand):
            return None

        def fusable(var: Optional[Variable]) -> bool:
            return (
                var is not None
                and var.sort == VarSort.INDIVIDUAL
                and var not in fused
                and occurrences.get(var) == 1
                and var in from_decls
                and isinstance(from_decls[var].cls, Atom)
            )

        # Forward navigation: a bare range variable bound by
        # dereferencing the other side.  When both sides qualify, skip
        # the larger extent.
        forward: List[Tuple[float, str, Variable]] = []
        for mine, other in ((cond.lhs, cond.rhs), (cond.rhs, cond.lhs)):
            var = self._bare_var(mine)
            if not fusable(var) or var in operand_join_vars(other):
                continue
            forward.append(
                (self.model.extent_rows(from_decls[var].cls), str(var), var)
            )
        if forward:
            forward.sort(key=lambda item: (-item[0], item[1]))
            return forward[0][2], "forward"
        # Backward navigation: a single-hop path head bound by probing
        # the inverted index with the other side's values.  Only chosen
        # when the index answers reverse lookups exactly today —
        # otherwise the operator would fall back on every execution.
        for mine, other in ((cond.lhs, cond.rhs), (cond.rhs, cond.lhs)):
            var = self._backward_head(mine)
            if not fusable(var) or var in operand_join_vars(other):
                continue
            method = mine.path.steps[0].method_expr.method
            if not self.store.index_is_complete_for(method):
                continue
            return var, "backward"
        return None

    def _fuse_pointers(
        self,
        query: ast.Query,
        plan: CostPlan,
        conjuncts: Sequence[ast.Cond],
        order: Sequence[int],
    ) -> None:
        """Rewrite fusable equality conjuncts into pointer navigation.

        A conjunct equating an OID-valued path with a range variable can
        bind that variable by following stored references instead of
        hash-joining against the class extent.  The fused variable's
        FROM entry is re-marked ``"pointer-fused"`` (the factored
        lowering skips its scan) and the conjunct becomes a
        ``join_strategy="pointer"`` entry.  Everything stays advisory:
        the PointerJoin operator re-checks its preconditions at runtime
        and falls back to scan + merge semantics bit-identically.
        """
        if self.pointer_mode == "off" or not order:
            return
        from_decls = {decl.var: decl for decl in query.from_}
        occurrences: Dict[Variable, int] = {}
        for cond in conjuncts:
            for var in set(ast.cond_variables(cond)):
                occurrences[var] = occurrences.get(var, 0) + 1
        fused: Set[Variable] = set()
        n_from = len(query.from_)
        from_position = {decl.var: i for i, decl in enumerate(query.from_)}
        for position, index in enumerate(order):
            cond = conjuncts[index]
            entry = plan.entries[n_from + position]
            if entry.join_strategy not in ("hash", "semi"):
                continue
            choice = self._pointer_choice(
                cond, from_decls, occurrences, fused
            )
            if choice is None:
                continue
            var, direction = choice
            if (
                self.pointer_mode == "auto"
                and self.model.extent_rows(from_decls[var].cls)
                < self.MIN_POINTER_EXTENT
            ):
                continue
            fused.add(var)
            from_entry = plan.entries[from_position[var]]
            from_entry.access_path = "pointer-fused"
            from_entry.detail = f"fused into {entry.label}"
            entry.join_strategy = "pointer"
            entry.access_path = f"pointer-{direction}"
            entry.pointer_var = var
            entry.pointer_direction = direction
            entry.detail = f"{direction} navigation binds {var}"

    # ------------------------------------------------------------------
    # the public entry point
    # ------------------------------------------------------------------

    def plan(
        self,
        query: ast.Query,
        range_classes: Optional[Dict[Variable, List[Atom]]] = None,
    ) -> CostPlan:
        """Cost the query: join order, access paths, probes, estimates.

        *range_classes* carries the Theorem 6.1 range assignment (when the
        query is strictly well-typed) so restricted ranges can be costed
        as an access path; pass None outside the strict fragment.
        """
        plan = CostPlan(version=self.store.version)
        model = self.model
        conjuncts = (
            _flatten(query.where) if self.applicable(query) else []
        )
        probes = self.find_probes(conjuncts)

        # FROM stage: estimate each declaration's candidate set.
        seed: Set[Variable] = set()
        rows = 1.0
        scan_rows: Dict[Variable, float] = {}
        for decl in query.from_:
            if isinstance(decl.cls, Variable):
                scan_rows[decl.var] = float(model.universe_size(VarSort.INDIVIDUAL))
            else:
                scan_rows[decl.var] = model.extent_rows(decl.cls)

        probes, auto_enabled = self._usable_probes(probes, scan_rows)
        probed = {spec.var: spec for spec in probes}

        for decl in query.from_:
            seed.add(decl.var)
            if isinstance(decl.cls, Variable):
                seed.add(decl.cls)
            base = scan_rows[decl.var]
            access = "extent-scan"
            detail = ""
            spec = probed.get(decl.var)
            if spec is not None:
                probe_rows = max(
                    model.ground_selector_rows(spec.method, spec.value), 0.5
                )
                if probe_rows < base:
                    base = probe_rows
                access = "index-probe"
                detail = spec.render()
            elif range_classes and decl.var in range_classes:
                classes = range_classes[decl.var]
                if classes:
                    restricted = min(
                        model.extent_rows(cls) for cls in classes
                    )
                    if restricted < base:
                        base = restricted
                        access = "restricted-range"
                        detail = "Thm 6.1: " + " ∩ ".join(
                            cls.name for cls in classes
                        )
            rows = _clip(rows * max(base, 1.0))
            cls_name = str(decl.cls)
            plan.entries.append(
                PlanEntry(
                    kind="from",
                    label=f"FROM {cls_name} {decl.var}",
                    access_path=access,
                    estimated_rows=rows,
                    detail=detail,
                )
            )

        order, search = self._order(conjuncts, seed, rows, probed)
        _total, final_rows, shape = self._simulate(
            conjuncts, order, seed, rows, probed
        )
        for index, access, entry_rows in shape:
            cond = conjuncts[index]
            plan.entries.append(
                PlanEntry(
                    kind="cond",
                    label=_shorten(str(cond)),
                    access_path=access,
                    estimated_rows=entry_rows,
                    join_strategy=join_strategy_of(cond),
                )
            )
        self._fuse_pointers(query, plan, conjuncts, order)
        if conjuncts:
            ordered = [conjuncts[i] for i in order]
            plan.ordered_where = (
                ordered[0]
                if len(ordered) == 1
                else ast.AndCond(tuple(ordered))
            )
            plan.estimated_result_rows = final_rows
        else:
            plan.estimated_result_rows = rows if query.from_ else 1.0
        plan.probes = tuple(probes)
        plan.auto_enabled = tuple(auto_enabled)
        plan.search = search
        # Stamped last: auto-enabling an index above bumps the schema and
        # hence the statistics generation; stamping earlier would make
        # this very plan look stale on its first run.
        plan.version = self.store.version
        return plan

    def apply(self, query: ast.Query, plan: CostPlan) -> ast.Query:
        """The query with its WHERE rewritten to the plan's join order."""
        if plan.ordered_where is None:
            return query
        return ast.Query(
            select=query.select,
            from_=query.from_,
            where=plan.ordered_where,
            oid_vars=query.oid_vars,
            oid_scope=query.oid_scope,
        )
