"""An interactive XSQL shell.

Run with::

    python -m repro.xsql.repl [--paper | --synthetic N]
                              [--plan {none,greedy,typed,cost}]
                              [--batch-format {rows,columnar}]
                              [--workers N] [--stats]
                              [--storage SPEC]

Statements end with ``;``.  Meta-commands (no semicolon):

* ``.help``            — this text
* ``.schema``          — list classes and their signatures
* ``.describe <oid>``  — dump one object
* ``.explain <query>`` — typing discipline, plan, and access paths;
  ``.explain analyze <query>`` also executes the query and annotates
  the physical-operator tree with actual row counts and timings
* ``.naive <query>``   — evaluate with the literal §3.4 semantics
* ``.indexes``         — list inverted indexes; ``.indexes +M``/``-M``
  enables/disables one on method ``M``
* ``.stats``           — cumulative pipeline metrics for this session
* ``.views``           — materialized views with staleness (fresh /
  delta-pending / rebuild-pending) and last-maintenance cost
* ``.open <spec>``     — attach a storage backend: a path (WAL-backed
  database directory, recovered if it exists), ``memory``, or
  ``log:PATH`` — the current database is carried over if the target
  is empty, adopted from it otherwise
* ``.checkpoint``      — persist the database at a durable point
* ``.storage``         — the attached backend's status line
* ``.version``         — the store's MVCC version (mutation ticket +
  schema/statistics generations) and pin/chain status
* ``.snapshot <query>``— run one query through a read-only snapshot
  pinned at the current version (see ``docs/MVCC.md``)
* ``.save <path>``     — dump the database to JSON (deprecated; prefer
  ``.open``/``.checkpoint``)
* ``.load <path>``     — replace the database from a JSON dump
  (deprecated; prefer ``.open``)
* ``.quit``            — leave

With ``--paper`` the shell starts on the Figure 1 schema and the paper's
instance database, so every example of the paper can be typed in
directly.  ``--plan`` selects the conjunct planner every statement runs
under; ``--batch-format columnar`` (optionally with ``--workers N``)
runs statements over columnar batches with morsel-parallel scans — same
results, warm re-runs served from the session-persistent walker memo;
``--stats`` prints a per-statement pipeline timing line and a cumulative
report on exit.  ``--storage SPEC`` opens the session on a storage
backend up front (same specs as ``.open``; ``--paper``/``--synthetic``
seed the database only when the backend holds nothing yet).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.errors import XsqlError
from repro.oid import Atom
from repro.xsql.lexer import split_script
from repro.xsql.options import BATCH_FORMATS, PLAN_MODES, ExecutionOptions
from repro.xsql.session import Session

__all__ = ["main", "run_repl"]

_BANNER = """XSQL shell — Querying Object-Oriented Databases (SIGMOD 1992)
statements end with ';'   .help for meta-commands   .quit to exit"""


def _make_session(args: argparse.Namespace) -> Session:
    session = Session()
    if args.paper:
        from repro.schema.figure1 import build_figure1_schema
        from repro.workloads.paper_db import populate_paper_database

        build_figure1_schema(session.store)
        populate_paper_database(session.store)
    elif args.synthetic:
        from repro.workloads.generator import (
            WorkloadConfig,
            generate_database,
        )

        generate_database(
            WorkloadConfig(n_people=args.synthetic), session.store
        )
    if getattr(args, "storage", None):
        from repro.storage import StorageOptions

        # A backend that already holds data wins over --paper/--synthetic
        # seeding; an empty one is seeded from the session's store.
        session.attach_storage(StorageOptions.parse(args.storage))
    return session


def _print_schema(session: Session, out) -> None:
    store = session.store
    for cls in store.hierarchy.topological():
        parents = sorted(
            c.name for c in store.hierarchy.direct_superclasses(cls)
        )
        suffix = f" :: {', '.join(parents)}" if parents else ""
        print(f"{cls}{suffix}", file=out)
        for signature in sorted(
            store.declared_signatures(cls), key=str
        ):
            print(f"  {signature}", file=out)


def _handle_meta(
    session: Session,
    line: str,
    out,
    options: Optional[ExecutionOptions] = None,
) -> bool:
    """Process one meta-command; returns False to stop the loop."""
    options = options or ExecutionOptions()
    command, _, rest = line.partition(" ")
    rest = rest.strip()
    if command in (".quit", ".exit"):
        return False
    if command == ".help":
        print(__doc__, file=out)
    elif command == ".schema":
        _print_schema(session, out)
    elif command == ".describe":
        print(session.store.describe(Atom(rest)), file=out)
    elif command == ".explain":
        analyze = False
        if rest.startswith("analyze ") or rest == "analyze":
            analyze = True
            rest = rest[len("analyze") :].strip()
        print(
            session.explain(rest, options=options, analyze=analyze),
            file=out,
        )
    elif command == ".naive":
        print(session.query(rest, engine="naive").pretty(), file=out)
    elif command == ".indexes":
        if rest.startswith("+"):
            session.enable_index(rest[1:].strip())
        elif rest.startswith("-"):
            session.disable_index(rest[1:].strip())
        enabled = session.indexes()
        print(
            "indexes: " + (", ".join(enabled) if enabled else "(none)"),
            file=out,
        )
    elif command == ".stats":
        print(session.metrics.summary(), file=out)
    elif command == ".views":
        status = session.views.maintenance_status()
        if not status:
            print("views: (none)", file=out)
        else:
            for name in sorted(status):
                info = status[name]
                pending = (
                    f" pending_groups={info['pending_groups']}"
                    if info["pending_groups"]
                    else ""
                )
                print(
                    f"{name}: {info['state']} "
                    f"objects={info['objects']}{pending} "
                    f"last={info['last_kind']}"
                    f"/{info['last_groups']} group(s)"
                    f"/{info['last_seconds'] * 1000:.3f}ms",
                    file=out,
                )
    elif command == ".open":
        from repro.storage import StorageOptions

        session.attach_storage(StorageOptions.parse(rest))
        print(_storage_line(session), file=out)
    elif command == ".checkpoint":
        from repro.storage import CommitStamp

        result = session.checkpoint()
        if isinstance(result, CommitStamp):
            print(
                f"checkpoint at lsn={result.lsn} "
                f"({session.storage_options.backend} backend)",
                file=out,
            )
        elif hasattr(result, "objects"):
            print(
                f"checkpointed {result.objects} object(s) to "
                f"{session.storage_options.path}",
                file=out,
            )
        else:
            print(
                "snapshot taken in memory only — .open a path to make "
                "checkpoints durable",
                file=out,
            )
    elif command == ".storage":
        print(_storage_line(session), file=out)
    elif command == ".version":
        print(_version_line(session), file=out)
    elif command == ".snapshot":
        if not rest:
            print(
                "usage: .snapshot <query> — runs the query through a "
                "read-only snapshot pinned at the current version",
                file=out,
            )
        else:
            with session.snapshot_view() as snap:
                print(f"snapshot pinned at {snap.version}", file=out)
                result = snap.query(rest.rstrip(";"), options=options)
                print(result.pretty(limit=50), file=out)
    elif command == ".save":
        from repro.datamodel.serialize import save_store

        report = save_store(session.store, rest)
        print(
            f"saved {report.objects} object(s), {report.cells} cell(s) "
            f"to {rest}",
            file=out,
        )
        for note in report.skipped:
            print(f"  skipped: {note}", file=out)
    elif command == ".load":
        from repro.datamodel.serialize import load_store

        session.replace_store(load_store(rest))
        print(f"loaded {rest}", file=out)
    else:
        print(f"unknown meta-command {command!r} (.help)", file=out)
    return True


def _storage_line(session: Session) -> str:
    status = session.storage_status()
    return "storage: " + "  ".join(
        f"{key}={value}" for key, value in status.items()
    )


def _version_line(session: Session) -> str:
    status = session.version_status()
    return f"version: {session.version}  " + "  ".join(
        f"{key}={value}" for key, value in status.items()
    )


def run_repl(
    session: Session,
    stdin=None,
    stdout=None,
    plan: str = "none",
    show_stats: bool = False,
    options: Optional[ExecutionOptions] = None,
) -> int:
    """Drive the shell over the given streams (testable entry point).

    ``options`` carries the full execution configuration; the ``plan``
    argument is the historical alias and is folded into it.
    """
    resolved = ExecutionOptions.coerce(options, plan=plan if options is None else None)
    stdin = stdin or sys.stdin
    out = stdout or sys.stdout
    print(_BANNER, file=out)
    buffer = ""
    for raw_line in stdin:
        line = raw_line.rstrip("\n")
        stripped = line.strip()
        if not buffer.strip() and stripped.startswith("."):
            buffer = ""
            try:
                if not _handle_meta(session, stripped, out, options=resolved):
                    return 0
            except XsqlError as error:
                print(f"error: {error}", file=out)
            continue
        buffer += line + "\n"
        # Token-level split: a ';' inside a string literal or a comment
        # stays in the statement instead of cutting it short.
        statements, buffer = split_script(buffer)
        for statement in statements:
            if not statement.strip():
                continue
            try:
                result = session.query(statement, options=resolved)
                print(result.pretty(limit=50), file=out)
            except XsqlError as error:
                print(f"error: {error}", file=out)
            if show_stats:
                print(session.metrics.statement_line(), file=out)
    if show_stats:
        print(session.metrics.summary(), file=out)
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description="XSQL interactive shell")
    parser.add_argument(
        "--paper",
        action="store_true",
        help="start on the Figure 1 schema and the paper instance",
    )
    parser.add_argument(
        "--synthetic",
        type=int,
        metavar="N",
        help="start on a synthetic database with N people",
    )
    parser.add_argument(
        "--plan",
        choices=PLAN_MODES,
        default="none",
        help="conjunct planner for executed statements (default: none)",
    )
    parser.add_argument(
        "--batch-format",
        choices=BATCH_FORMATS,
        default="rows",
        help="operator-tree batch representation (default: rows)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for morsel-parallel columnar scans",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-statement pipeline timings and a final summary",
    )
    parser.add_argument(
        "--storage",
        metavar="SPEC",
        help=(
            "storage backend: a database directory path (WAL-backed, "
            "recovered if it exists), 'memory', 'log:PATH', or 'dict'"
        ),
    )
    args = parser.parse_args(argv)
    session = _make_session(args)
    options = ExecutionOptions(
        plan=args.plan,
        batch_format=args.batch_format,
        workers=args.workers,
    ).validate()
    return run_repl(
        session, plan=args.plan, show_stats=args.stats, options=options
    )


if __name__ == "__main__":
    raise SystemExit(main())
