"""AST normalization: sort unification and §5 desugaring.

Two passes run after parsing:

1. **Variable-sort unification.**  The paper lets a bare variable appear in
   attribute position (query (3): ``X.Y.City``), "strictly speaking"
   requiring the method-variable form ``X."Y.City``.  The parser coerces
   sorts positionally; this pass then makes every occurrence of one name
   agree: a name used as a class variable anywhere is a class variable
   everywhere, likewise for method and path variables.  A name used with
   *incompatible* sorts (both ``#X`` and ``"X``) is a syntax error.

2. **Desugaring of path arguments.**  §5: "the path name ``Y.Name`` is used
   as an argument of a method expression ... It should be viewed as a
   shorthand for writing ``(MngrSalary @ Z)`` ... and adding the path
   expression ``Y.Name[Z]`` to the WHERE clause, where ``Z`` is a new
   variable."  The same rewriting applies to id-term arguments (§4.2,
   query (10): ``CompSalaries(X.Manufacturer, W)`` becomes
   ``CompSalaries(Y, W)`` plus conjunct ``X.Manufacturer[Y]``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import XsqlSyntaxError
from repro.oid import Oid, Variable, VarSort
from repro.xsql import ast

__all__ = [
    "unify_variable_sorts",
    "desugar",
    "with_tail_variable",
    "rewrite_variables",
]


# ----------------------------------------------------------------------
# generic variable rewriting
# ----------------------------------------------------------------------


def _map_selector(node, fn):
    if isinstance(node, Variable):
        return fn(node)
    if isinstance(node, ast.App):
        return ast.App(node.functor, tuple(_map_node(a, fn) for a in node.args))
    return node


def _map_node(node, fn):
    if isinstance(node, Variable):
        return fn(node)
    if isinstance(node, ast.App):
        return _map_selector(node, fn)
    if isinstance(node, ast.PathExpr):
        return _map_path(node, fn)
    return node


def _map_path(path: ast.PathExpr, fn) -> ast.PathExpr:
    head = _map_selector(path.head, fn)
    steps = []
    for step in path.steps:
        method = step.method_expr.method
        if isinstance(method, Variable):
            method = fn(method)
        args = tuple(_map_node(a, fn) for a in step.method_expr.args)
        selector = (
            _map_selector(step.selector, fn)
            if step.selector is not None
            else None
        )
        steps.append(
            ast.Step(ast.MethodExpr(method=method, args=args), selector)
        )
    return ast.PathExpr(head=head, steps=tuple(steps))


def _map_operand(operand: ast.Operand, fn) -> ast.Operand:
    if isinstance(operand, ast.PathOperand):
        return ast.PathOperand(_map_path(operand.path, fn))
    if isinstance(operand, ast.AggOperand):
        return ast.AggOperand(operand.fn, _map_path(operand.path, fn))
    if isinstance(operand, (ast.SetOpOperand, ast.ArithOperand)):
        cls = type(operand)
        return cls(
            operand.op,
            _map_operand(operand.left, fn),
            _map_operand(operand.right, fn),
        )
    if isinstance(operand, ast.SubQueryOperand):
        return ast.SubQueryOperand(_map_query(operand.query, fn))
    return operand


def _map_cond(cond: ast.Cond, fn) -> ast.Cond:
    if isinstance(cond, ast.PathCond):
        return ast.PathCond(_map_path(cond.path, fn))
    if isinstance(cond, ast.Comparison):
        return ast.Comparison(
            lhs=_map_operand(cond.lhs, fn),
            op=cond.op,
            rhs=_map_operand(cond.rhs, fn),
            lq=cond.lq,
            rq=cond.rq,
        )
    if isinstance(cond, ast.SchemaCond):
        return ast.SchemaCond(
            cond.kind, _map_node(cond.left, fn), _map_node(cond.right, fn)
        )
    if isinstance(cond, ast.NotCond):
        return ast.NotCond(_map_cond(cond.item, fn))
    if isinstance(cond, ast.AndCond):
        return ast.AndCond(tuple(_map_cond(c, fn) for c in cond.items))
    if isinstance(cond, ast.OrCond):
        return ast.OrCond(tuple(_map_cond(c, fn) for c in cond.items))
    if isinstance(cond, ast.UpdateCond):
        return ast.UpdateCond(_map_update(cond.update, fn))
    return cond


def _map_update(update: ast.UpdateClass, fn) -> ast.UpdateClass:
    return ast.UpdateClass(
        cls=update.cls,
        assignments=tuple(
            (_map_path(p, fn), _map_operand(e, fn))
            for p, e in update.assignments
        ),
    )


def _map_query(query: ast.Query, fn) -> ast.Query:
    select = []
    for item in query.select:
        if isinstance(item, ast.PathItem):
            select.append(
                ast.PathItem(path=_map_path(item.path, fn), name=item.name)
            )
        elif isinstance(item, ast.SetItem):
            var = fn(item.var)
            select.append(ast.SetItem(var=var, name=item.name))
        elif isinstance(item, ast.MethodItem):
            select.append(
                ast.MethodItem(
                    method=item.method,
                    args=tuple(_map_node(a, fn) for a in item.args),
                    value=_map_operand(item.value, fn),
                )
            )
    from_ = tuple(
        ast.FromDecl(
            cls=fn(d.cls) if isinstance(d.cls, Variable) else d.cls,
            var=fn(d.var),
        )
        for d in query.from_
    )
    where = _map_cond(query.where, fn) if query.where is not None else None
    oid_vars = (
        tuple(fn(v) for v in query.oid_vars)
        if query.oid_vars is not None
        else None
    )
    oid_scope = fn(query.oid_scope) if query.oid_scope is not None else None
    return ast.Query(
        select=tuple(select),
        from_=from_,
        where=where,
        oid_vars=oid_vars,
        oid_scope=oid_scope,
    )


def rewrite_variables(node, fn):
    """Rewrite every variable occurrence of *node* with ``fn(var)``."""
    if isinstance(node, ast.Query):
        return _map_query(node, fn)
    if isinstance(node, ast.QueryOp):
        return ast.QueryOp(
            node.op,
            rewrite_variables(node.left, fn),
            rewrite_variables(node.right, fn),
        )
    if isinstance(node, ast.CreateView):
        return ast.CreateView(
            name=node.name,
            superclass=node.superclass,
            signatures=node.signatures,
            query=_map_query(node.query, fn),
        )
    if isinstance(node, ast.AlterClass):
        return ast.AlterClass(
            cls=node.cls,
            signature=node.signature,
            query=_map_query(node.query, fn),
        )
    if isinstance(node, ast.UpdateClass):
        return _map_update(node, fn)
    if isinstance(node, ast.InsertInto):
        if node.query is None:
            return node
        return ast.InsertInto(
            name=node.name, query=_map_query(node.query, fn), rows=node.rows
        )
    if isinstance(node, (ast.CreateClass, ast.CreateRelation)):
        return node
    if isinstance(node, ast.PathExpr):
        return _map_path(node, fn)
    if isinstance(node, ast.Cond):
        return _map_cond(node, fn)
    raise TypeError(f"cannot rewrite {node!r}")


# ----------------------------------------------------------------------
# sort unification
# ----------------------------------------------------------------------

_PRIORITY = {
    VarSort.CLASS: 3,
    VarSort.PATH: 2,
    VarSort.METHOD: 1,
    VarSort.INDIVIDUAL: 0,
}

#: Sorts that may be merged: INDIVIDUAL upgrades to anything; METHOD and
#: PATH may merge (a path of length one is a method); CLASS only merges
#: with INDIVIDUAL.
_COMPATIBLE = {
    frozenset({VarSort.METHOD, VarSort.PATH}),
}


def _collect_sorts(node, sorts: Dict[str, VarSort]) -> None:
    def visit(var: Variable) -> Variable:
        current = sorts.get(var.name)
        if current is None or _PRIORITY[var.sort] > _PRIORITY[current]:
            if (
                current is not None
                and current != var.sort
                and VarSort.INDIVIDUAL not in (current, var.sort)
                and frozenset({current, var.sort}) not in _COMPATIBLE
            ):
                raise XsqlSyntaxError(
                    f"variable {var.name} used with incompatible sorts "
                    f"{current.value} and {var.sort.value}"
                )
            sorts[var.name] = var.sort
        elif (
            current != var.sort
            and VarSort.INDIVIDUAL not in (current, var.sort)
            and frozenset({current, var.sort}) not in _COMPATIBLE
        ):
            raise XsqlSyntaxError(
                f"variable {var.name} used with incompatible sorts "
                f"{current.value} and {var.sort.value}"
            )
        return var

    rewrite_variables(node, visit)


def unify_variable_sorts(node):
    """Make every occurrence of a variable name carry one agreed sort."""
    if isinstance(node, (ast.CreateClass, ast.CreateRelation)):
        return node
    if isinstance(node, ast.InsertInto) and node.query is None:
        return node
    sorts: Dict[str, VarSort] = {}
    _collect_sorts(node, sorts)
    return rewrite_variables(
        node, lambda var: Variable(var.name, sorts[var.name])
    )


# ----------------------------------------------------------------------
# desugaring (§5 / §4.2)
# ----------------------------------------------------------------------


def with_tail_variable(path: ast.PathExpr, var: Variable) -> ast.PathExpr:
    """Attach *var* as the selector of the last step of *path*.

    ``Y.Name`` becomes ``Y.Name[Z]`` — the rewriting the paper uses both in
    §5 and in footnote 13.
    """
    if not path.steps:
        raise ValueError("a trivial path needs no tail variable")
    last = path.steps[-1]
    if last.selector is not None:
        raise ValueError(f"path {path} already has a tail selector")
    new_last = ast.Step(last.method_expr, var)
    return ast.PathExpr(head=path.head, steps=path.steps[:-1] + (new_last,))


class _Desugarer:
    def __init__(self, fresh_prefix: str) -> None:
        self._counter = 0
        self._prefix = fresh_prefix

    def fresh(self) -> Variable:
        self._counter += 1
        return Variable(f"_{self._prefix}{self._counter}")

    # Each _do_* returns (rewritten node, extra conjuncts to insert).

    def _do_arg(self, arg) -> Tuple[object, List[ast.Cond]]:
        if isinstance(arg, ast.PathExpr):
            if arg.is_trivial:
                return arg.head, []
            tail = arg.last_selector()
            if tail is not None and isinstance(tail, (Variable, Oid)):
                # Already ends in a selector: reuse it as the argument.
                return tail, [ast.PathCond(arg)]
            var = self.fresh()
            return var, [ast.PathCond(with_tail_variable(arg, var))]
        if isinstance(arg, ast.App):
            new_args: List[object] = []
            extras: List[ast.Cond] = []
            for inner in arg.args:
                rewritten, more = self._do_arg(inner)
                new_args.append(rewritten)
                extras.extend(more)
            return ast.App(arg.functor, tuple(new_args)), extras
        return arg, []

    def _do_selector(self, node) -> Tuple[object, List[ast.Cond]]:
        if isinstance(node, ast.App):
            return self._do_arg(node)
        return node, []

    def _do_path(self, path: ast.PathExpr) -> Tuple[ast.PathExpr, List[ast.Cond]]:
        extras: List[ast.Cond] = []
        head, more = self._do_selector(path.head)
        extras.extend(more)
        steps: List[ast.Step] = []
        for step in path.steps:
            new_args: List[object] = []
            for arg in step.method_expr.args:
                rewritten, more = self._do_arg(arg)
                new_args.append(rewritten)
                extras.extend(more)
            selector = step.selector
            if selector is not None:
                selector, more = self._do_selector(selector)
                extras.extend(more)
            steps.append(
                ast.Step(
                    ast.MethodExpr(step.method_expr.method, tuple(new_args)),
                    selector,
                )
            )
        return ast.PathExpr(head=head, steps=tuple(steps)), extras

    def _do_operand(
        self, operand: ast.Operand
    ) -> Tuple[ast.Operand, List[ast.Cond]]:
        if isinstance(operand, ast.PathOperand):
            path, extras = self._do_path(operand.path)
            return ast.PathOperand(path), extras
        if isinstance(operand, ast.AggOperand):
            path, extras = self._do_path(operand.path)
            return ast.AggOperand(operand.fn, path), extras
        if isinstance(operand, (ast.SetOpOperand, ast.ArithOperand)):
            left, e1 = self._do_operand(operand.left)
            right, e2 = self._do_operand(operand.right)
            return type(operand)(operand.op, left, right), e1 + e2
        if isinstance(operand, ast.SubQueryOperand):
            return ast.SubQueryOperand(self.do_query(operand.query)), []
        return operand, []

    def _do_cond(self, cond: ast.Cond) -> ast.Cond:
        if isinstance(cond, ast.PathCond):
            path, extras = self._do_path(cond.path)
            new = ast.PathCond(path)
            return self._with_extras(new, extras)
        if isinstance(cond, ast.Comparison):
            lhs, e1 = self._do_operand(cond.lhs)
            rhs, e2 = self._do_operand(cond.rhs)
            new = ast.Comparison(
                lhs=lhs, op=cond.op, rhs=rhs, lq=cond.lq, rq=cond.rq
            )
            return self._with_extras(new, e1 + e2)
        if isinstance(cond, ast.NotCond):
            return ast.NotCond(self._do_cond(cond.item))
        if isinstance(cond, ast.AndCond):
            return ast.AndCond(tuple(self._do_cond(c) for c in cond.items))
        if isinstance(cond, ast.OrCond):
            return ast.OrCond(tuple(self._do_cond(c) for c in cond.items))
        if isinstance(cond, ast.UpdateCond):
            update, extras = self._do_update(cond.update)
            return self._with_extras(ast.UpdateCond(update), extras)
        return cond

    @staticmethod
    def _with_extras(cond: ast.Cond, extras: List[ast.Cond]) -> ast.Cond:
        if not extras:
            return cond
        # The binding conjuncts go first so the fresh variable is bound
        # before the condition that uses it (left-to-right evaluation, §5).
        return ast.AndCond(tuple(extras) + (cond,))

    def _do_update(
        self, update: ast.UpdateClass
    ) -> Tuple[ast.UpdateClass, List[ast.Cond]]:
        extras: List[ast.Cond] = []
        assignments = []
        for path, expr in update.assignments:
            # The SET path itself may use method arguments that are paths.
            new_path, more = self._do_path(path)
            extras.extend(more)
            new_expr, more = self._do_operand(expr)
            extras.extend(more)
            assignments.append((new_path, new_expr))
        return ast.UpdateClass(update.cls, tuple(assignments)), extras

    def do_query(self, query: ast.Query) -> ast.Query:
        extra_conds: List[ast.Cond] = []
        select: List[ast.SelectItem] = []
        for item in query.select:
            if isinstance(item, ast.PathItem):
                path, extras = self._do_path(item.path)
                extra_conds.extend(extras)
                select.append(ast.PathItem(path=path, name=item.name))
            elif isinstance(item, ast.MethodItem):
                new_args: List[object] = []
                for arg in item.args:
                    rewritten, extras = self._do_arg(arg)
                    new_args.append(rewritten)
                    extra_conds.extend(extras)
                value, extras = self._do_operand(item.value)
                extra_conds.extend(extras)
                select.append(
                    ast.MethodItem(
                        method=item.method,
                        args=tuple(new_args),
                        value=value,
                    )
                )
            else:
                select.append(item)
        where = self._do_cond(query.where) if query.where is not None else None
        if extra_conds:
            # Conjuncts from SELECT-item desugaring are appended at the
            # end: SELECT is evaluated after WHERE, so the fresh variables
            # are bound by then regardless of order.
            if where is None:
                where = (
                    extra_conds[0]
                    if len(extra_conds) == 1
                    else ast.AndCond(tuple(extra_conds))
                )
            elif isinstance(where, ast.AndCond):
                where = ast.AndCond(where.items + tuple(extra_conds))
            else:
                where = ast.AndCond((where, *extra_conds))
        return ast.Query(
            select=tuple(select),
            from_=query.from_,
            where=where,
            oid_vars=query.oid_vars,
            oid_scope=query.oid_scope,
        )


def desugar(node, fresh_prefix: str = "z"):
    """Desugar path arguments of method expressions and id-terms."""
    worker = _Desugarer(fresh_prefix)
    if isinstance(node, ast.Query):
        return worker.do_query(node)
    if isinstance(node, ast.QueryOp):
        return ast.QueryOp(
            node.op,
            desugar(node.left, fresh_prefix + "l"),
            desugar(node.right, fresh_prefix + "r"),
        )
    if isinstance(node, ast.CreateView):
        return ast.CreateView(
            name=node.name,
            superclass=node.superclass,
            signatures=node.signatures,
            query=worker.do_query(node.query),
        )
    if isinstance(node, ast.AlterClass):
        return ast.AlterClass(
            cls=node.cls,
            signature=node.signature,
            query=worker.do_query(node.query),
        )
    if isinstance(node, ast.UpdateClass):
        update, extras = worker._do_update(node)
        if extras:
            raise XsqlSyntaxError(
                "a top-level UPDATE CLASS cannot use path arguments that "
                "need auxiliary bindings; wrap it in a query's WHERE clause"
            )
        return update
    if isinstance(node, ast.InsertInto) and node.query is not None:
        return ast.InsertInto(
            name=node.name, query=worker.do_query(node.query), rows=node.rows
        )
    return node
