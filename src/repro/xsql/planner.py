"""A greedy, type-free conjunct planner.

§6.2 derives evaluation orders from *types* (coherent execution plans).
Real engines also reorder by plain *boundness*: evaluate the conjuncts
whose variables are already bound first, so nothing is enumerated blindly.
This module implements that untyped baseline — the benchmark harness
compares it against the Theorem 6.1 plan to show how much of the typed
optimizer's win is recoverable without any schema knowledge (and what
only the typed ranges can add: instantiation restriction).

Reordering is applied only to pure conjunctions (no nested updates — §5
fixes their left-to-right order) and never changes the declarative
semantics: conjunction is commutative for side-effect-free conditions.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.oid import Oid, Variable
from repro.xsql import ast
from repro.xsql.normalize import rewrite_variables

__all__ = ["GreedyPlanner"]


def _cond_has_updates(cond: ast.Cond) -> bool:
    if isinstance(cond, ast.UpdateCond):
        return True
    if isinstance(cond, (ast.AndCond, ast.OrCond)):
        return any(_cond_has_updates(item) for item in cond.items)
    if isinstance(cond, ast.NotCond):
        return _cond_has_updates(cond.item)
    return False


def _flatten(cond: Optional[ast.Cond]) -> List[ast.Cond]:
    if cond is None:
        return []
    if isinstance(cond, ast.AndCond):
        flattened: List[ast.Cond] = []
        for item in cond.items:
            flattened.extend(_flatten(item))
        return flattened
    return [cond]


def _cond_variables(cond: ast.Cond) -> Set[Variable]:
    return set(ast.cond_variables(cond))


class GreedyPlanner:
    """Orders conjuncts so bound-variable conditions run first."""

    def plan_where(
        self, conjuncts: List[ast.Cond], seed: Set[Variable]
    ) -> List[ast.Cond]:
        remaining = list(conjuncts)
        bound = set(seed)
        ordered: List[ast.Cond] = []
        while remaining:
            best_index = min(
                range(len(remaining)),
                key=lambda i: self._score(remaining[i], bound),
            )
            chosen = remaining.pop(best_index)
            ordered.append(chosen)
            bound |= _cond_variables(chosen)
        return ordered

    def _score(self, cond: ast.Cond, bound: Set[Variable]) -> Tuple:
        """Lower scores run earlier.

        The primary key is the number of *blind* enumeration points the
        condition would cause right now: an unbound path head costs the
        whole universe; unbound comparison variables likewise.  Path
        conditions are preferred over comparisons at equal cost because
        they *bind* variables for later conjuncts.
        """
        unbound = {
            v for v in _cond_variables(cond) if v not in bound
        }
        if isinstance(cond, ast.PathCond):
            head = cond.path.head
            head_blind = int(
                isinstance(head, Variable) and head not in bound
            )
            return (head_blind, len(unbound), 0)
        if isinstance(cond, ast.SchemaCond):
            # class universes are tiny; schedule by unbound count only.
            return (0, len(unbound), 1)
        if isinstance(cond, ast.Comparison):
            # comparisons filter; with unbound variables they enumerate.
            return (int(bool(unbound)), len(unbound), 2)
        # negation last: it tests, never binds.
        return (int(bool(unbound)), len(unbound), 3)

    # ------------------------------------------------------------------

    def applicable(self, query: ast.Query) -> bool:
        if query.where is None:
            return False
        if _cond_has_updates(query.where):
            return False
        return True

    def reorder(self, query: ast.Query) -> ast.Query:
        """Reorder the WHERE conjunction by boundness (semantics-neutral)."""
        if not self.applicable(query):
            return query
        seed: Set[Variable] = {decl.var for decl in query.from_}
        seed.update(
            decl.cls for decl in query.from_ if isinstance(decl.cls, Variable)
        )
        conjuncts = _flatten(query.where)
        if len(conjuncts) <= 1:
            return query
        ordered = self.plan_where(conjuncts, seed)
        where: ast.Cond = (
            ordered[0] if len(ordered) == 1 else ast.AndCond(tuple(ordered))
        )
        return ast.Query(
            select=query.select,
            from_=query.from_,
            where=where,
            oid_vars=query.oid_vars,
            oid_scope=query.oid_scope,
        )
