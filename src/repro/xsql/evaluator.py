"""Query evaluation (paper §3.4, extended with methods in §5).

Two engines implement the same declarative semantics:

* :class:`Evaluator` — the production engine.  It streams variable
  bindings: FROM declarations seed the stream, each WHERE condition
  extends/filters it left-to-right (the order the paper prescribes for
  conjunctions containing updates, §5), and SELECT projects satisfying
  bindings into result tuples.  Variables that a condition cannot bind by
  walking (e.g. free variables of a comparison) are enumerated over their
  sort universes, so the engine is *complete* for the naive semantics, not
  just for range-restricted queries.

* :class:`NaiveEvaluator` — the literal §3.4 procedure: enumerate every
  sort-respecting substitution of oids for variables, keep those consistent
  with FROM, boolean-evaluate WHERE, evaluate SELECT.  Exponential, but an
  executable specification — the test suite checks ``Evaluator`` against it
  on small databases.
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.datamodel.store import ObjectStore
from repro.errors import QueryError, UnsafeQueryError
from repro.oid import Atom, FuncOid, Oid, Value, Variable, VarSort, term_sort_key
from repro.xsql import ast
from repro.xsql.aggregates import apply_aggregate
from repro.xsql.comparisons import compare
from repro.xsql.paths import Bindings, PathWalker, resolve_term
from repro.xsql.result import QueryResult

__all__ = ["Evaluator", "NaiveEvaluator"]


def _freeze_env(env: Bindings) -> Tuple:
    return tuple(
        sorted(env.items(), key=lambda kv: (kv[0].name, kv[0].sort.value))
    )


def _dedup(stream: Iterator[Bindings]) -> Iterator[Bindings]:
    seen: Set[Tuple] = set()
    for env in stream:
        key = _freeze_env(env)
        if key not in seen:
            seen.add(key)
            yield env


class Evaluator:
    """The binding-stream evaluator for XSQL queries."""

    def __init__(
        self,
        store: ObjectStore,
        id_function_instances=None,
        max_path_var_length: int = 6,
        restrictions: Optional[Dict[Variable, FrozenSet[Oid]]] = None,
        metrics=None,
        walker: Optional[PathWalker] = None,
    ) -> None:
        self.store = store
        # A caller may supply a shared (session-persistent) walker so its
        # generation-stamped caches survive across runs; it must have
        # been built over the same store and restrictions.
        self.walker = walker if walker is not None else PathWalker(
            store,
            max_path_var_length=max_path_var_length,
            id_function_instances=id_function_instances,
            restrictions=restrictions,
            metrics=metrics,
        )
        self._restrictions = restrictions or {}
        self._metrics = metrics
        # (subquery identity, correlation bindings) -> answer set.
        self._subquery_cache: Dict[Tuple, FrozenSet[Oid]] = {}

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def run(
        self,
        query: Union[ast.Query, ast.QueryOp],
        initial: Optional[Bindings] = None,
    ) -> QueryResult:
        """Evaluate a relation-producing query (§3.3/§3.4).

        Object-creating queries (``OID FUNCTION OF``) are executed by
        :mod:`repro.views.creation`; method-defining queries by
        :mod:`repro.xsql.ddl`.
        """
        if isinstance(query, ast.QueryOp):
            left = self.run(query.left, initial)
            right = self.run(query.right, initial)
            if query.op == "union":
                return left.union(right)
            if query.op == "minus":
                return left.minus(right)
            return left.intersect(right)
        if query.creates_objects:
            raise QueryError(
                "object-creating queries must run through the session's "
                "view manager (they mint oids)"
            )
        if any(isinstance(item, ast.MethodItem) for item in query.select):
            raise QueryError(
                "method-defining SELECT items only appear inside "
                "ALTER CLASS statements"
            )
        columns = [self._column_name(item) for item in query.select]
        result = QueryResult(columns)
        for env in self.env_stream(query, initial):
            for row in self._select_rows(query.select, env):
                result.add(row)
        return result

    @staticmethod
    def _column_name(item: ast.SelectItem) -> str:
        if isinstance(item, ast.PathItem):
            return item.name or str(item.path)
        if isinstance(item, ast.SetItem):
            return item.name
        raise QueryError(f"unsupported SELECT item {item}")

    def _select_rows(
        self, items: Sequence[ast.SelectItem], env: Bindings
    ) -> Iterator[Tuple[Oid, ...]]:
        """Expand SELECT items into result tuples under one binding.

        Items are walked jointly so variables shared between SELECT paths
        stay consistent; a set-shaped item contributes one tuple per
        element, "flattening" exactly like path expressions do (§1).
        """

        def recurse(
            index: int, current: Bindings, acc: Tuple[Oid, ...]
        ) -> Iterator[Tuple[Oid, ...]]:
            if index == len(items):
                yield acc
                return
            item = items[index]
            if not isinstance(item, ast.PathItem):
                raise QueryError(
                    "set-attribute SELECT items require OID FUNCTION OF"
                )
            for hit in self.walker.walk(item.path, current):
                yield from recurse(index + 1, hit.bindings(), acc + (hit.tail,))

        yield from recurse(0, env, ())

    # ------------------------------------------------------------------
    # the binding stream
    # ------------------------------------------------------------------

    def env_stream(
        self, query: ast.Query, initial: Optional[Bindings] = None
    ) -> Iterator[Bindings]:
        """All satisfying bindings of *query*'s FROM and WHERE clauses."""
        envs: Iterator[Bindings] = iter([dict(initial or {})])
        for decl in query.from_:
            envs = self._bind_from(decl, envs)
        if query.where is not None:
            envs = self._chain(query.where, envs)
        return _dedup(envs)

    def _chain(
        self, cond: ast.Cond, envs: Iterator[Bindings]
    ) -> Iterator[Bindings]:
        for env in envs:
            yield from self.eval_cond(cond, env)

    def _bind_from(
        self, decl: ast.FromDecl, envs: Iterator[Bindings]
    ) -> Iterator[Bindings]:
        for env in envs:
            yield from self._bind_from_env(decl, env)

    def _bind_from_env(
        self, decl: ast.FromDecl, env: Bindings
    ) -> Iterator[Bindings]:
        for env1, cls in self._from_classes(decl, env):
            bound_var = env1.get(decl.var)
            if bound_var is not None:
                if self.store.is_instance(bound_var, cls):
                    yield env1
                continue
            candidates, admit = self._scan_candidates(decl, env1, cls)
            for obj in candidates:
                if not admit(obj):
                    continue
                env2 = dict(env1)
                env2[decl.var] = obj
                yield env2

    def _from_classes(
        self, decl: ast.FromDecl, env: Bindings
    ) -> Iterator[Tuple[Bindings, Atom]]:
        """Each admissible class for *decl* under *env*, with the class
        variable (when the FROM class is one) bound into a fresh env.

        The columnar scan operator consumes this directly so its
        per-class candidate streams stay binding-identical to
        :meth:`_bind_from`.
        """
        cls_term = decl.cls
        class_candidates: List[Atom]
        if isinstance(cls_term, Variable):
            bound = env.get(cls_term)
            if bound is not None:
                class_candidates = [bound]  # type: ignore[list-item]
            else:
                class_candidates = self.walker.universe(VarSort.CLASS)
        else:
            class_candidates = [cls_term]
        for cls in class_candidates:
            if cls not in self.store.hierarchy:
                continue
            env1 = dict(env)
            if isinstance(cls_term, Variable):
                env1[cls_term] = cls
            yield env1, cls

    def _scan_candidates(
        self, decl: ast.FromDecl, env1: Bindings, cls: Atom
    ) -> Tuple[Sequence[Atom], "Callable[[Atom], bool]"]:
        """The ordered candidate stream for one scan, plus its admission
        predicate — the morsel unit of the columnar scan operator."""
        restriction = self.walker.restriction_for(decl.var)
        if restriction is not None and len(restriction) * 4 <= max(
            1, self.store.extent_estimate(cls)
        ):
            # A restriction much smaller than the extent (an index
            # probe, typically): membership-check the restricted
            # candidates instead of scanning the whole extent.
            # Identical result set — restriction ∩ extent either way.
            if self._metrics is not None:
                self._metrics.count("scan.restricted_from")
            return (
                self.walker.variable_candidates(decl.var),
                lambda obj: self.store.is_instance(obj, cls),
            )
        if self._metrics is not None:
            self._metrics.count("scan.extent")
        return (
            self.walker.extent_sorted(cls),
            lambda obj: self.walker.admits(decl.var, obj),
        )

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------

    def eval_cond(self, cond: ast.Cond, env: Bindings) -> Iterator[Bindings]:
        if isinstance(cond, ast.PathCond):
            yield from self._eval_path_cond(cond, env)
        elif isinstance(cond, ast.Comparison):
            yield from self._eval_comparison(cond, env)
        elif isinstance(cond, ast.SchemaCond):
            yield from self._eval_schema_cond(cond, env)
        elif isinstance(cond, ast.AndCond):
            stream: Iterator[Bindings] = iter([env])
            for item in cond.items:
                stream = self._chain(item, stream)
            yield from _dedup(stream)
        elif isinstance(cond, ast.OrCond):
            def branches() -> Iterator[Bindings]:
                for item in cond.items:
                    yield from self.eval_cond(item, env)

            yield from _dedup(branches())
        elif isinstance(cond, ast.NotCond):
            yield from self._eval_not(cond, env)
        elif isinstance(cond, ast.UpdateCond):
            if self.execute_update(cond.update, env):
                yield env
        else:
            raise QueryError(f"unsupported condition {cond!r}")

    def _eval_path_cond(
        self, cond: ast.PathCond, env: Bindings
    ) -> Iterator[Bindings]:
        head = cond.path.head
        if (
            isinstance(head, ast.App)
            and cond.path.is_trivial
            and head.functor in self.store.relations()
        ):
            yield from self._eval_relation_membership(head, env)
            return
        seen: Set[Tuple] = set()
        for hit in self.walker.walk(cond.path, env):
            key = hit.env
            if key not in seen:
                seen.add(key)
                yield hit.bindings()

    def _eval_relation_membership(
        self, head: ast.App, env: Bindings
    ) -> Iterator[Bindings]:
        """First-class relations as predicates in WHERE (§2 "Relations")."""
        relation = self.store.relation(head.functor)
        for row in relation:
            new_env = dict(env)
            if PathWalker._unify_args(
                tuple(resolve_term(a, env) for a in head.args), row, new_env
            ):
                yield new_env

    def _eval_schema_cond(
        self, cond: ast.SchemaCond, env: Bindings
    ) -> Iterator[Bindings]:
        def candidates(
            term: object, universe: List[Oid], current: Bindings
        ) -> Iterator[Tuple[Bindings, Oid]]:
            resolved = resolve_term(term, current)
            if isinstance(resolved, Oid):
                yield current, resolved
            elif isinstance(resolved, Variable):
                for item in universe:
                    yield {**current, resolved: item}, item
            else:
                raise QueryError(f"bad schema-condition term {term!r}")

        if cond.kind == "applicableTo":
            yield from self._eval_applicable_to(cond, env)
            return
        classes = self.walker.universe(VarSort.CLASS)
        if cond.kind == "subclassOf":
            left_universe: List[Oid] = classes
        else:
            left_universe = self.walker.universe(VarSort.INDIVIDUAL)
        for env1, left_obj in candidates(cond.left, left_universe, env):
            # The right side resolves under env1, so a shared variable
            # unifies instead of being enumerated twice.
            for env2, right_obj in candidates(cond.right, classes, env1):
                if not isinstance(right_obj, Atom):
                    continue
                if cond.kind == "subclassOf":
                    holds = isinstance(
                        left_obj, Atom
                    ) and self.store.hierarchy.is_subclass(
                        left_obj, right_obj, strict=True
                    )
                else:
                    holds = self.store.is_instance(left_obj, right_obj)
                if holds:
                    yield env2

    def _eval_applicable_to(
        self, cond: ast.SchemaCond, env: Bindings
    ) -> Iterator[Bindings]:
        """``M applicableTo X``: X lies within some signature's scope of M.

        §2 distinguishes *applicable* from *defined*: an attribute can be
        applicable (a signature covers the object's classes) yet have a
        null value.  §3.1 motivates querying applicability and defers the
        mechanism to [KSK92]; this condition is that mechanism.
        """
        method_term = resolve_term(cond.left, env)
        obj_term = resolve_term(cond.right, env)

        def applicable(method: Oid, obj: Oid) -> bool:
            if not isinstance(method, Atom):
                return False
            classes = self.store.classes_of(obj)
            return any(
                cls in self.store.hierarchy
                and self.store.declared_signatures(cls, method)
                for cls in classes
            )

        methods = (
            [method_term]
            if isinstance(method_term, Oid)
            else self.walker.universe(VarSort.METHOD)
        )
        for method in methods:
            env1 = dict(env)
            if isinstance(method_term, Variable):
                env1[method_term] = method
            objects = (
                [resolve_term(cond.right, env1)]
                if isinstance(obj_term, Oid)
                else self.walker.universe(VarSort.INDIVIDUAL)
            )
            for obj in objects:
                if not isinstance(obj, Oid):
                    continue
                if applicable(method, obj):
                    env2 = dict(env1)
                    if isinstance(obj_term, Variable):
                        env2[obj_term] = obj
                    yield env2

    # -- comparisons ------------------------------------------------------

    def _comparison_free_vars(self, operand: ast.Operand) -> Iterator[Variable]:
        """Variables a comparison must enumerate (subqueries are closed)."""
        if isinstance(operand, ast.PathOperand):
            yield from ast.path_variables(operand.path)
        elif isinstance(operand, ast.AggOperand):
            yield from ast.path_variables(operand.path)
        elif isinstance(operand, (ast.SetOpOperand, ast.ArithOperand)):
            yield from self._comparison_free_vars(operand.left)
            yield from self._comparison_free_vars(operand.right)
        # SubQueryOperand: correlated through env; its variables are local.

    def _enumerate_vars(
        self, variables: List[Variable], env: Bindings
    ) -> Iterator[Bindings]:
        unbound = [v for v in dict.fromkeys(variables) if v not in env]
        if not unbound:
            yield env
            return
        for var in unbound:
            if var.sort == VarSort.PATH:
                raise UnsafeQueryError(
                    f"path variable {var} must be bound by a path "
                    f"expression before it is used in a comparison"
                )
        universes = [self.walker.variable_candidates(v) for v in unbound]
        for combo in itertools.product(*universes):
            new_env = dict(env)
            new_env.update(zip(unbound, combo))
            yield new_env

    @staticmethod
    def _single_unbound_var(
        operand: ast.Operand, env: Bindings
    ) -> Optional[Variable]:
        """The operand's variable, if it is a bare unbound variable."""
        if (
            isinstance(operand, ast.PathOperand)
            and operand.path.is_trivial
            and isinstance(operand.path.head, Variable)
            and operand.path.head not in env
        ):
            return operand.path.head
        return None

    def _eval_comparison(
        self, cond: ast.Comparison, env: Bindings
    ) -> Iterator[Bindings]:
        # Fast path: `Z = <set>` with Z unbound and existential reading is
        # membership — bind Z from the set instead of enumerating the
        # universe and testing each candidate.  (Semantically identical:
        # the ground instance z = some S holds iff z ∈ S.)
        if cond.op == "=" and cond.rq in (None, "some"):
            bind_var = self._single_unbound_var(cond.lhs, env)
            other = cond.rhs
            if bind_var is None and cond.lq in (None, "some"):
                bind_var = self._single_unbound_var(cond.rhs, env)
                other = cond.lhs
            if bind_var is not None and not list(
                self._comparison_free_vars(other)
            ):
                for value in sorted(
                    self.eval_operand(other, env), key=term_sort_key
                ):
                    if not self.walker.admits(bind_var, value):
                        continue
                    if not self._sort_admits(bind_var, value):
                        continue
                    yield {**env, bind_var: value}
                return
        variables = list(self._comparison_free_vars(cond.lhs))
        variables.extend(self._comparison_free_vars(cond.rhs))
        for full_env in self._enumerate_vars(variables, env):
            left = self.eval_operand(cond.lhs, full_env)
            right = self.eval_operand(cond.rhs, full_env)
            if compare(cond.op, left, right, cond.lq, cond.rq):
                yield full_env

    def _sort_admits(self, var: Variable, value: Oid) -> bool:
        """Would *value* appear in *var*'s sort universe?"""
        if var.sort == VarSort.CLASS:
            return self.store.catalogue.is_class(value)
        if var.sort == VarSort.INDIVIDUAL:
            return not self.store.catalogue.is_class(value)
        return isinstance(value, Atom)

    def _eval_not(self, cond: ast.NotCond, env: Bindings) -> Iterator[Bindings]:
        """Ground-instance negation (§3.4).

        Every variable of the negated condition is enumerated; a grounding
        satisfies ``not C`` iff ``C`` is false under it.  This matches the
        naive semantics, where negation applies to fully substituted
        instances.
        """
        variables = list(ast.cond_variables(cond.item))
        for full_env in self._enumerate_vars(variables, env):
            if not self.cond_holds(cond.item, full_env):
                yield full_env

    def cond_holds(self, cond: ast.Cond, env: Bindings) -> bool:
        """Boolean truth of a condition under a (sufficiently) full binding."""
        return any(True for _ in self.eval_cond(cond, env))

    # ------------------------------------------------------------------
    # operands
    # ------------------------------------------------------------------

    def eval_operand(
        self, operand: ast.Operand, env: Bindings
    ) -> FrozenSet[Oid]:
        if isinstance(operand, ast.PathOperand):
            return self.walker.value(operand.path, env)
        if isinstance(operand, ast.AggOperand):
            values = self.walker.value(operand.path, env)
            return frozenset({apply_aggregate(operand.fn, values)})
        if isinstance(operand, ast.SetLitOperand):
            return frozenset(operand.values)
        if isinstance(operand, ast.SubQueryOperand):
            return self._eval_subquery(operand, env)
        if isinstance(operand, ast.SetOpOperand):
            left = self.eval_operand(operand.left, env)
            right = self.eval_operand(operand.right, env)
            if operand.op == "union":
                return left | right
            if operand.op == "minus":
                return left - right
            return left & right
        if isinstance(operand, ast.ArithOperand):
            return self._eval_arith(operand, env)
        raise QueryError(f"unsupported operand {operand!r}")

    def _eval_subquery(
        self, operand: ast.SubQueryOperand, env: Bindings
    ) -> FrozenSet[Oid]:
        """Evaluate a correlated subquery, memoized per correlation key.

        A subquery's result depends only on the bindings of its free
        variables (locals are re-bound inside), so identical correlation
        keys can reuse the previous answer.  The cache is invalidated by
        updates (:meth:`execute_update`), keeping the memo sound even in
        WHERE clauses that mix reads and writes.
        """
        correlation = tuple(
            sorted(
                {
                    (var.name, var.sort.value, env.get(var))
                    for var in ast.free_variables(operand.query)
                    if env.get(var) is not None
                },
                key=lambda item: (item[0], item[1]),
            )
        )
        key = (id(operand), correlation)
        cached = self._subquery_cache.get(key)
        if cached is None:
            cached = self.run(operand.query, env).single_column()
            self._subquery_cache[key] = cached
        return cached

    def _eval_arith(
        self, operand: ast.ArithOperand, env: Bindings
    ) -> FrozenSet[Oid]:
        left = self.eval_operand(operand.left, env)
        right = self.eval_operand(operand.right, env)
        results: Set[Oid] = set()
        for lv in left:
            for rv in right:
                ln = _number(lv)
                rn = _number(rv)
                if ln is None or rn is None:
                    raise QueryError(
                        f"arithmetic needs numerals, got {lv} {operand.op} {rv}"
                    )
                if operand.op == "+":
                    value = ln + rn
                elif operand.op == "-":
                    value = ln - rn
                elif operand.op == "*":
                    value = ln * rn
                elif operand.op == "/":
                    if rn == 0:
                        raise QueryError("division by zero")
                    value = ln / rn
                else:  # pragma: no cover - parser restricts operators
                    raise QueryError(f"unknown arithmetic {operand.op!r}")
                # Snap float noise so 1.1 * 90000 is 99000, not 99000.00...1:
                # salaries and counts are integral objects in the paper.
                if abs(value - round(value)) < 1e-9:
                    value = int(round(value))
                results.add(Value(value))
        return frozenset(results)

    # ------------------------------------------------------------------
    # updates (§5)
    # ------------------------------------------------------------------

    def execute_update(
        self, update: ast.UpdateClass, env: Optional[Bindings] = None
    ) -> bool:
        """Execute ``UPDATE CLASS C SET path = expr``; True on success.

        For each assignment, the path up to its last step is walked under
        the current bindings; the final attribute of each reached object is
        set to the value of the right-hand side.  "An UPDATE clause
        evaluates to true if and only if the update was successful" — here,
        success means no error was raised while applying the assignments.
        """
        env = dict(env or {})
        cls = Atom(update.cls)
        self.store.hierarchy.require(cls)
        # Writes invalidate memoized subquery answers.
        self._subquery_cache.clear()
        for path, expr in update.assignments:
            if not path.steps:
                raise QueryError("an UPDATE path needs at least one step")
            last = path.steps[-1]
            if not isinstance(last.method_expr.method, Atom):
                raise QueryError(
                    "the updated attribute must be a method name"
                )
            if last.selector is not None:
                raise QueryError(
                    "the updated attribute cannot carry a selector"
                )
            method = last.method_expr.method
            prefix = ast.PathExpr(head=path.head, steps=path.steps[:-1])
            targets: List[Tuple[Bindings, Oid]] = [
                (hit.bindings(), hit.tail)
                for hit in self.walker.walk(prefix, env)
            ]
            for hit_env, target in targets:
                for _env2, arg_tuple in self.walker._arg_candidates(
                    last.method_expr.args, hit_env
                ):
                    values = self.eval_operand(expr, _env2)
                    if self._assign(target, method, arg_tuple, values):
                        break
        return True

    def _assign(
        self,
        target: Oid,
        method: Atom,
        args: Tuple[Oid, ...],
        values: FrozenSet[Oid],
    ) -> bool:
        self._subquery_cache.clear()
        set_valued = self._method_declared_set_valued(target, method)
        if set_valued:
            self.store.set_attr_set(target, method, values, args)
            return True
        if len(values) > 1:
            raise QueryError(
                f"cannot assign {len(values)} values to scalar "
                f"attribute {method} of {target}"
            )
        if values:
            self.store.set_attr(target, method, next(iter(values)), args)
        else:
            self.store.unset_attr(target, method, args)
        return True

    def _method_declared_set_valued(self, target: Oid, method: Atom) -> bool:
        for cls in self.store.classes_of(target):
            if cls not in self.store.hierarchy:
                continue
            for signature in self.store.signatures_of(cls, method):
                if signature.set_valued:
                    return True
        return False


def _number(term: Oid) -> Optional[float]:
    if isinstance(term, Value) and isinstance(term.value, (int, float)) \
            and not isinstance(term.value, bool):
        return float(term.value)
    return None


class NaiveEvaluator:
    """The literal §3.4 semantics: enumerate all substitutions.

    Used as the semantic oracle in tests.  Updates are not supported —
    enumerating substitutions interleaved with side effects is not part of
    the declarative fragment the naive procedure defines.
    """

    def __init__(self, store: ObjectStore, id_function_instances=None) -> None:
        self.store = store
        self._inner = Evaluator(store, id_function_instances)

    def run(self, query: ast.Query) -> QueryResult:
        for var in ast.free_variables(query):
            if var.sort == VarSort.PATH:
                raise UnsafeQueryError(
                    "the naive evaluator does not enumerate path variables"
                )
        if query.creates_objects or query.oid_scope is not None:
            raise QueryError("the naive evaluator runs plain queries only")
        variables = list(dict.fromkeys(ast.free_variables(query)))
        columns = [Evaluator._column_name(item) for item in query.select]
        result = QueryResult(columns)
        universes = [self._inner.walker.universe(v.sort) for v in variables]
        for combo in itertools.product(*universes):
            env: Bindings = dict(zip(variables, combo))
            if not self._from_consistent(query, env):
                continue
            if query.where is not None and not self._holds(query.where, env):
                continue
            for row in self._select_rows(query.select, env):
                result.add(row)
        return result

    def _from_consistent(self, query: ast.Query, env: Bindings) -> bool:
        for decl in query.from_:
            cls = env[decl.cls] if isinstance(decl.cls, Variable) else decl.cls
            if not isinstance(cls, Atom) or cls not in self.store.hierarchy:
                return False
            if not self.store.is_instance(env[decl.var], cls):
                return False
        return True

    def _holds(self, cond: ast.Cond, env: Bindings) -> bool:
        if isinstance(cond, ast.AndCond):
            return all(self._holds(c, env) for c in cond.items)
        if isinstance(cond, ast.OrCond):
            return any(self._holds(c, env) for c in cond.items)
        if isinstance(cond, ast.NotCond):
            return not self._holds(cond.item, env)
        if isinstance(cond, ast.UpdateCond):
            raise QueryError("naive evaluation does not execute updates")
        return self._inner.cond_holds(cond, env)

    def _select_rows(
        self, items: Sequence[ast.SelectItem], env: Bindings
    ) -> Iterator[Tuple[Oid, ...]]:
        value_sets = []
        for item in items:
            if not isinstance(item, ast.PathItem):
                raise QueryError("naive evaluation projects paths only")
            value_sets.append(
                sorted(
                    self._inner.walker.value(item.path, env),
                    key=term_sort_key,
                )
            )
        yield from itertools.product(*value_sets)
