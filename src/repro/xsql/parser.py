"""Recursive-descent parser for XSQL.

Variable recognition follows the paper's usage: a plain identifier denotes a
variable when it is declared in a FROM clause (``FROM Person X``) or when it
looks like the paper's variable names — a single uppercase letter optionally
followed by digits (``X``, ``Y``, ``W``, ``M``, ``X1``).  Everything else is
a name (class, method, or object id).  Class variables are written ``#X``
(the paper's ``§X``), method variables ``"Y``, and path variables ``*Y``.

The parser produces the raw AST; :mod:`repro.xsql.normalize` then unifies
variable sorts across occurrences and desugars path-expression arguments of
method expressions and id-terms exactly as §5 prescribes.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.errors import XsqlSyntaxError
from repro.oid import NIL, Atom, Oid, Value, Variable, VarSort
from repro.xsql import ast
from repro.xsql.lexer import Token, split_statements, tokenize, unescape_string
from repro.xsql.normalize import desugar, unify_variable_sorts

__all__ = [
    "parse_query",
    "parse_statement",
    "parse_statement_raw",
    "parse_statements",
    "normalize_statement",
]

_VARLIKE_RE = re.compile(r"^[A-Z][0-9]*$")

_WORD_COMPARATORS = {
    "contains": "contains",
    "containseq": "containsEq",
    "subset": "subset",
    "subseteq": "subsetEq",
}

_AGG_FUNCTIONS = ("count", "sum", "avg", "min", "max")


class _Parser:
    def __init__(self, tokens: List[Token], outer_vars: Set[str]) -> None:
        self._tokens = tokens
        self._pos = 0
        # Names known to be variables (FROM-declared here or in an
        # enclosing query, for correlated subqueries).
        self._declared_vars: Set[str] = set(outer_vars)

    # -- token plumbing -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> XsqlSyntaxError:
        token = token or self._peek()
        return XsqlSyntaxError(message, token.line, token.column)

    def _expect_keyword(self, name: str) -> Token:
        token = self._next()
        if not token.is_keyword(name):
            raise self._error(f"expected {name.upper()}, got {token.text!r}", token)
        return token

    def _expect_punct(self, char: str) -> Token:
        token = self._next()
        if not token.is_punct(char):
            raise self._error(f"expected {char!r}, got {token.text!r}", token)
        return token

    def _expect_ident(self) -> Token:
        token = self._next()
        if token.kind != "IDENT":
            raise self._error(f"expected a name, got {token.text!r}", token)
        return token

    def at_end(self) -> bool:
        return self._peek().kind == "EOF"

    # -- variable recognition --------------------------------------------

    def _is_var_name(self, name: str) -> bool:
        return name in self._declared_vars or bool(_VARLIKE_RE.match(name))

    def _prescan_from_vars(self) -> None:
        """Collect FROM-declared variable names before parsing SELECT.

        Scans ahead (at the current nesting depth) for the FROM clause of
        the query that starts at the current position and registers every
        second identifier of each ``Class Var`` pair.
        """
        depth = 0
        index = self._pos
        tokens = self._tokens
        while index < len(tokens):
            token = tokens[index]
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                if depth == 0:
                    return
                depth -= 1
            elif depth == 0 and token.is_keyword("from"):
                index += 1
                while index < len(tokens):
                    cls_tok = tokens[index]
                    if cls_tok.kind not in ("IDENT", "CLASSVAR"):
                        return
                    var_tok = tokens[index + 1] if index + 1 < len(tokens) else None
                    if var_tok is None or var_tok.kind != "IDENT":
                        return
                    self._declared_vars.add(var_tok.text)
                    if cls_tok.kind == "CLASSVAR":
                        self._declared_vars.add(cls_tok.text)
                    index += 2
                    if index < len(tokens) and tokens[index].is_punct(","):
                        index += 1
                    else:
                        return
            elif depth == 0 and token.is_keyword(
                "where", "union", "minus", "intersect"
            ):
                return
            index += 1

    # -- statements -------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("create"):
            if self._peek(1).is_keyword("view"):
                return self._parse_create_view()
            if self._peek(1).is_keyword("class"):
                return self._parse_create_class()
            if self._peek(1).is_keyword("relation"):
                return self._parse_create_relation()
            raise self._error("expected VIEW, CLASS, or RELATION after CREATE")
        if token.is_keyword("alter"):
            return self._parse_alter_class()
        if token.is_keyword("update"):
            return self._parse_update_class()
        if token.is_keyword("insert"):
            return self._parse_insert()
        if token.is_keyword("select"):
            return self.parse_query_expr()
        raise self._error(f"unexpected statement start {token.text!r}")

    def parse_query_expr(self) -> Union[ast.Query, ast.QueryOp]:
        left: Union[ast.Query, ast.QueryOp] = self.parse_query()
        while self._peek().is_keyword("union", "minus", "intersect"):
            op = self._next().text
            right = self.parse_query()
            left = ast.QueryOp(op, left, right)
        return left

    # -- queries ----------------------------------------------------------

    def parse_query(self) -> ast.Query:
        self._prescan_from_vars()
        self._expect_keyword("select")
        select_items = [self._parse_select_item()]
        while self._peek().is_punct(","):
            self._next()
            select_items.append(self._parse_select_item())

        from_decls: List[ast.FromDecl] = []
        oid_vars: Optional[Tuple[Variable, ...]] = None
        oid_scope: Optional[Variable] = None
        where: Optional[ast.Cond] = None

        while True:
            token = self._peek()
            if token.is_keyword("from"):
                self._next()
                from_decls.append(self._parse_from_decl())
                while self._peek().is_punct(","):
                    self._next()
                    from_decls.append(self._parse_from_decl())
            elif token.is_keyword("oid"):
                self._next()
                if self._peek().is_keyword("function"):
                    self._next()
                    self._expect_keyword("of")
                    names = [self._parse_plain_variable()]
                    while self._peek().is_punct(","):
                        self._next()
                        names.append(self._parse_plain_variable())
                    oid_vars = tuple(names)
                else:
                    oid_scope = self._parse_plain_variable()
            elif token.is_keyword("where"):
                self._next()
                where = self._parse_cond()
            else:
                break

        return ast.Query(
            select=tuple(select_items),
            from_=tuple(from_decls),
            where=where,
            oid_vars=oid_vars,
            oid_scope=oid_scope,
        )

    def _parse_plain_variable(self) -> Variable:
        token = self._expect_ident()
        self._declared_vars.add(token.text)
        return Variable(token.text, VarSort.INDIVIDUAL)

    def _parse_from_decl(self) -> ast.FromDecl:
        token = self._next()
        cls: Union[Atom, Variable]
        if token.kind == "CLASSVAR":
            cls = Variable(token.text, VarSort.CLASS)
            self._declared_vars.add(token.text)
        elif token.kind == "IDENT":
            cls = Atom(token.text)
        else:
            raise self._error("expected a class name or #variable in FROM", token)
        var_token = self._expect_ident()
        self._declared_vars.add(var_token.text)
        return ast.FromDecl(cls, Variable(var_token.text, VarSort.INDIVIDUAL))

    # -- SELECT items -------------------------------------------------------

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        # `(Mthd @ args) = value` — query-defined method results (§5).
        if token.is_punct("(") and self._looks_like_method_expr():
            method, args = self._parse_parenthesized_method()
            self._expect_op("=")
            value = self._parse_operand()
            return ast.MethodItem(method=method, args=tuple(args), value=value)
        # `Name = {W}` or `Name = path` — explicitly named attributes
        # (§4.1).  SELECT items cannot be comparisons, so IDENT '=' always
        # introduces a name here, even when it looks like a variable.
        if token.kind == "IDENT" and self._peek(1).is_op("="):
            name = self._next().text
            self._next()  # '='
            if self._peek().is_punct("{"):
                self._next()
                var = self._parse_plain_variable()
                self._expect_punct("}")
                return ast.SetItem(var=var, name=name)
            value = self._parse_operand()
            path = self._operand_as_path(value)
            return ast.PathItem(path=path, name=name)
        value = self._parse_operand()
        return ast.PathItem(path=self._operand_as_path(value))

    def _operand_as_path(self, operand: ast.Operand) -> ast.PathExpr:
        if isinstance(operand, ast.PathOperand):
            return operand.path
        raise self._error("SELECT items must be path expressions")

    def _looks_like_method_expr(self) -> bool:
        """Does '(' open a ``(Mthd @ ...)`` method expression here?"""
        depth = 0
        index = self._pos
        while index < len(self._tokens):
            token = self._tokens[index]
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    return False
            elif token.is_punct("@") and depth == 1:
                return True
            elif token.is_keyword("select"):
                return False
            index += 1
        return False

    def _parse_parenthesized_method(self) -> Tuple[Atom, List[object]]:
        self._expect_punct("(")
        name_token = self._expect_ident()
        self._expect_punct("@")
        args: List[object] = []
        if not self._peek().is_punct(")"):
            args.append(self._parse_method_argument())
            while self._peek().is_punct(","):
                self._next()
                args.append(self._parse_method_argument())
        self._expect_punct(")")
        return Atom(name_token.text), args

    def _parse_method_argument(self) -> object:
        """A method argument: an id-term or (to be desugared) a path."""
        operand = self._parse_operand()
        if isinstance(operand, ast.PathOperand):
            path = operand.path
            if path.is_trivial:
                return path.head
            return path
        raise self._error("method arguments must be id-terms or paths")

    # -- conditions -----------------------------------------------------------

    def _parse_cond(self) -> ast.Cond:
        return self._parse_or()

    def _parse_or(self) -> ast.Cond:
        items = [self._parse_and()]
        while self._peek().is_keyword("or"):
            self._next()
            items.append(self._parse_and())
        if len(items) == 1:
            return items[0]
        return ast.OrCond(tuple(items))

    def _parse_and(self) -> ast.Cond:
        items = [self._parse_not()]
        while self._peek().is_keyword("and"):
            self._next()
            items.append(self._parse_not())
        if len(items) == 1:
            return items[0]
        return ast.AndCond(tuple(items))

    def _parse_not(self) -> ast.Cond:
        if self._peek().is_keyword("not"):
            self._next()
            return ast.NotCond(self._parse_not())
        return self._parse_primary_cond()

    def _parse_primary_cond(self) -> ast.Cond:
        token = self._peek()
        if token.is_keyword("update"):
            return ast.UpdateCond(self._parse_update_class())
        if token.is_punct("(") and self._peek(1).is_keyword("update"):
            self._next()
            update = self._parse_update_class()
            self._expect_punct(")")
            return ast.UpdateCond(update)
        # '(' cond ')' vs an operand-led comparison: try the comparison
        # first (it covers parenthesized arithmetic and subqueries), fall
        # back to a parenthesized condition.
        if token.is_punct("("):
            saved = self._pos
            try:
                return self._parse_comparison_or_path()
            except XsqlSyntaxError:
                self._pos = saved
            self._next()  # '('
            cond = self._parse_cond()
            self._expect_punct(")")
            return cond
        return self._parse_comparison_or_path()

    def _parse_quantifier(self) -> Optional[str]:
        if self._peek().is_keyword("some", "all"):
            return self._next().text
        return None

    def _parse_comparison_or_path(self) -> ast.Cond:
        lhs = self._parse_operand()
        token = self._peek()

        if token.is_keyword("subclassof", "instanceof", "applicableto"):
            kind = {
                "subclassof": "subclassOf",
                "instanceof": "instanceOf",
                "applicableto": "applicableTo",
            }[token.text]
            self._next()
            left_term = self._operand_as_term(lhs)
            rhs = self._parse_operand()
            right_term = self._operand_as_term(rhs)
            if kind == "applicableTo" and isinstance(left_term, Variable):
                # the left side ranges over method-objects; coerce so the
                # sort-unification pass propagates it to SELECT etc.
                left_term = Variable(left_term.name, VarSort.METHOD)
            return ast.SchemaCond(kind, left_term, right_term)

        lq = None
        if token.is_keyword("some", "all"):
            lq = self._next().text
            token = self._peek()

        if token.kind == "OP" and token.text in ("=", "!=", "<", "<=", ">", ">="):
            op = self._next().text
            rq = self._parse_quantifier()
            rhs = self._parse_operand()
            return ast.Comparison(lhs=lhs, op=op, rhs=rhs, lq=lq, rq=rq)

        if token.is_keyword(*_WORD_COMPARATORS):
            op = _WORD_COMPARATORS[self._next().text]
            rq = self._parse_quantifier()
            rhs = self._parse_operand()
            return ast.Comparison(lhs=lhs, op=op, rhs=rhs, lq=lq, rq=rq)

        if lq is not None:
            raise self._error("quantifier must be followed by a comparator")
        if isinstance(lhs, ast.PathOperand):
            return ast.PathCond(lhs.path)
        raise self._error("expected a comparator")

    def _operand_as_term(self, operand: ast.Operand) -> object:
        if isinstance(operand, ast.PathOperand) and operand.path.is_trivial:
            return operand.path.head
        raise self._error("expected a class name or variable")

    # -- operands (arithmetic / paths / aggregates / subqueries) -------------

    def _parse_operand(self) -> ast.Operand:
        return self._parse_set_ops()

    def _parse_set_ops(self) -> ast.Operand:
        left = self._parse_additive()
        while self._peek().is_keyword("union", "minus", "intersect"):
            # Distinguish operand-level set ops from query-level UNION by
            # context: inside conditions we are always operand-level.
            op = self._next().text
            right = self._parse_additive()
            left = ast.SetOpOperand(op, left, right)
        return left

    def _parse_additive(self) -> ast.Operand:
        left = self._parse_multiplicative()
        while self._peek().is_op("+", "-"):
            op = self._next().text
            right = self._parse_multiplicative()
            left = ast.ArithOperand(op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Operand:
        left = self._parse_factor()
        while self._peek().is_op("*", "/"):
            op = self._next().text
            right = self._parse_factor()
            left = ast.ArithOperand(op, left, right)
        return left

    def _parse_factor(self) -> ast.Operand:
        token = self._peek()
        if token.kind == "NUMBER":
            self._next()
            value = float(token.text) if "." in token.text else int(token.text)
            return ast.PathOperand(ast.path_of_term(Value(value)))
        if token.kind == "STRING":
            self._next()
            return ast.PathOperand(
                ast.path_of_term(Value(unescape_string(token.text)))
            )
        if token.is_keyword("nil"):
            self._next()
            return ast.PathOperand(ast.path_of_term(NIL))
        if token.is_keyword("true", "false"):
            self._next()
            return ast.PathOperand(
                ast.path_of_term(Value(token.text == "true"))
            )
        if token.is_keyword(*_AGG_FUNCTIONS):
            fn = self._next().text
            self._expect_punct("(")
            inner = self._parse_operand()
            self._expect_punct(")")
            path = self._operand_as_path_for_agg(inner)
            return ast.AggOperand(fn, path)
        if token.is_punct("{"):
            return self._parse_set_literal()
        if token.is_punct("("):
            if self._peek(1).is_keyword("select"):
                self._next()
                sub = self.parse_query()
                self._expect_punct(")")
                return ast.SubQueryOperand(sub)
            self._next()
            inner = self._parse_operand()
            self._expect_punct(")")
            # A parenthesized trivial operand may continue as a path, but
            # the paper never parenthesizes path heads; treat as grouping.
            return inner
        # Otherwise: a path expression.
        return ast.PathOperand(self._parse_path())

    def _operand_as_path_for_agg(self, operand: ast.Operand) -> ast.PathExpr:
        if isinstance(operand, ast.PathOperand):
            return operand.path
        raise self._error("aggregate argument must be a path expression")

    def _parse_set_literal(self) -> ast.Operand:
        self._expect_punct("{")
        values: List[Oid] = []
        while True:
            token = self._next()
            if token.kind == "NUMBER":
                value = float(token.text) if "." in token.text else int(token.text)
                values.append(Value(value))
            elif token.kind == "STRING":
                values.append(Value(unescape_string(token.text)))
            elif token.kind == "IDENT":
                values.append(Atom(token.text))
            else:
                raise self._error("expected a literal in set", token)
            if self._peek().is_punct(","):
                self._next()
                continue
            break
        self._expect_punct("}")
        return ast.SetLitOperand(tuple(values))

    # -- path expressions ------------------------------------------------------

    def _parse_path(self) -> ast.PathExpr:
        head = self._parse_selector()
        steps: List[ast.Step] = []
        while self._peek().is_punct("."):
            self._next()
            steps.append(self._parse_step())
        return ast.PathExpr(head=head, steps=tuple(steps))

    def _parse_selector(self) -> ast.SelectorNode:
        token = self._next()
        if token.kind == "NUMBER":
            return Value(
                float(token.text) if "." in token.text else int(token.text)
            )
        if token.kind == "STRING":
            return Value(unescape_string(token.text))
        if token.kind == "CLASSVAR":
            self._declared_vars.add(token.text)
            return Variable(token.text, VarSort.CLASS)
        if token.kind == "METHODVAR":
            self._declared_vars.add(token.text)
            return Variable(token.text, VarSort.METHOD)
        if token.is_keyword("nil"):
            return NIL
        if token.is_keyword("true", "false"):
            return Value(token.text == "true")
        if token.kind == "IDENT":
            # id-term application `f(args)` — view id-terms, §4.2.
            if self._peek().is_punct("("):
                self._next()
                args: List[object] = []
                if not self._peek().is_punct(")"):
                    args.append(self._parse_method_argument())
                    while self._peek().is_punct(","):
                        self._next()
                        args.append(self._parse_method_argument())
                self._expect_punct(")")
                return ast.App(token.text, tuple(args))
            if self._is_var_name(token.text):
                return Variable(token.text, VarSort.INDIVIDUAL)
            return Atom(token.text)
        raise self._error(f"expected a selector, got {token.text!r}", token)

    def _parse_step(self) -> ast.Step:
        token = self._peek()
        method_expr: ast.MethodExpr
        if token.is_punct("(") :
            method, args = self._parse_parenthesized_method_expr()
            method_expr = ast.MethodExpr(method=method, args=tuple(args))
        elif token.is_op("*"):
            self._next()
            name_token = self._expect_ident()
            self._declared_vars.add(name_token.text)
            method_expr = ast.MethodExpr(
                method=Variable(name_token.text, VarSort.PATH)
            )
        elif token.kind == "METHODVAR":
            self._next()
            self._declared_vars.add(token.text)
            method_expr = ast.MethodExpr(
                method=Variable(token.text, VarSort.METHOD)
            )
        elif token.kind == "IDENT":
            self._next()
            if self._is_var_name(token.text):
                # A bare variable in attribute position is coerced to the
                # method sort — the paper's own relaxation in query (3).
                method_expr = ast.MethodExpr(
                    method=Variable(token.text, VarSort.METHOD)
                )
            else:
                method_expr = ast.MethodExpr(method=Atom(token.text))
        else:
            raise self._error(
                f"expected a method expression, got {token.text!r}", token
            )
        selector: Optional[ast.SelectorNode] = None
        if self._peek().is_punct("["):
            self._next()
            selector = self._parse_selector()
            self._expect_punct("]")
        return ast.Step(method_expr=method_expr, selector=selector)

    def _parse_parenthesized_method_expr(
        self,
    ) -> Tuple[Union[Atom, Variable], List[object]]:
        self._expect_punct("(")
        token = self._next()
        method: Union[Atom, Variable]
        if token.kind == "METHODVAR":
            self._declared_vars.add(token.text)
            method = Variable(token.text, VarSort.METHOD)
        elif token.kind == "IDENT":
            if self._is_var_name(token.text):
                method = Variable(token.text, VarSort.METHOD)
            else:
                method = Atom(token.text)
        else:
            raise self._error("expected a method name", token)
        self._expect_punct("@")
        args: List[object] = []
        if not self._peek().is_punct(")"):
            args.append(self._parse_method_argument())
            while self._peek().is_punct(","):
                self._next()
                args.append(self._parse_method_argument())
        self._expect_punct(")")
        return method, args

    def _expect_op(self, op: str) -> Token:
        token = self._next()
        if not token.is_op(op):
            raise self._error(f"expected {op!r}, got {token.text!r}", token)
        return token

    # -- DDL ----------------------------------------------------------------

    def _parse_signature_decl(self) -> ast.SignatureDecl:
        method_token = self._expect_ident()
        args: List[str] = []
        if self._peek().is_punct(":"):
            self._next()
            args.append(self._expect_ident().text)
            while self._peek().is_punct(","):
                self._next()
                args.append(self._expect_ident().text)
        token = self._next()
        if token.kind == "ARROW":
            set_valued = token.text in ("=>>", "->>")
        elif token.is_op("="):
            set_valued = False
        else:
            raise self._error("expected a signature arrow", token)
        result = self._expect_ident().text
        return ast.SignatureDecl(
            method=method_token.text,
            args=tuple(args),
            result=result,
            set_valued=set_valued,
        )

    def _parse_signature_list(self) -> List[ast.SignatureDecl]:
        decls = [self._parse_signature_decl()]
        while self._peek().is_punct(","):
            self._next()
            decls.append(self._parse_signature_decl())
        return decls

    def _parse_create_view(self) -> ast.CreateView:
        self._expect_keyword("create")
        self._expect_keyword("view")
        name = self._expect_ident().text
        self._expect_keyword("as")
        self._expect_keyword("subclass")
        self._expect_keyword("of")
        superclass = self._expect_ident().text
        signatures: List[ast.SignatureDecl] = []
        if self._peek().is_keyword("signature"):
            self._next()
            signatures = self._parse_signature_list()
        query = self.parse_query()
        return ast.CreateView(
            name=name,
            superclass=superclass,
            signatures=tuple(signatures),
            query=query,
        )

    def _parse_create_class(self) -> ast.CreateClass:
        self._expect_keyword("create")
        self._expect_keyword("class")
        name = self._expect_ident().text
        superclasses: List[str] = []
        if self._peek().is_keyword("as"):
            self._next()
            self._expect_keyword("subclass")
            self._expect_keyword("of")
            superclasses.append(self._expect_ident().text)
            while self._peek().is_punct(","):
                self._next()
                superclasses.append(self._expect_ident().text)
        signatures: List[ast.SignatureDecl] = []
        if self._peek().is_keyword("signature"):
            self._next()
            signatures = self._parse_signature_list()
        return ast.CreateClass(
            name=name,
            superclasses=tuple(superclasses),
            signatures=tuple(signatures),
        )

    def _parse_alter_class(self) -> ast.AlterClass:
        self._expect_keyword("alter")
        self._expect_keyword("class")
        cls = self._expect_ident().text
        self._expect_keyword("add")
        self._expect_keyword("signature")
        signature = self._parse_signature_decl()
        query = self.parse_query()
        return ast.AlterClass(cls=cls, signature=signature, query=query)

    def _parse_create_relation(self) -> ast.CreateRelation:
        self._expect_keyword("create")
        self._expect_keyword("relation")
        name = self._expect_ident().text
        self._expect_punct("(")
        columns = [self._expect_ident().text]
        while self._peek().is_punct(","):
            self._next()
            columns.append(self._expect_ident().text)
        self._expect_punct(")")
        return ast.CreateRelation(name=name, columns=tuple(columns))

    def _parse_insert(self) -> ast.InsertInto:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        name = self._expect_ident().text
        if self._peek().is_keyword("values"):
            self._next()
            rows = [self._parse_value_row()]
            while self._peek().is_punct(","):
                self._next()
                rows.append(self._parse_value_row())
            return ast.InsertInto(name=name, rows=tuple(rows))
        query = self.parse_query()
        return ast.InsertInto(name=name, query=query)

    def _parse_value_row(self) -> Tuple[Oid, ...]:
        self._expect_punct("(")
        values: List[Oid] = [self._parse_insert_value()]
        while self._peek().is_punct(","):
            self._next()
            values.append(self._parse_insert_value())
        self._expect_punct(")")
        return tuple(values)

    def _parse_insert_value(self) -> Oid:
        node = self._parse_selector()
        resolved = node
        if isinstance(resolved, ast.App):
            args = tuple(resolved.args)
            if all(isinstance(a, Oid) for a in args):
                from repro.oid import FuncOid

                return FuncOid(resolved.functor, args)  # type: ignore[arg-type]
            raise self._error("INSERT values must be ground")
        if isinstance(resolved, Oid):
            return resolved
        raise self._error("INSERT values must be ground object ids")

    def _parse_update_class(self) -> ast.UpdateClass:
        self._expect_keyword("update")
        self._expect_keyword("class")
        cls = self._expect_ident().text
        self._expect_keyword("set")
        assignments: List[Tuple[ast.PathExpr, ast.Operand]] = []
        while True:
            path = self._parse_path()
            self._expect_op("=")
            value = self._parse_operand()
            assignments.append((path, value))
            if self._peek().is_punct(","):
                self._next()
                continue
            break
        return ast.UpdateClass(cls=cls, assignments=tuple(assignments))


def _finalize(node, fresh_prefix: str = "z"):
    node = unify_variable_sorts(node)
    return desugar(node, fresh_prefix=fresh_prefix)


def parse_query(
    source: str, outer_vars: Sequence[str] = ()
) -> Union[ast.Query, ast.QueryOp]:
    """Parse a single SELECT query (or UNION/MINUS/INTERSECT of queries)."""
    parser = _Parser(tokenize(source), set(outer_vars))
    query = parser.parse_query_expr()
    if not parser.at_end():
        raise parser._error("trailing input after query")
    return _finalize(query)


def parse_statement(
    source: str, outer_vars: Sequence[str] = ()
) -> ast.Statement:
    """Parse one XSQL statement (query or DDL)."""
    return _finalize(parse_statement_raw(source, outer_vars))


def parse_statement_raw(
    source: str, outer_vars: Sequence[str] = ()
) -> ast.Statement:
    """Parse one statement *without* normalization.

    The staged pipeline (:mod:`repro.xsql.pipeline`) times parsing and
    normalization separately; everyone else should call
    :func:`parse_statement`, which composes this with
    :func:`normalize_statement`.
    """
    parser = _Parser(tokenize(source), set(outer_vars))
    statement = parser.parse_statement()
    if not parser.at_end():
        raise parser._error("trailing input after statement")
    return statement


def normalize_statement(statement: ast.Statement) -> ast.Statement:
    """Sort unification + §5 desugaring of a raw parsed statement."""
    return _finalize(statement)


def parse_statements(source: str) -> List[ast.Statement]:
    """Parse a ``;``-separated script of XSQL statements.

    Statements are split with the lexer's token scan, so semicolons
    inside string literals do not terminate a statement.
    """
    return [parse_statement(chunk) for chunk in split_statements(source)]
