"""The batch algebra: the factored binding-state both executors share.

The physical-operator executor (:mod:`repro.xsql.operators`) represents
the binding stream as a list of variable-disjoint batches whose cross
product is the logical stream.  Two batch representations implement the
same algebra:

* :class:`Batch` — the row representation: one Python dict per binding.
  This is the historical format and remains the default
  (``batch_format="rows"``).
* :class:`ColumnBatch` — the columnar representation: one value vector
  per variable plus a row count (``batch_format="columnar"``).  Ragged
  bindings (a variable declared by the batch but unbound in some rows,
  e.g. after an OR branch) store the :data:`UNBOUND` sentinel in the
  vector; row adapters drop it, so ``from_rows``/``to_rows`` round-trip
  exactly.

The three algebra operations — :func:`merge_overlapping`,
:func:`merge_all`, :func:`product_count` — are generic over both
representations and preserve the logical stream bit-for-bit: a columnar
merge repeats the left columns and tiles the right columns, which is the
same left-outer/right-inner order as the row merge's
``[{**l, **r} for l in left for r in right]``.  The property suite in
``tests/xsql/test_batch_algebra.py`` holds both representations to the
algebra and to each other.

Morsel-driven parallelism lives here too: :func:`split_morsels` cuts a
candidate list into fixed-size morsels and :func:`morsel_map` dispatches
them across a thread pool, concatenating the per-morsel results in
morsel order — so the output is identical for every worker count, which
is what keeps parallel scans inside the engines' bit-identical result
contract (the difftest oracle is the gate).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.oid import Variable
from repro.xsql.paths import Bindings

__all__ = [
    "UNBOUND",
    "Batch",
    "ColumnBatch",
    "AnyBatch",
    "State",
    "DEFAULT_MORSEL_SIZE",
    "batch_size",
    "batch_rows",
    "cross_state",
    "merge_all",
    "merge_overlapping",
    "morsel_map",
    "product_count",
    "replay_deltas",
    "split_morsels",
]


class _Unbound:
    """The columnar null: "declared by the batch, unbound in this row"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNBOUND"


#: Sentinel stored in a column vector where a row does not bind the
#: column's variable.  Row adapters omit the key entirely, matching the
#: row representation (a dict simply lacking the key).
UNBOUND = _Unbound()


class Batch:
    """One independent batch of the factored binding stream (row form)."""

    __slots__ = ("vars", "envs")

    def __init__(self, vars: Set[Variable], envs: List[Bindings]) -> None:
        self.vars = vars
        self.envs = envs

    def __len__(self) -> int:
        return len(self.envs)


def _var_key(var: Variable) -> Tuple[str, str]:
    return (var.name, var.sort.value)


class ColumnBatch:
    """One independent batch in columnar form: a vector per variable.

    ``columns`` maps each declared variable to a list of ``length``
    cells; a cell is a bound value or :data:`UNBOUND`.  The logical rows
    are positional: row *i* is ``{var: columns[var][i]}`` over the non-
    UNBOUND cells, in exactly the order the row representation would
    enumerate its ``envs`` list.
    """

    __slots__ = ("vars", "columns", "length")

    def __init__(
        self,
        vars: Set[Variable],
        columns: Dict[Variable, List[object]],
        length: int,
    ) -> None:
        self.vars = vars
        self.columns = columns
        self.length = length

    def __len__(self) -> int:
        return self.length

    @classmethod
    def identity(cls) -> "ColumnBatch":
        """The merge identity: zero variables, one (empty) row."""
        return cls(set(), {}, 1)

    @classmethod
    def from_rows(
        cls, vars: Set[Variable], rows: Sequence[Bindings]
    ) -> "ColumnBatch":
        """Columnarize *rows*; variables beyond *vars* are kept too."""
        declared = set(vars)
        for row in rows:
            declared.update(row)
        columns = {
            var: [row.get(var, UNBOUND) for row in rows]
            for var in sorted(declared, key=_var_key)
        }
        return cls(declared, columns, len(rows))

    def rows(self) -> Iterator[Bindings]:
        """The batch's bindings as dicts, in row order (UNBOUND dropped)."""
        items = list(self.columns.items())
        for index in range(self.length):
            yield {
                var: column[index]
                for var, column in items
                if column[index] is not UNBOUND
            }

    def to_rows(self) -> List[Bindings]:
        return list(self.rows())

    def has_unbound(self, wanted: Set[Variable]) -> bool:
        """Is any *wanted* variable UNBOUND in any row of this batch?"""
        for var in wanted & self.vars:
            if any(cell is UNBOUND for cell in self.columns[var]):
                return True
        return False


def replay_deltas(
    base: "ColumnBatch",
    extra_vars: Set[Variable],
    per_row: Sequence[Sequence[Bindings]],
) -> "ColumnBatch":
    """Expand each base row by its delta list, column-at-a-time.

    ``per_row[i]`` is the (possibly empty) sequence of binding deltas
    row *i* produced; the output enumerates, for each row in order, one
    row per delta — exactly the ``{**env, **delta}`` replay of the row
    representation, but assembled as vectors without materializing row
    dicts.  A delta may override a base column (a variable UNBOUND in
    that row); *extra_vars* declares variables that must exist in the
    output even if no delta ever binds them (filled with UNBOUND).

    Column lists are treated as immutable throughout the executor, so
    the no-expansion fast paths alias or slice the base vectors instead
    of copying cell by cell.
    """
    counts = [len(deltas) for deltas in per_row]
    out_len = sum(counts)
    delta_vars: Set[Variable] = set()
    for deltas in per_row:
        for delta in deltas:
            if delta:
                delta_vars.update(delta)
    out_vars = base.vars | extra_vars | delta_vars
    selection = not delta_vars and max(counts, default=0) <= 1
    pure_keep = selection and out_len == base.length
    keep = (
        [index for index, count in enumerate(counts) if count]
        if selection and not pure_keep
        else None
    )
    columns: Dict[Variable, List[object]] = {}
    for var in sorted(out_vars, key=_var_key):
        base_col = base.columns.get(var)
        if var in delta_vars:
            col: List[object] = []
            if base_col is None:
                for deltas in per_row:
                    for delta in deltas:
                        col.append(delta.get(var, UNBOUND))
            else:
                for index, deltas in enumerate(per_row):
                    fallback = base_col[index]
                    for delta in deltas:
                        col.append(delta.get(var, fallback))
        elif base_col is None:
            col = [UNBOUND] * out_len
        elif pure_keep:
            col = base_col
        elif keep is not None:
            col = [base_col[index] for index in keep]
        else:
            col = [
                base_col[index]
                for index, count in enumerate(counts)
                for _ in range(count)
            ]
        columns[var] = col
    return ColumnBatch(out_vars, columns, out_len)


#: Either batch representation; a state never mixes the two.
AnyBatch = Union[Batch, ColumnBatch]

#: The executor state: disjoint-variable batches whose cross product is
#: the logical binding stream.  The empty state means "one empty env".
State = List[AnyBatch]

#: Default morsel granularity for parallel scans: small enough that a
#: scale-tier extent splits across workers, large enough that the paper
#: databases stay single-morsel (no thread overhead on toy inputs).
DEFAULT_MORSEL_SIZE = 256


def batch_size(batch: AnyBatch) -> int:
    """Row count of one batch, in either representation."""
    return len(batch)


def batch_rows(batch: AnyBatch) -> List[Bindings]:
    """The batch's bindings as a list of dicts, in row order."""
    if isinstance(batch, ColumnBatch):
        return batch.to_rows()
    return batch.envs


def _cross_columnar(left: ColumnBatch, right: ColumnBatch) -> ColumnBatch:
    """Cross product, left-outer/right-inner: repeat left, tile right."""
    llen, rlen = left.length, right.length
    columns: Dict[Variable, List[object]] = {}
    for var, column in left.columns.items():
        if rlen == 1:
            columns[var] = list(column)
        else:
            columns[var] = [cell for cell in column for _ in range(rlen)]
    for var, column in right.columns.items():
        if llen == 1:
            columns[var] = list(column)
        else:
            columns[var] = list(column) * llen
    return ColumnBatch(left.vars | right.vars, columns, llen * rlen)


def merge_overlapping(
    state: State, touched: Set[Variable], merge_all: bool = False
) -> Tuple[AnyBatch, State]:
    """Cross-product every batch overlapping *touched*; keep the rest.

    This is the core move of the factored-state algebra: the merged
    batch binds the union of the overlapping batches' variables, its
    rows are their cross product, and the untouched batches pass through
    unchanged — so ``product_count`` is preserved and batch variable
    sets stay disjoint (``tests/xsql/test_batch_algebra.py`` holds the
    algebra to both, in both representations).

    With ``merge_all`` the whole state collapses into one batch — the
    merged (tuple-at-a-time-equivalent) execution mode.  The merged
    batch's representation follows the state's (columnar in, columnar
    out); an empty state merges to the row identity.
    """
    if any(isinstance(batch, ColumnBatch) for batch in state):
        cmerged = ColumnBatch.identity()
        crest: State = []
        for batch in state:
            assert isinstance(batch, ColumnBatch), "mixed batch kinds"
            if merge_all or (batch.vars & touched):
                cmerged = _cross_columnar(cmerged, batch)
            else:
                crest.append(batch)
        return cmerged, crest
    merged = Batch(set(), [{}])
    rest: State = []
    for batch in state:
        if merge_all or (batch.vars & touched):
            merged = Batch(
                merged.vars | batch.vars,
                [
                    {**left, **right}
                    for left in merged.envs
                    for right in batch.envs
                ],
            )
        else:
            rest.append(batch)
    return merged, rest


def merge_all(state: State) -> AnyBatch:
    """Collapse the whole state into one batch (full cross product)."""
    merged, _rest = merge_overlapping(state, set(), merge_all=True)
    return merged


def cross_state(state: State) -> Iterator[Bindings]:
    """The logical binding stream: the batches' cross product."""
    per_batch = [batch_rows(batch) for batch in state]

    def recurse(index: int, acc: Bindings) -> Iterator[Bindings]:
        if index == len(per_batch):
            yield dict(acc)
            return
        for env in per_batch[index]:
            yield from recurse(index + 1, {**acc, **env})

    return recurse(0, {})


def product_count(state: State) -> int:
    """Logical row count of a state: the product of its batch sizes."""
    count = 1
    for batch in state:
        count *= len(batch)
    return count


# ----------------------------------------------------------------------
# morsels
# ----------------------------------------------------------------------


def split_morsels(
    items: Sequence, morsel_size: int = DEFAULT_MORSEL_SIZE
) -> List[Sequence]:
    """Cut *items* into contiguous morsels of at most *morsel_size*."""
    if morsel_size <= 0:
        raise ValueError(f"morsel_size must be positive, got {morsel_size}")
    return [
        items[start : start + morsel_size]
        for start in range(0, len(items), morsel_size)
    ]


def morsel_map(
    work: Callable[[Sequence], List],
    items: Sequence,
    workers: int = 1,
    morsel_size: int = DEFAULT_MORSEL_SIZE,
) -> Tuple[List, int, int]:
    """Apply *work* to each morsel of *items*; deterministic merge order.

    Returns ``(results, n_morsels, workers_used)`` where *results* is
    the concatenation of the per-morsel outputs **in morsel order** —
    the output is therefore identical for every worker count; only the
    wall-clock interleaving changes.  A single morsel (or ``workers <=
    1``) runs inline with no pool.
    """
    morsels = split_morsels(items, morsel_size)
    if len(morsels) <= 1 or workers <= 1:
        results: List = []
        for morsel in morsels:
            results.extend(work(morsel))
        return results, len(morsels), 1
    used = min(workers, len(morsels))
    with ThreadPoolExecutor(max_workers=used) as pool:
        chunks = list(pool.map(work, morsels))
    results = []
    for chunk in chunks:
        results.extend(chunk)
    return results, len(morsels), used
