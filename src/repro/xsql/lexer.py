"""Tokenizer for XSQL source text.

Token kinds:

* ``IDENT`` — names of classes, attributes, methods, objects, variables;
* ``CLASSVAR`` / ``METHODVAR`` — ``#X``, ``"Y`` (the paper's ``§X`` and
  ``"Y`` variable sorts, §3.1).  Path variables ``*Y`` are recognized by
  the parser (``*`` is also multiplication, as in the paper's
  ``RaiseMngrSalary`` definition, so the lexer cannot decide alone);
* ``NUMBER`` / ``STRING`` — literal objects;
* ``OP`` — comparators and arithmetic;
* punctuation — ``. , ( ) [ ] { } @ ; :`` and the signature arrows.

Keywords (SELECT, FROM, WHERE, ...) are matched case-insensitively, like
SQL; everything else is case-sensitive, like the paper's examples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import XsqlSyntaxError

__all__ = ["Token", "tokenize", "split_script", "split_statements", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "oid",
        "function",
        "of",
        "and",
        "or",
        "not",
        "create",
        "view",
        "as",
        "subclass",
        "class",
        "alter",
        "add",
        "signature",
        "update",
        "set",
        "insert",
        "into",
        "values",
        "relation",
        "union",
        "minus",
        "intersect",
        "some",
        "all",
        "contains",
        "containseq",
        "subset",
        "subseteq",
        "subclassof",
        "instanceof",
        "applicableto",
        "count",
        "sum",
        "avg",
        "min",
        "max",
        "nil",
        "true",
        "false",
    }
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<classvar>\#[A-Za-z_][A-Za-z0-9_]*)
  | (?P<methodvar>"[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<arrow>=>>|=>|->>|->)
  | (?P<op><>|!=|<=|>=|=|<|>|\+|-|\*|/)
  | (?P<punct>[.,()\[\]{}@;:])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT, KEYWORD, NUMBER, STRING, CLASSVAR, METHODVAR,
    #            OP, ARROW, PUNCT, EOF
    text: str
    line: int
    column: int
    raw: Optional[str] = None  # original spelling (keywords lowercase text)

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.text in names

    def is_punct(self, *chars: str) -> bool:
        return self.kind == "PUNCT" and self.text in chars

    def is_op(self, *ops: str) -> bool:
        return self.kind == "OP" and self.text in ops


#: Keywords that only act as keywords in one clause position; elsewhere
#: they are ordinary identifiers.  Figure 1 itself has an attribute named
#: ``Function``, so ``FUNCTION`` must stay usable as a name.
_SOFT_KEYWORDS = {
    "function": ("oid",),
    "of": ("function", "subclass"),
}


def _soften_keywords(tokens: List[Token]) -> List[Token]:
    result: List[Token] = []
    for token in tokens:
        if token.kind == "KEYWORD" and token.text in _SOFT_KEYWORDS:
            previous = result[-1] if result else None
            allowed_after = _SOFT_KEYWORDS[token.text]
            if previous is None or not previous.is_keyword(*allowed_after):
                token = Token(
                    "IDENT",
                    token.raw or token.text,
                    token.line,
                    token.column,
                )
        result.append(token)
    return result


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, appending a trailing EOF token."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise XsqlSyntaxError(
                f"unexpected character {source[pos]!r}", line, column
            )
        kind = match.lastgroup
        text = match.group()
        column = pos - line_start + 1
        pos = match.end()
        if kind in ("ws", "comment"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos - len(text.rsplit("\n", 1)[-1])
            continue
        if kind == "ident":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("KEYWORD", lowered, line, column, text))
            else:
                tokens.append(Token("IDENT", text, line, column))
        elif kind == "number":
            tokens.append(Token("NUMBER", text, line, column))
        elif kind == "string":
            tokens.append(Token("STRING", text, line, column))
        elif kind == "classvar":
            tokens.append(Token("CLASSVAR", text[1:], line, column))
        elif kind == "methodvar":
            tokens.append(Token("METHODVAR", text[1:], line, column))
        elif kind == "arrow":
            tokens.append(Token("ARROW", text, line, column))
        elif kind == "op":
            canonical = "!=" if text == "<>" else text
            tokens.append(Token("OP", canonical, line, column))
        elif kind == "punct":
            tokens.append(Token("PUNCT", text, line, column))
        else:  # pragma: no cover - regex groups are exhaustive
            raise XsqlSyntaxError(f"unhandled token {text!r}", line, column)
    tokens.append(Token("EOF", "", line, pos - line_start + 1))
    return _soften_keywords(tokens)


def split_script(source: str) -> "Tuple[List[str], str]":
    """Split a script on *statement-level* ``;`` using the token scan.

    Returns ``(statements, remainder)`` where *remainder* is the text
    after the last semicolon (the incomplete trailing statement a REPL is
    still accumulating).  Because the split walks the same regex the
    tokenizer uses, semicolons inside string literals and ``--`` comments
    never split a statement — unlike a raw ``source.split(";")``.

    The scan is total: a character the tokenizer would reject is carried
    into the current statement verbatim, so the *parser* reports the
    error with position info when that statement is executed.
    """
    statements: List[str] = []
    start = 0
    pos = 0
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            # e.g. an unterminated string literal: leave the text in the
            # current statement and let the parser produce the error.
            pos += 1
            continue
        if match.lastgroup == "punct" and match.group() == ";":
            statements.append(source[start : match.start()])
            start = match.end()
        pos = match.end()
    return statements, source[start:]


def split_statements(source: str) -> List[str]:
    """All non-blank statements of a script (trailing ``;`` optional)."""
    statements, remainder = split_script(source)
    if remainder.strip():
        statements.append(remainder)
    return [s for s in statements if s.strip()]


def unescape_string(text: str) -> str:
    """Strip quotes and process backslash escapes of a STRING token."""
    body = text[1:-1]
    return body.replace("\\'", "'").replace("\\\\", "\\")
