"""Execution options: one frozen record for every knob the engine has.

Historically ``Session.prepare()``/``query()`` grew loose keyword
arguments one PR at a time (``plan=``, ``engine=``, the session-level
``join_mode``).  :class:`ExecutionOptions` gathers them — plus the
columnar-execution knobs ``batch_format`` and ``workers`` — into a
single frozen dataclass accepted uniformly by :meth:`Session.prepare`,
:meth:`Session.query`, :meth:`CompiledQuery.explain`, the REPL, and the
difftest oracle.  The loose kwargs remain as thin aliases that construct
one, and the statement cache is keyed on :meth:`ExecutionOptions.cache_key`,
so two calls with equivalent options share a compiled entry.

``join_mode=None`` means "defer to the session default" — it resolves at
execution time, not compile time, which preserves the historical
behaviour of flipping ``session.join_mode`` between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import QueryError

__all__ = [
    "ENGINES",
    "JOIN_MODES",
    "BATCH_FORMATS",
    "PLAN_MODES",
    "POINTER_JOIN_MODES",
    "ExecutionOptions",
]

#: Planner modes, ordered by ambition (see docs/LANGUAGE.md).
PLAN_MODES = ("none", "greedy", "typed", "cost")

#: Execution engines: the operator tree vs the §3.4 naive evaluator.
ENGINES = ("reference", "naive")

#: Join strategies for the factored executor; ``None`` defers to the
#: session-level default.
JOIN_MODES = ("hash", "nested")

#: Batch representations for the operator tree (repro.xsql.batches).
BATCH_FORMATS = ("rows", "columnar")

#: Pointer-join fusion policy for ``plan="cost"`` + ``join_mode="hash"``:
#: ``"auto"`` fuses an OID-equality conjunct into direct reference
#: navigation when the cost model predicts the skipped extent scan pays,
#: ``"force"`` fuses whenever the shape applies, ``"off"`` never fuses.
POINTER_JOIN_MODES = ("auto", "off", "force")

#: Upper bound on the scan worker pool — morsel scans are thread-based,
#: so more workers than cores only adds scheduling overhead.
MAX_WORKERS = 64


@dataclass(frozen=True)
class ExecutionOptions:
    """Frozen bundle of execution knobs for one prepared statement.

    ``plan``
        Planner mode: one of :data:`PLAN_MODES`.
    ``engine``
        ``"reference"`` (the physical-operator tree) or ``"naive"``
        (the §3.4 substitution-space evaluator).
    ``join_mode``
        ``"hash"``/``"nested"``, or ``None`` to use the session default
        at execution time.
    ``batch_format``
        ``"rows"`` (per-binding dicts) or ``"columnar"`` (one value
        vector per variable; enables the session-persistent walker
        memo and morsel-parallel scans).
    ``workers``
        Worker threads for morsel-driven scans; only meaningful with
        ``batch_format="columnar"``.  Results are bit-identical for
        every worker count.
    ``pointer_join``
        Pointer-join fusion policy (``"auto"``/``"off"``/``"force"``).
        Under ``plan="cost"`` with the factored executor, an equality
        conjunct between an OID-valued path and a range variable can be
        fused into direct reference navigation (a :class:`PointerJoin`
        operator) that skips the joined class's extent scan.  Results
        are bit-identical in every mode.
    """

    plan: str = "none"
    engine: str = "reference"
    join_mode: Optional[str] = None
    batch_format: str = "rows"
    workers: int = 1
    pointer_join: str = "auto"

    def validate(self) -> "ExecutionOptions":
        if self.plan not in PLAN_MODES:
            raise QueryError(
                f"unknown plan mode {self.plan!r}; choose from {PLAN_MODES}"
            )
        if self.engine not in ENGINES:
            raise QueryError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if self.join_mode is not None and self.join_mode not in JOIN_MODES:
            raise QueryError(
                f"unknown join_mode {self.join_mode!r}; "
                f"choose from {JOIN_MODES} or None"
            )
        if self.batch_format not in BATCH_FORMATS:
            raise QueryError(
                f"unknown batch_format {self.batch_format!r}; "
                f"choose from {BATCH_FORMATS}"
            )
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise QueryError(f"workers must be an int, got {self.workers!r}")
        if not 1 <= self.workers <= MAX_WORKERS:
            raise QueryError(
                f"workers must be in 1..{MAX_WORKERS}, got {self.workers}"
            )
        if self.pointer_join not in POINTER_JOIN_MODES:
            raise QueryError(
                f"unknown pointer_join {self.pointer_join!r}; "
                f"choose from {POINTER_JOIN_MODES}"
            )
        return self

    def with_overrides(self, **overrides) -> "ExecutionOptions":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides).validate()

    def cache_key(self) -> Tuple:
        """The frozen tuple the statement cache keys compiled entries on."""
        return (
            self.plan,
            self.engine,
            self.join_mode,
            self.batch_format,
            self.workers,
            self.pointer_join,
        )

    @classmethod
    def coerce(
        cls,
        options: Optional["ExecutionOptions"] = None,
        **kwargs,
    ) -> "ExecutionOptions":
        """Build options from an explicit record and/or loose kwargs.

        The loose kwargs are the historical API (``plan="cost"``, ...);
        they act as overrides on *options* (or on the defaults).  A
        kwarg left as ``None`` keeps the base value, so callers can
        thread optional CLI flags straight through.
        """
        base = options if options is not None else cls()
        if not isinstance(base, cls):
            raise QueryError(
                f"options must be ExecutionOptions, got {type(base).__name__}"
            )
        overrides = {
            name: value for name, value in kwargs.items() if value is not None
        }
        if overrides:
            base = replace(base, **overrides)
        return base.validate()
