"""Reified physical operators: the one executor behind every plan mode.

Before this module the pipeline had four divergent execution paths — the
tuple-at-a-time :class:`~repro.xsql.evaluator.Evaluator` for
``plan="none"``/``"greedy"``, the Theorem 6.1 restricted run for
``plan="typed"``, the traced cost run, and the batch-factored
``HashJoinEvaluator`` — each interpreting the plan inline.  Here the plan
is *reified* instead: a tree of physical operators with a uniform
``open()/batches()/close()`` interface over the factored binding-batch
representation, and every ``plan=``/``engine=``/``join_mode`` combination
lowers to such a tree (:func:`lower_statement`) and runs through one
executor (:func:`execute`).

The operator catalogue:

=================  ====================================================
``ExtentScan``     one FROM declaration over a full class extent
``RestrictedScan`` FROM over a Theorem 6.1 instantiation set
``IndexProbe``     FROM narrowed by an inverted-index probe
``PathEval``       a path-expression conjunct (``X.M[Y]``)
``Filter``         an unquantified comparison or schema predicate
``Quantify``       a ``some``/``all``-quantified comparison
``Aggregate``      a comparison over ``count``/``sum``/``avg``/…
``HashJoin``       equality between disjoint batches: build + probe
``SemiJoin``       equality against a ground path: hash-filter one side
``PointerJoin``    pointer-fused equality: binds a range variable by
                   dereferencing stored cells (forward navigation) or
                   probing the inverted index (backward), skipping the
                   variable's extent scan entirely
``NestedLoop``     any other conjunct, per binding — and, as a *root*,
                   whole-statement evaluation (WHERE-with-updates keeps
                   the exact lazy §5 stream; ``engine="naive"`` runs the
                   literal §3.4 enumeration)
``Project``        SELECT-item expansion into a result table
``SetOp``          UNION / MINUS / INTERSECT of two sub-results
=================  ====================================================

The executor state is a list of batches — disjoint groups of bound
variables — whose cross product is the logical binding stream.  The
batch algebra itself (row :class:`Batch`, columnar :class:`ColumnBatch`,
``merge_overlapping``/``merge_all``/``product_count``) lives in the
public module :mod:`repro.xsql.batches` and is re-exported here.  In
*merged* mode (every plan except ``cost`` + ``join_mode="hash"``) each
operator merges the whole state into a single batch first, which makes
the stream identical, binding for binding, to the legacy tuple-at-a-time
stages.  In *factored* mode batches merge only when a conjunct connects
them, and equality conjuncts between disjoint batches become hash or
semi joins.  Either way deduplication happens once, under ``Project``,
exactly as :meth:`Evaluator.env_stream` always did — so results are
bit-identical across modes (the difftest oracle is the gate).

With ``batch_format="columnar"`` (see
:class:`repro.xsql.options.ExecutionOptions`) the same operators run
over :class:`ColumnBatch` states: scans split their candidate extents
into morsels dispatched across a worker pool (deterministic morsel-order
merge), merges repeat/tile value vectors instead of merging dicts, and
conjunct evaluation groups the stream by its projection onto the
conjunct's variables, consulting the session-persistent walker memo once
per distinct projection.  The binding stream — order included — is
bit-identical to rows mode; only the representation and the work saved
differ.

Each operator carries runtime counters — rows in/out (logical stream
sizes), batches, rows per batch, wall time of its own transform,
path-cache hits, and (for morsel scans) morsel/worker counts — surfaced
by ``CompiledQuery.explain(analyze=True)`` via :func:`tree_dict` /
:func:`render_tree`.
"""

from __future__ import annotations

import time
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import QueryError
from repro.oid import Atom, Oid, Variable, term_sort_key
from repro.xsql import ast
from repro.xsql.batches import (
    UNBOUND,
    AnyBatch,
    Batch,
    ColumnBatch,
    State,
    _cross_columnar,
    _var_key,
    batch_rows,
    cross_state,
    merge_all,
    merge_overlapping,
    morsel_map,
    product_count,
    replay_deltas,
)
from repro.xsql.evaluator import Evaluator, _dedup
from repro.xsql.paths import Bindings
from repro.xsql.planner import _cond_has_updates
from repro.xsql.result import QueryResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics import SessionMetrics
    from repro.xsql.costplan import PlanEntry

__all__ = [
    "Aggregate",
    "Batch",
    "ColumnBatch",
    "ExecContext",
    "ExtentScan",
    "Filter",
    "HashJoin",
    "IndexProbe",
    "LowerSpec",
    "NestedLoop",
    "Operator",
    "PathEval",
    "PointerJoin",
    "Project",
    "Quantify",
    "RestrictedScan",
    "SemiJoin",
    "SetOp",
    "execute",
    "join_strategy_of",
    "lower_query",
    "operand_join_vars",
    "lower_statement",
    "merge_all",
    "merge_overlapping",
    "product_count",
    "render_tree",
    "stage_trace",
    "tree_dict",
]

# Back-compat alias: the logical stream iterator moved to
# repro.xsql.batches as cross_state; old imports keep working.
_cross = cross_state

#: Quantifiers with existential (∩ ≠ ∅) semantics under ``compare("=")``.
_EXISTENTIAL = (None, "some")


def _operand_join_vars(
    operand: ast.Operand,
) -> Optional[Tuple[Variable, ...]]:
    """The operand's free variables, when it is a plain path operand."""
    if isinstance(operand, ast.PathOperand):
        return tuple(dict.fromkeys(ast.path_variables(operand.path)))
    return None


#: Public alias — the cost planner's pointer-fusion rules use the same
#: "free variables of a join operand" notion as the strategy classifier.
operand_join_vars = _operand_join_vars


def join_strategy_of(cond: ast.Cond) -> str:
    """Classify a conjunct for set-at-a-time execution.

    ``"hash"``   — equality between two path operands with existential
                   quantifiers and disjoint variable sets: a hash join.
    ``"semi"``   — same shape but one side is ground: a semi-join filter
                   (hash the variable side, intersect with the constant).
    ``"nested"`` — anything else; evaluated per binding, exactly as the
                   tuple-at-a-time evaluator would.
    """
    if not isinstance(cond, ast.Comparison):
        return "nested"
    if cond.op != "=":
        return "nested"
    if cond.lq not in _EXISTENTIAL or cond.rq not in _EXISTENTIAL:
        return "nested"
    lvars = _operand_join_vars(cond.lhs)
    rvars = _operand_join_vars(cond.rhs)
    if lvars is None or rvars is None:
        return "nested"
    if set(lvars) & set(rvars):
        return "nested"  # shared variable: correlation, not a join
    if lvars and rvars:
        return "hash"
    if lvars or rvars:
        return "semi"
    return "nested"  # both ground: a constant test, no join to speed up


class ExecContext:
    """Per-run execution context shared by every operator in a tree."""

    __slots__ = ("evaluator", "metrics", "batch_format", "workers")

    def __init__(
        self,
        evaluator: Evaluator,
        metrics: Optional["SessionMetrics"] = None,
        batch_format: str = "rows",
        workers: int = 1,
    ) -> None:
        self.evaluator = evaluator
        self.metrics = metrics
        self.batch_format = batch_format
        self.workers = workers

    @property
    def columnar(self) -> bool:
        return self.batch_format == "columnar"

    def path_cache_hits(self) -> int:
        if self.metrics is None:
            return 0
        return self.metrics.counters.get("cache.path.hit", 0)


# ----------------------------------------------------------------------
# the operator base
# ----------------------------------------------------------------------


class Operator:
    """One node of the physical plan: ``open()``, ``batches()``, ``close()``.

    ``batches()`` pulls the child state, transforms it, and memoizes the
    output for the run; counters measure only the node's own transform
    (child work is pulled outside the timer).  Root operators
    (:class:`Project`, :class:`SetOp`, whole-statement
    :class:`NestedLoop`) additionally implement ``result()``.
    """

    name = "Operator"

    def __init__(
        self,
        child: Optional["Operator"] = None,
        *,
        label: str = "",
        detail: str = "",
        estimated_rows: Optional[float] = None,
        merge_all: bool = False,
    ) -> None:
        self.child = child
        self.label = label
        self.detail = detail
        self.estimated_rows = estimated_rows
        self.merge_all = merge_all
        self.statement: Optional[ast.Statement] = None
        self._ctx: Optional[ExecContext] = None
        self._output: Optional[State] = None
        self._reset_counters()

    def _reset_counters(self) -> None:
        self.rows_in = 0
        self.rows_out = 0
        self.batches_out = 0
        self.wall_seconds = 0.0
        self.cache_hits = 0
        self.morsels = 0
        self.workers_used = 0
        self.executed = False

    @property
    def children(self) -> List["Operator"]:
        return [self.child] if self.child is not None else []

    # -- lifecycle ------------------------------------------------------

    def open(self, ctx: ExecContext) -> None:
        self._ctx = ctx
        self._output = None
        self._reset_counters()
        for child in self.children:
            child.open(ctx)

    def batches(self) -> State:
        if self._output is None:
            state = self.child.batches() if self.child is not None else []
            self._output = self._measure(state)
        return self._output

    def close(self) -> None:
        for child in self.children:
            child.close()
        ctx = self._ctx
        if ctx is not None and ctx.metrics is not None and self.executed:
            ctx.metrics.count(f"op.{self.name}")

    # -- instrumentation ------------------------------------------------

    def _measure(self, state: State) -> State:
        ctx = self._ctx
        assert ctx is not None, "operator used before open()"
        self.rows_in = product_count(state)
        hits = ctx.path_cache_hits()
        started = time.perf_counter()
        out = self._transform(state)
        self.wall_seconds += time.perf_counter() - started
        self.cache_hits += ctx.path_cache_hits() - hits
        self.rows_out = product_count(out)
        self.batches_out = len(out)
        self.executed = True
        return out

    def _transform(self, state: State) -> State:
        raise NotImplementedError

    def result(self) -> QueryResult:
        raise QueryError(f"{self.name} is not a plan root")


# ----------------------------------------------------------------------
# scans: one FROM declaration each
# ----------------------------------------------------------------------


class ScanOperator(Operator):
    """Bind one FROM declaration over the incoming stream.

    All three scan flavours delegate to ``Evaluator._bind_from``, which
    consults the evaluator's per-variable restrictions at runtime — the
    subclass records *which access path the plan chose* (and `EXPLAIN
    ANALYZE` then shows whether it paid off).
    """

    def __init__(
        self, decl: ast.FromDecl, child: Optional[Operator] = None, **kw
    ) -> None:
        kw.setdefault("label", f"FROM {decl.cls} {decl.var}")
        super().__init__(child, **kw)
        self.decl = decl

    def _transform(self, state: State) -> State:
        decl = self.decl
        touched = {decl.var}
        if isinstance(decl.cls, Variable):
            touched.add(decl.cls)
        base, rest = merge_overlapping(state, touched, self.merge_all)
        assert self._ctx is not None
        if self._ctx.columnar:
            if not isinstance(base, ColumnBatch):
                base = ColumnBatch.from_rows(base.vars, batch_rows(base))
            rest.append(self._columnar_scan(base, touched))
            return rest
        envs = list(self._ctx.evaluator._bind_from(decl, iter(base.envs)))
        rest.append(Batch(base.vars | touched, envs))
        return rest

    def _columnar_scan(
        self, base: ColumnBatch, touched: Set[Variable]
    ) -> ColumnBatch:
        """Bind the declaration morsel-at-a-time over *base*.

        Mirrors ``Evaluator._bind_from`` binding for binding: the
        candidate stream (extent, restricted set, or the already-bound
        object) is cut into morsels and admitted in parallel, then
        concatenated in morsel order — so the output is identical to the
        sequential scan for every worker count.

        When the FROM class is a constant and the incoming batch leaves
        the scan variable unbound, candidates and admission are
        independent of the incoming bindings: the scan admits the
        candidate list **once** and cross-products it against the batch
        (env-outer, candidate-inner — the row executor's order) instead
        of re-admitting per incoming env.
        """
        ctx = self._ctx
        assert ctx is not None
        evaluator = ctx.evaluator
        decl = self.decl
        if not isinstance(decl.cls, Variable) and decl.var not in base.vars:
            pairs = list(evaluator._from_classes(decl, {}))
            if not pairs:
                out_vars = base.vars | touched
                return ColumnBatch(
                    out_vars,
                    {var: [] for var in sorted(out_vars, key=_var_key)},
                    0,
                )
            _env1, cls = pairs[0]
            candidates, admit = evaluator._scan_candidates(decl, {}, cls)

            def admit_morsel(morsel, admit=admit):
                return [obj for obj in morsel if admit(obj)]

            admitted, n_morsels, used = morsel_map(
                admit_morsel, candidates, workers=ctx.workers
            )
            self.morsels += n_morsels
            self.workers_used = max(self.workers_used, used)
            bound = ColumnBatch(
                {decl.var}, {decl.var: admitted}, len(admitted)
            )
            return _cross_columnar(base, bound)
        rows: List[Bindings] = []
        for env in base.rows():
            for env1, cls in evaluator._from_classes(decl, env):
                bound_var = env1.get(decl.var)
                if bound_var is not None:
                    if evaluator.store.is_instance(bound_var, cls):
                        rows.append(env1)
                    continue
                candidates, admit = evaluator._scan_candidates(
                    decl, env1, cls
                )

                def work(morsel, env1=env1, admit=admit, var=decl.var):
                    out = []
                    for obj in morsel:
                        if admit(obj):
                            bound_env = dict(env1)
                            bound_env[var] = obj
                            out.append(bound_env)
                    return out

                got, n_morsels, used = morsel_map(
                    work, candidates, workers=ctx.workers
                )
                rows.extend(got)
                self.morsels += n_morsels
                self.workers_used = max(self.workers_used, used)
        return ColumnBatch.from_rows(base.vars | touched, rows)


class ExtentScan(ScanOperator):
    name = "ExtentScan"


class RestrictedScan(ScanOperator):
    """FROM over a Theorem 6.1 instantiation set instead of the extent."""

    name = "RestrictedScan"


class IndexProbe(ScanOperator):
    """FROM narrowed to the owners found by an inverted-index probe."""

    name = "IndexProbe"


# ----------------------------------------------------------------------
# conjuncts
# ----------------------------------------------------------------------


class CondOperator(Operator):
    """Base for operators that apply one WHERE conjunct to the stream."""

    def __init__(
        self,
        cond: Optional[ast.Cond],
        child: Optional[Operator] = None,
        **kw,
    ) -> None:
        if cond is not None:
            kw.setdefault("label", str(cond))
        super().__init__(child, **kw)
        self.cond = cond

    def _transform(self, state: State) -> State:
        return self._merge_eval(state)

    def _merge_eval(self, state: State) -> State:
        """Merge what the conjunct touches; evaluate it per binding."""
        assert self.cond is not None and self._ctx is not None
        cond_vars = set(ast.cond_variables(self.cond))
        base, rest = merge_overlapping(state, cond_vars, self.merge_all)
        metrics = self._ctx.metrics
        if not self.merge_all and metrics is not None:
            metrics.count("join.filter")
        evaluator = self._ctx.evaluator
        if self._ctx.columnar:
            rest.append(self._grouped_eval(base, cond_vars))
            return rest
        envs = [
            out
            for env in base.envs
            for out in evaluator.eval_cond(self.cond, env)
        ]
        rest.append(Batch(base.vars | cond_vars, envs))
        return rest

    def _grouped_eval(
        self, base: AnyBatch, cond_vars: Set[Variable]
    ) -> ColumnBatch:
        """Evaluate the conjunct once per distinct variable projection.

        A conjunct only reads its own variables (``ast.cond_variables``
        is a superset of everything evaluation can touch, subquery free
        variables included), so two rows agreeing on that projection get
        the same *delta* — the bindings the conjunct adds beyond the
        projection.  The whole step is column-at-a-time: projection keys
        are zipped straight out of the batch's vectors, deltas are
        computed once per distinct key (and memoized across runs in the
        walker's generation-stamped memo), and the output vectors are
        assembled without materializing row dicts.  Replay order per row
        equals the per-row ``eval_cond`` order, so the stream is
        bit-identical to the ungrouped evaluation.
        """
        ctx = self._ctx
        assert ctx is not None and self.cond is not None
        evaluator = ctx.evaluator
        walker = evaluator.walker
        if not isinstance(base, ColumnBatch):
            base = ColumnBatch.from_rows(base.vars, batch_rows(base))
        key_vars = sorted(cond_vars, key=_var_key)
        length = base.length
        key_columns = []
        for var in key_vars:
            column = base.columns.get(var)
            if column is None:
                key_columns.append([None] * length)
            else:
                key_columns.append(
                    [None if cell is UNBOUND else cell for cell in column]
                )
        keys = list(zip(*key_columns)) if key_columns else [()] * length
        # memo_token runs the generation check; the loop below cannot
        # mutate the store (pipeline conjuncts are side-effect-free), so
        # the per-key lookups use the unguarded fast path.
        token = walker.memo_token("cond", self.cond)
        local: Dict[Tuple, Sequence[Bindings]] = {}
        hits = misses = 0
        per_row: List[Sequence[Bindings]] = []
        for key in keys:
            deltas = local.get(key)
            if deltas is None:
                memo_key = (token, key)
                deltas = walker.memo_get_fresh(memo_key)
                if deltas is None:
                    misses += 1
                    projection = {
                        var: value
                        for var, value in zip(key_vars, key)
                        if value is not None
                    }
                    deltas = tuple(
                        {
                            var: value
                            for var, value in out.items()
                            if var not in projection
                        }
                        for out in evaluator.eval_cond(self.cond, projection)
                    )
                    walker.memo_put(memo_key, deltas)
                else:
                    hits += 1
                    self.cache_hits += 1
                local[key] = deltas
            per_row.append(deltas)
        walker.memo_counts(hits, misses)
        return replay_deltas(base, cond_vars, per_row)

    def _operand_values(self, operand: ast.Operand, env: Bindings):
        """The operand's value set under *env*; walker-memoized when
        columnar (keyed on the projection onto the operand's variables,
        which bounds everything its evaluation can read)."""
        ctx = self._ctx
        assert ctx is not None
        evaluator = ctx.evaluator
        if not ctx.columnar:
            return evaluator.eval_operand(operand, env)
        op_vars = sorted(
            set(ast.operand_variables(operand)),
            key=lambda var: (var.name, var.sort.value),
        )
        key = tuple(env.get(var) for var in op_vars)
        token = evaluator.walker.memo_token("operand", operand)
        memo_key = (token, key)
        values = evaluator.walker.memo_get(memo_key)
        if values is None:
            projection = {
                var: value
                for var, value in zip(op_vars, key)
                if value is not None
            }
            values = evaluator.eval_operand(operand, projection)
            evaluator.walker.memo_put(memo_key, values)
        else:
            self.cache_hits += 1
        return values


class PathEval(CondOperator):
    """A path-expression conjunct: walk and extend bindings."""

    name = "PathEval"


class Filter(CondOperator):
    """An unquantified comparison or schema predicate."""

    name = "Filter"


class Quantify(CondOperator):
    """A ``some``/``all``-quantified comparison (vacuous truth included)."""

    name = "Quantify"


class Aggregate(CondOperator):
    """A comparison over an aggregate operand (count/sum/avg/min/max)."""

    name = "Aggregate"


def _covering(state: State, needed: Set[Variable]) -> Optional[State]:
    """Batches covering *needed*, each with it fully bound; else None."""
    found = [batch for batch in state if batch.vars & needed]
    covered = set().union(*(b.vars for b in found)) if found else set()
    if not needed <= covered:
        return None  # an operand variable no batch binds yet
    for batch in found:
        want = batch.vars & needed
        if isinstance(batch, ColumnBatch):
            if batch.has_unbound(want):
                return None  # declared but unbound (e.g. empty walk)
            continue
        if any(
            any(var not in env for var in want) for env in batch.envs
        ):
            return None  # declared but unbound (e.g. empty walk)
    return found


def _setwise_ready(
    state: State, lvars: Set[Variable], rvars: Set[Variable]
) -> bool:
    left_owners = _covering(state, lvars)
    right_owners = _covering(state, rvars)
    if left_owners is None or right_owners is None:
        return False
    if set(map(id, left_owners)) & set(map(id, right_owners)):
        return False  # one batch feeds both operands: correlated
    return True


class HashJoin(CondOperator):
    """Equality between disjoint batches: build on the smaller, probe.

    Falls back to the per-binding merge when a precondition fails at
    runtime (an operand variable unbound, or both sides fed by the same
    batch) — results stay bit-identical either way.
    """

    name = "HashJoin"

    def _transform(self, state: State) -> State:
        out = self._try_join(state)
        if out is None:
            return self._merge_eval(state)
        return out

    def _try_join(self, state: State) -> Optional[State]:
        cond = self.cond
        assert isinstance(cond, ast.Comparison) and self._ctx is not None
        lvars = set(_operand_join_vars(cond.lhs) or ())
        rvars = set(_operand_join_vars(cond.rhs) or ())
        if not _setwise_ready(state, lvars, rvars):
            return None
        ctx = self._ctx
        left, rest = merge_overlapping(state, lvars)
        right, rest = merge_overlapping(rest, rvars)
        build, build_op, probe, probe_op = (
            (left, cond.lhs, right, cond.rhs)
            if len(left) <= len(right)
            else (right, cond.rhs, left, cond.lhs)
        )
        build_rows = batch_rows(build)
        probe_rows = batch_rows(probe)
        table: Dict[Oid, List[int]] = {}
        for index, env in enumerate(build_rows):
            for value in self._operand_values(build_op, env):
                table.setdefault(value, []).append(index)
        envs = []
        for probe_env in probe_rows:
            matched: Set[int] = set()
            for value in self._operand_values(probe_op, probe_env):
                matched.update(table.get(value, ()))
            for index in sorted(matched):
                envs.append({**build_rows[index], **probe_env})
        joined_vars = left.vars | right.vars
        if ctx.columnar:
            rest.append(ColumnBatch.from_rows(joined_vars, envs))
        else:
            rest.append(Batch(joined_vars, envs))
        if ctx.metrics is not None:
            ctx.metrics.count("join.hash")
        return rest


class SemiJoin(CondOperator):
    """Equality against a ground path: hash-filter the variable side."""

    name = "SemiJoin"

    def _transform(self, state: State) -> State:
        cond = self.cond
        assert isinstance(cond, ast.Comparison) and self._ctx is not None
        lvars = set(_operand_join_vars(cond.lhs) or ())
        rvars = set(_operand_join_vars(cond.rhs) or ())
        if not _setwise_ready(state, lvars, rvars):
            return self._merge_eval(state)
        ctx = self._ctx
        keyed, ground_op = (
            (lvars, cond.rhs) if lvars else (rvars, cond.lhs)
        )
        keyed_op = cond.lhs if keyed is lvars else cond.rhs
        base, rest = merge_overlapping(state, keyed)
        ground = self._operand_values(ground_op, {})
        envs = [
            env
            for env in batch_rows(base)
            if ground
            and not ground.isdisjoint(self._operand_values(keyed_op, env))
        ]
        if ctx.columnar:
            rest.append(ColumnBatch.from_rows(base.vars | keyed, envs))
        else:
            rest.append(Batch(base.vars | keyed, envs))
        if ctx.metrics is not None:
            ctx.metrics.count("join.semi")
        return rest


class PointerJoin(CondOperator):
    """Pointer-fused equality: bind a range variable by navigation.

    The cost planner fuses a conjunct equating an OID-valued path with a
    range variable (``X.Manufacturer = M``) into this operator and skips
    ``M``'s extent scan.  ``M`` is then bound either by *forward*
    navigation — dereference the path side's stored cells per binding —
    or by *backward* navigation — probe the inverted index on the path's
    method with the other side's values (``store.lookup_by_value``).
    Either way each produced value is admitted exactly as the skipped
    scan would have admitted it (class membership plus the evaluator's
    per-variable restriction), so the output stream is set-identical to
    scan-then-filter.

    Columnar states group the stream by its projection onto the other
    side's variables and dereference once per distinct projection, with
    the distinct keys dispatched across the morsel worker pool; deltas
    are memoized in the walker's generation-stamped memo.

    Every precondition is re-checked at runtime — an unbound operand
    variable, an incomplete index, or an already-bound fused variable
    falls back to the unfused scan + per-binding merge, bit-identically.
    """

    name = "PointerJoin"

    def __init__(
        self,
        cond: ast.Cond,
        child: Optional[Operator] = None,
        *,
        decl: ast.FromDecl,
        direction: str = "forward",
        **kw,
    ) -> None:
        super().__init__(cond, child, **kw)
        if direction not in ("forward", "backward"):
            raise QueryError(
                f"pointer-join direction must be forward/backward, "
                f"got {direction!r}"
            )
        self.decl = decl
        self.direction = direction
        #: The skipped scan, kept as a private fallback: when a fast-path
        #: precondition fails we bind the variable the unfused way and
        #: apply the conjunct per binding.
        self._scan = ExtentScan(decl)

    def _reset_counters(self) -> None:
        super()._reset_counters()
        self.derefs = 0

    def open(self, ctx: ExecContext) -> None:
        super().open(ctx)
        self._scan.open(ctx)

    def _transform(self, state: State) -> State:
        out = self._try_pointer(state)
        if out is None:
            return self._merge_eval(self._scan._transform(state))
        return out

    # -- the fused fast path -------------------------------------------

    def _sides(
        self,
    ) -> Tuple[Optional[ast.Operand], Optional[ast.Operand]]:
        """(fused side, other side) of the equality, shape-checked."""
        cond = self.cond
        assert isinstance(cond, ast.Comparison)
        var = self.decl.var
        for mine, other in ((cond.lhs, cond.rhs), (cond.rhs, cond.lhs)):
            if not isinstance(mine, ast.PathOperand):
                continue
            path = mine.path
            if path.head != var:
                continue
            if self.direction == "forward":
                if path.is_trivial:
                    return mine, other
                continue
            if len(path.steps) != 1:
                continue
            step = path.steps[0]
            if step.selector is not None:
                continue
            if not isinstance(step.method_expr.method, Atom):
                continue
            if not all(isinstance(a, Oid) for a in step.method_expr.args):
                continue
            return mine, other
        return None, None

    def _try_pointer(self, state: State) -> Optional[State]:
        cond = self.cond
        ctx = self._ctx
        assert isinstance(cond, ast.Comparison) and ctx is not None
        if cond.op != "=" or cond.lq not in _EXISTENTIAL or (
            cond.rq not in _EXISTENTIAL
        ):
            return None
        var = self.decl.var
        if isinstance(self.decl.cls, Variable):
            return None
        if any(var in batch.vars for batch in state):
            return None  # already bound: the scan must re-admit it
        mine, other = self._sides()
        if mine is None or other is None or not isinstance(
            other, ast.PathOperand
        ):
            return None
        other_vars = set(ast.operand_variables(other))
        if var in other_vars:
            return None  # correlated: not a join
        method: Optional[Atom] = None
        args: Tuple[Oid, ...] = ()
        if self.direction == "backward":
            step = mine.path.steps[0]
            method = step.method_expr.method
            args = tuple(step.method_expr.args)
            if not ctx.evaluator.store.index_is_complete_for(method):
                return None
        if other_vars and _covering(state, other_vars) is None:
            return None
        cond_vars = set(ast.cond_variables(cond))
        base, rest = merge_overlapping(state, cond_vars)
        if ctx.columnar:
            batch = self._columnar_pointer(
                base, cond_vars, other_vars, other, method, args
            )
            if batch is None:
                return None
            rest.append(batch)
        else:
            rows: List[Bindings] = []
            for env in batch_rows(base):
                deltas = self._bind(other, env, method, args)
                if deltas is None:
                    return None
                for delta in deltas:
                    rows.append({**env, **delta})
            rest.append(Batch(base.vars | cond_vars, rows))
        if ctx.metrics is not None:
            ctx.metrics.count("join.pointer")
        return rest

    def _bind(
        self,
        other: ast.Operand,
        env: Bindings,
        method: Optional[Atom],
        args: Tuple[Oid, ...],
    ) -> Optional[Tuple[Bindings, ...]]:
        """The bindings navigation adds for one projection; None when the
        inverted index cannot answer exactly (backward only)."""
        ctx = self._ctx
        assert ctx is not None
        evaluator = ctx.evaluator
        store = evaluator.store
        var = self.decl.var
        cls = self.decl.cls
        values = self._operand_values(other, env)
        self.derefs += 1
        if self.direction == "forward":
            candidates = values
        else:
            assert method is not None
            owners: Set[Oid] = set()
            for value in values:
                got = store.lookup_by_value(method, value, args)
                if got is None:
                    return None
                owners |= got
            candidates = owners
        admits = evaluator.walker.admits
        return tuple(
            {var: value}
            for value in sorted(candidates, key=term_sort_key)
            if store.is_instance(value, cls) and admits(var, value)
        )

    def _columnar_pointer(
        self,
        base: AnyBatch,
        cond_vars: Set[Variable],
        other_vars: Set[Variable],
        other: ast.Operand,
        method: Optional[Atom],
        args: Tuple[Oid, ...],
    ) -> Optional[ColumnBatch]:
        """Dereference once per distinct projection, morsel-parallel."""
        ctx = self._ctx
        assert ctx is not None
        walker = ctx.evaluator.walker
        if not isinstance(base, ColumnBatch):
            base = ColumnBatch.from_rows(base.vars, batch_rows(base))
        key_vars = sorted(other_vars, key=_var_key)
        length = base.length
        key_columns = []
        for kvar in key_vars:
            column = base.columns.get(kvar)
            if column is None:
                key_columns.append([None] * length)
            else:
                key_columns.append(
                    [None if cell is UNBOUND else cell for cell in column]
                )
        keys = list(zip(*key_columns)) if key_columns else [()] * length
        distinct = list(dict.fromkeys(keys))
        token = walker.memo_token("pointer:" + self.direction, self.cond)

        def work(morsel):
            out = []
            for key in morsel:
                memo_key = (token, key)
                deltas = walker.memo_get_fresh(memo_key)
                if deltas is None:
                    projection = {
                        kvar: value
                        for kvar, value in zip(key_vars, key)
                        if value is not None
                    }
                    deltas = self._bind(other, projection, method, args)
                    if deltas is not None:
                        walker.memo_put(memo_key, deltas)
                else:
                    self.cache_hits += 1
                out.append((key, deltas))
            return out

        results, n_morsels, used = morsel_map(
            work, distinct, workers=ctx.workers
        )
        self.morsels += n_morsels
        self.workers_used = max(self.workers_used, used)
        mapping = dict(results)
        if any(deltas is None for deltas in mapping.values()):
            return None  # incomplete index discovered mid-run
        per_row = [mapping[key] for key in keys]
        return replay_deltas(base, cond_vars, per_row)


class NestedLoop(CondOperator):
    """Per-binding evaluation of anything the other operators don't claim.

    In a pipeline position it merges what the conjunct touches and runs
    the inherited ``eval_cond`` per binding (OR/NOT/nested AND).  As a
    *root* (``cond=None``, ``statement=...``) it evaluates a whole
    statement through the context's evaluator in one step: WHERE clauses
    containing updates must keep the exact lazy left-to-right stream of
    §5, and ``engine="naive"`` runs the literal §3.4 enumeration.
    """

    name = "NestedLoop"

    def __init__(
        self,
        cond: Optional[ast.Cond] = None,
        child: Optional[Operator] = None,
        *,
        statement: Optional[ast.Statement] = None,
        **kw,
    ) -> None:
        if cond is None and statement is not None:
            kw.setdefault("label", _clip(str(statement)))
        super().__init__(cond, child, **kw)
        self.statement = statement

    def result(self) -> QueryResult:
        assert self.statement is not None and self._ctx is not None
        ctx = self._ctx
        hits = ctx.path_cache_hits()
        started = time.perf_counter()
        result = ctx.evaluator.run(self.statement)
        self.wall_seconds += time.perf_counter() - started
        self.cache_hits += ctx.path_cache_hits() - hits
        self.rows_out = len(result)
        self.batches_out = 1
        self.executed = True
        return result


# ----------------------------------------------------------------------
# roots
# ----------------------------------------------------------------------


def _item_label(item: ast.SelectItem) -> str:
    if isinstance(item, ast.PathItem):
        return item.name or str(item.path)
    if isinstance(item, ast.SetItem):
        return item.name
    return str(item)


def _clip(text: str, limit: int = 60) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


class Project(Operator):
    """Expand SELECT items over the deduplicated binding stream."""

    name = "Project"

    def __init__(
        self, query: ast.Query, child: Optional[Operator] = None, **kw
    ) -> None:
        kw.setdefault(
            "label", ", ".join(_item_label(item) for item in query.select)
        )
        super().__init__(child, **kw)
        self.query = query

    def result(self) -> QueryResult:
        query = self.query
        # The same guards Evaluator.run applies, before any child work.
        if query.creates_objects:
            raise QueryError(
                "object-creating queries must run through the session's "
                "view manager (they mint oids)"
            )
        if any(isinstance(item, ast.MethodItem) for item in query.select):
            raise QueryError(
                "method-defining SELECT items only appear inside "
                "ALTER CLASS statements"
            )
        ctx = self._ctx
        assert ctx is not None
        state = self.child.batches() if self.child is not None else []
        self.rows_in = product_count(state)
        evaluator = ctx.evaluator
        hits = ctx.path_cache_hits()
        started = time.perf_counter()
        columns = [evaluator._column_name(item) for item in query.select]
        result = QueryResult(columns)
        for env in _dedup(cross_state(state)):
            for row in evaluator._select_rows(query.select, env):
                result.add(row)
        self.wall_seconds += time.perf_counter() - started
        self.cache_hits += ctx.path_cache_hits() - hits
        self.rows_out = len(result)
        self.batches_out = 1
        self.executed = True
        return result


class SetOp(Operator):
    """UNION / MINUS / INTERSECT of two sub-plans (``QueryOp``)."""

    name = "SetOp"

    def __init__(self, op: str, left: Operator, right: Operator, **kw) -> None:
        kw.setdefault("label", op)
        super().__init__(None, **kw)
        self.op = op
        self.left = left
        self.right = right

    @property
    def children(self) -> List[Operator]:
        return [self.left, self.right]

    def result(self) -> QueryResult:
        left = self.left.result()
        right = self.right.result()
        started = time.perf_counter()
        if self.op == "union":
            combined = left.union(right)
        elif self.op == "minus":
            combined = left.minus(right)
        else:
            combined = left.intersect(right)
        self.wall_seconds += time.perf_counter() - started
        self.rows_in = len(left) + len(right)
        self.rows_out = len(combined)
        self.batches_out = 1
        self.executed = True
        return combined


# ----------------------------------------------------------------------
# lowering: statements -> operator trees
# ----------------------------------------------------------------------


class LowerSpec:
    """What the planner decided; everything the lowering rules consult.

    ``factored``     keep the stream factored (cost plan + hash joins)
                     instead of merging every batch at each operator.
    ``restrictions`` the per-variable instantiation sets the run will
                     pass to the evaluator (Theorem 6.1 ∩ index probes);
                     used to label scans when no plan entries exist.
    ``probe_vars``   FROM variables narrowed by an index probe.
    ``entries``      the cost plan's entries, aligned FROM-decls-first
                     then conjuncts-in-plan-order; they carry labels,
                     access paths, and estimated cardinalities.
    """

    def __init__(
        self,
        factored: bool = False,
        restrictions: Optional[Mapping[Variable, object]] = None,
        probe_vars: Optional[Set[Variable]] = None,
        entries: Sequence["PlanEntry"] = (),
    ) -> None:
        self.factored = factored
        self.restrictions = restrictions or {}
        self.probe_vars = probe_vars or set()
        self.entries = list(entries)


def _scan_class(
    decl: ast.FromDecl, spec: LowerSpec, entry: Optional["PlanEntry"]
) -> type:
    if entry is not None:
        if entry.access_path == "index-probe":
            return IndexProbe
        if entry.access_path == "restricted-range":
            return RestrictedScan
        return ExtentScan
    if decl.var in spec.probe_vars:
        return IndexProbe
    if decl.var in spec.restrictions:
        return RestrictedScan
    return ExtentScan


def _cond_class(cond: ast.Cond, factored: bool) -> type:
    if isinstance(cond, ast.PathCond):
        return PathEval
    if isinstance(cond, ast.SchemaCond):
        return Filter
    if isinstance(cond, ast.Comparison):
        if factored:
            strategy = join_strategy_of(cond)
            if strategy == "hash":
                return HashJoin
            if strategy == "semi":
                return SemiJoin
        if isinstance(cond.lhs, ast.AggOperand) or isinstance(
            cond.rhs, ast.AggOperand
        ):
            return Aggregate
        if cond.lq is not None or cond.rq is not None:
            return Quantify
        return Filter
    return NestedLoop


def _entry_kwargs(entry: Optional["PlanEntry"]) -> Dict[str, object]:
    if entry is None:
        return {}
    kwargs: Dict[str, object] = {
        "label": entry.label,
        "estimated_rows": entry.estimated_rows,
    }
    if entry.detail:
        kwargs["detail"] = entry.detail
    return kwargs


def lower_query(query: ast.Query, spec: LowerSpec) -> Operator:
    """Lower one plain query into an operator tree rooted at Project.

    A WHERE clause containing updates (§5) must interleave its side
    effects with the lazy left-to-right binding stream — projection
    included — so such queries lower to a single whole-statement
    :class:`NestedLoop` instead of a staged pipeline.
    """
    if query.where is not None and _cond_has_updates(query.where):
        return NestedLoop(
            statement=query,
            detail="WHERE contains updates: exact §5 stream",
        )
    merge_all = not spec.factored
    entries = spec.entries
    position = 0
    node: Optional[Operator] = None
    fused: Dict[Variable, ast.FromDecl] = {}
    for decl in query.from_:
        entry = entries[position] if position < len(entries) else None
        position += 1
        if (
            spec.factored
            and entry is not None
            and entry.access_path == "pointer-fused"
        ):
            # The cost plan fused this scan into a PointerJoin below;
            # remember the declaration so the join can admit (or, on
            # fallback, scan) exactly what this declaration would have.
            fused[decl.var] = decl
            continue
        scan_cls = _scan_class(decl, spec, entry)
        node = scan_cls(
            decl, node, merge_all=merge_all, **_entry_kwargs(entry)
        )
    if query.where is not None:
        conjuncts = (
            list(query.where.items)
            if isinstance(query.where, ast.AndCond)
            else [query.where]
        )
        for cond in conjuncts:
            entry = entries[position] if position < len(entries) else None
            position += 1
            if (
                spec.factored
                and entry is not None
                and entry.join_strategy == "pointer"
                and entry.pointer_var in fused
            ):
                node = PointerJoin(
                    cond,
                    node,
                    decl=fused.pop(entry.pointer_var),
                    direction=entry.pointer_direction or "forward",
                    merge_all=merge_all,
                    **_entry_kwargs(entry),
                )
                continue
            cond_cls = _cond_class(cond, spec.factored)
            node = cond_cls(
                cond, node, merge_all=merge_all, **_entry_kwargs(entry)
            )
    # Safety net: a fused declaration whose conjunct never lowered (a
    # plan/lowering mismatch) still gets its scan, so no variable is
    # ever silently left unbound.
    for decl in fused.values():
        node = ExtentScan(decl, node, merge_all=merge_all)
    return Project(query, node)


def lower_statement(
    statement: ast.Statement, spec: Optional[LowerSpec] = None
) -> Operator:
    """Lower a query or set-combination into its physical-operator tree."""
    if spec is None:
        spec = LowerSpec()
    if isinstance(statement, ast.QueryOp):
        return SetOp(
            statement.op,
            lower_statement(statement.left, spec),
            lower_statement(statement.right, spec),
        )
    assert isinstance(statement, ast.Query), statement
    return lower_query(statement, spec)


# ----------------------------------------------------------------------
# execution + introspection
# ----------------------------------------------------------------------


def execute(
    root: Operator,
    evaluator: Evaluator,
    metrics: Optional["SessionMetrics"] = None,
    *,
    batch_format: str = "rows",
    workers: int = 1,
) -> QueryResult:
    """Run an operator tree to completion and return its result table."""
    ctx = ExecContext(evaluator, metrics, batch_format, workers)
    root.open(ctx)
    try:
        return root.result()
    finally:
        root.close()


def pipeline_stages(root: Operator) -> List[Operator]:
    """Scan and conjunct operators in execution (deepest-first) order."""
    stages: List[Operator] = []

    def visit(op: Operator) -> None:
        for child in op.children:
            visit(child)
        if op.statement is not None:
            return  # a whole-statement root is not a pipeline stage
        if isinstance(op, (ScanOperator, CondOperator)):
            stages.append(op)

    visit(root)
    return stages


def stage_trace(root: Operator) -> List[int]:
    """Logical stream size after each stage — the explain() actuals."""
    return [op.rows_out for op in pipeline_stages(root) if op.executed]


def tree_dict(op: Operator) -> Dict[str, object]:
    """The instrumented tree as plain data (for JSON and the goldens)."""
    data: Dict[str, object] = {
        "operator": op.name,
        "label": op.label,
        "rows_in": op.rows_in,
        "rows_out": op.rows_out,
        "batches": op.batches_out,
        "rows_per_batch": (
            round(op.rows_out / op.batches_out, 1) if op.batches_out else 0.0
        ),
        "cache_hits": op.cache_hits,
        "time_ms": round(op.wall_seconds * 1000.0, 3),
    }
    if op.morsels:
        data["morsels"] = op.morsels
        data["workers"] = op.workers_used
    derefs = getattr(op, "derefs", 0)
    if derefs:
        data["derefs"] = derefs
        data["derefs_per_batch"] = (
            round(derefs / op.batches_out, 1)
            if op.batches_out
            else float(derefs)
        )
        data["direction"] = getattr(op, "direction", "forward")
    if op.detail:
        data["detail"] = op.detail
    if op.estimated_rows is not None:
        data["estimated_rows"] = round(op.estimated_rows, 1)
    kids = [tree_dict(child) for child in op.children]
    if kids:
        data["children"] = kids
    return data


def render_tree(data: Mapping[str, object], indent: int = 0) -> List[str]:
    """Render a :func:`tree_dict` snapshot as indented text lines."""
    est = (
        f" est={data['estimated_rows']:g}"
        if "estimated_rows" in data
        else ""
    )
    label = f" {data['label']}" if data.get("label") else ""
    morsels = (
        f"morsels={data['morsels']} workers={data['workers']} "
        if "morsels" in data
        else ""
    )
    derefs = (
        f"{data['direction']} derefs={data['derefs']} "
        f"derefs/batch={data['derefs_per_batch']:g} "
        if "derefs" in data
        else ""
    )
    line = (
        f"{'  ' * indent}{data['operator']}{label} "
        f"[{est.strip() + ' ' if est else ''}act={data['rows_out']} "
        f"in={data['rows_in']} batches={data['batches']} "
        f"rows/batch={data.get('rows_per_batch', 0):g} {morsels}{derefs}"
        f"cache_hits={data['cache_hits']} time={data['time_ms']}ms]"
    )
    lines = [line]
    detail = data.get("detail")
    if detail:
        lines.append(f"{'  ' * (indent + 1)}· {detail}")
    for child in data.get("children", ()):  # type: ignore[union-attr]
        lines.extend(render_tree(child, indent + 1))
    return lines
