"""The Session: the top-level XSQL interface.

A session owns an :class:`~repro.datamodel.store.ObjectStore`, the
id-function registry, and the view manager, and dispatches parsed
statements:

* plain queries → :class:`~repro.xsql.evaluator.Evaluator`;
* object-creating queries (``OID FUNCTION OF``) →
  :mod:`repro.views.creation` with a session-allocated id-function;
* ``CREATE VIEW`` → :class:`~repro.views.views.ViewManager`;
* ``ALTER CLASS ... ADD SIGNATURE ... SELECT`` →
  :func:`repro.xsql.ddl.install_query_method`;
* ``UPDATE CLASS`` / ``CREATE CLASS`` → direct execution.

``session.query(text)`` is the everyday call; ``session.naive(text)`` runs
the literal §3.4 semantics as an oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.datamodel.store import ObjectStore
from repro.errors import QueryError
from repro.oid import FuncOid, Oid, Value
from repro.views.creation import CreationOutcome, execute_creation
from repro.views.id_functions import IdFunctionRegistry
from repro.views.views import ViewDef, ViewManager
from repro.xsql import ast
from repro.xsql.ddl import install_query_method
from repro.xsql.evaluator import Evaluator, NaiveEvaluator
from repro.xsql.parser import parse_statement
from repro.xsql.result import QueryResult

__all__ = ["Session"]


class Session:
    """An XSQL session over one object store."""

    def __init__(
        self,
        store: Optional[ObjectStore] = None,
        max_path_var_length: int = 6,
    ) -> None:
        self.store = store if store is not None else ObjectStore()
        self.registry = IdFunctionRegistry()
        self.views = ViewManager(self.store, self.registry)
        self._max_path_var_length = max_path_var_length

    # ------------------------------------------------------------------
    # engines
    # ------------------------------------------------------------------

    def evaluator(self) -> Evaluator:
        return Evaluator(
            self.store,
            id_function_instances=self.registry.instances,
            max_path_var_length=self._max_path_var_length,
        )

    def naive_evaluator(self) -> NaiveEvaluator:
        return NaiveEvaluator(
            self.store, id_function_instances=self.registry.instances
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, source: str) -> QueryResult:
        """Parse and execute one XSQL statement; returns a result relation.

        DDL statements return a one-row status relation so scripts can be
        executed uniformly.
        """
        statement = parse_statement(source)
        return self._dispatch(statement)

    def execute_script(self, source: str) -> List[QueryResult]:
        """Execute a ``;``-separated script, returning all results."""
        results = []
        for chunk in source.split(";"):
            if chunk.strip():
                results.append(self.execute(chunk))
        return results

    def query(self, source: str, optimize: bool = False) -> QueryResult:
        """Execute a SELECT query (the common case).

        With ``optimize=True`` the untyped greedy planner reorders pure
        conjunctions by boundness before evaluation — semantics-neutral
        and schema-free, unlike the Theorem 6.1 typed optimizer.
        """
        if not optimize:
            return self.execute(source)
        statement = parse_statement(source)
        if isinstance(statement, ast.Query) and not statement.creates_objects:
            from repro.xsql.planner import GreedyPlanner

            statement = GreedyPlanner().reorder(statement)
            return self.evaluator().run(statement)
        return self._dispatch(statement)

    def naive(self, source: str) -> QueryResult:
        """Run a query under the literal §3.4 naive semantics (oracle)."""
        statement = parse_statement(source)
        if not isinstance(statement, ast.Query):
            raise QueryError("the naive oracle runs plain queries only")
        return self.naive_evaluator().run(statement)

    # ------------------------------------------------------------------

    def _dispatch(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, (ast.Query, ast.QueryOp)):
            if isinstance(statement, ast.Query) and statement.creates_objects:
                outcome = execute_creation(
                    self.evaluator(),
                    statement,
                    functor=self.registry.fresh_functor(),
                    registry=self.registry,
                )
                return self._creation_result(outcome)
            return self.evaluator().run(statement)
        if isinstance(statement, ast.CreateView):
            view = self.views.create_view(statement, self.evaluator())
            return self._creation_result(view.outcome)
        if isinstance(statement, ast.CreateClass):
            self.store.declare_class(
                statement.name, list(statement.superclasses)
            )
            for sig in statement.signatures:
                self.store.declare_signature(
                    statement.name,
                    sig.method,
                    sig.result,
                    args=sig.args,
                    set_valued=sig.set_valued,
                )
            return _status(f"class {statement.name} created")
        if isinstance(statement, ast.AlterClass):
            install_query_method(self.store, statement, self.registry)
            return _status(
                f"method {statement.signature.method} added to "
                f"{statement.cls}"
            )
        if isinstance(statement, ast.UpdateClass):
            self.evaluator().execute_update(statement)
            return _status(f"class {statement.cls} updated")
        if isinstance(statement, ast.CreateRelation):
            self.store.declare_relation(
                statement.name, list(statement.columns)
            )
            return _status(f"relation {statement.name} created")
        if isinstance(statement, ast.InsertInto):
            return self._insert_into(statement)
        raise QueryError(f"unsupported statement {statement!r}")

    def _insert_into(self, statement: ast.InsertInto) -> QueryResult:
        """INSERT INTO a first-class relation (from VALUES or a query)."""
        relation = self.store.relation(statement.name)
        if statement.query is not None:
            result = self.evaluator().run(statement.query)
            if len(result.columns) != relation.arity:
                raise QueryError(
                    f"relation {statement.name} has arity "
                    f"{relation.arity}; the query produces "
                    f"{len(result.columns)} columns"
                )
            rows = list(result.rows())
        else:
            rows = list(statement.rows)
        for row in rows:
            self.store.insert_tuple(statement.name, row)
        return _status(f"{len(rows)} row(s) inserted into {statement.name}")

    @staticmethod
    def _creation_result(outcome: CreationOutcome) -> QueryResult:
        return QueryResult(
            columns=["oid"],
            rows=[(oid,) for oid in outcome.created],
            created=list(outcome.created),
        )

    # ------------------------------------------------------------------
    # snapshots (poor man's transactions over the serialized state)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the stored database state (schema + data + relations).

        The paper's model has no transactions; snapshots give scripts and
        tests a checkpoint/rollback primitive.  Computed method
        implementations are not captured (see
        :mod:`repro.datamodel.serialize`) and survive a restore untouched
        only if re-installed by the caller.
        """
        from repro.datamodel.serialize import store_to_dict

        payload, _report = store_to_dict(self.store)
        return payload

    def restore(self, payload: dict) -> None:
        """Replace the session's database with a snapshot's contents."""
        from repro.datamodel.serialize import store_from_dict

        self.store = store_from_dict(payload)
        self.views = ViewManager(self.store, self.registry)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def explain(self, source: str) -> str:
        """A readable account of how a query would be type-checked and run.

        Reports the parsed form, the §6.2 typing discipline with the
        witnessing assignment and coherent plan (when one exists), and the
        per-variable instantiation-set sizes the Theorem 6.1 optimizer
        would use.
        """
        from repro.typing import TypedEvaluator, analyze

        statement = parse_statement(source)
        if not isinstance(statement, ast.Query):
            return f"statement: {statement}"
        lines = [f"query: {statement}"]
        report = analyze(statement, self.store)
        lines.append(f"typing: {report.discipline()}")
        if report.strict_witness is not None:
            assignment, plan = report.strict_witness
            lines.append(f"coherent plan: {plan}")
            for occ, expr in assignment.entries:
                lines.append(f"  {occ} : {expr}")
            optimizer = TypedEvaluator(
                self.store, id_function_instances=self.registry.instances
            )
            restrictions = optimizer.extent_restrictions(
                assignment, report.typed_query, statement
            )
            for var, allowed in sorted(
                restrictions.items(), key=lambda kv: kv[0].name
            ):
                lines.append(
                    f"  instantiations of {var}: {len(allowed)} oid(s)"
                )
        elif report.unsupported_reason:
            lines.append(f"note: {report.unsupported_reason}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # view conveniences (§4.2)
    # ------------------------------------------------------------------

    def refresh_view(self, name: str) -> ViewDef:
        return self.views.refresh(name, self.evaluator())

    def update_view(
        self, name: str, attr: str, new_values: Dict[FuncOid, Oid]
    ) -> int:
        return self.views.update_through_view(
            name, attr, new_values, self.evaluator()
        )


def _status(message: str) -> QueryResult:
    return QueryResult(columns=["status"], rows=[(Value(message),)])
