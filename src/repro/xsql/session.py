"""The Session: the top-level XSQL interface.

A session owns an :class:`~repro.datamodel.store.ObjectStore`, the
id-function registry, the view manager, the per-session metrics
collector, and the staged query pipeline
(:mod:`repro.xsql.pipeline`), and dispatches parsed statements:

* plain queries → :class:`~repro.xsql.evaluator.Evaluator`;
* object-creating queries (``OID FUNCTION OF``) →
  :mod:`repro.views.creation` with a session-allocated id-function;
* ``CREATE VIEW`` → :class:`~repro.views.views.ViewManager`;
* ``ALTER CLASS ... ADD SIGNATURE ... SELECT`` →
  :func:`repro.xsql.ddl.install_query_method`;
* ``UPDATE CLASS`` / ``CREATE CLASS`` → direct execution.

The everyday calls::

    session.query(text)                          # parse + plan + run
    session.query(text, plan="greedy")           # untyped boundness planner
    session.query(text, plan="typed")            # Theorem 6.1 optimizer
    session.query(text, engine="naive")          # literal §3.4 semantics
    compiled = session.prepare(text)             # compile once ...
    compiled.run(); compiled.run()               # ... run many times
    session.stats()                              # pipeline metrics snapshot

Persistence is a session lifecycle (:mod:`repro.storage`)::

    session = Session.open("company.db")         # recover or create
    session.query("SELECT ...")                  # writes hit the WAL
    session.checkpoint()                         # compact + durable point
    session.close()                              # flush and release

``Session.snapshot()``/``restore()`` and the JSON
``save_store``/``load_store`` remain as thin deprecated aliases of the
same machinery (see the migration table in ``docs/LANGUAGE.md``).

The pre-pipeline spellings ``session.query(text, optimize=True)`` and
``session.naive(text)`` have been removed; use ``plan="greedy"`` /
``engine="naive"`` (see the migration table in ``docs/LANGUAGE.md``).

Snapshot isolation (``docs/MVCC.md``)::

    with session.snapshot_view() as snap:    # pin the current version
        snap.query("SELECT ...")             # reads at the pin, always
        session.query("UPDATE CLASS ...")    # writers never block it

``snapshot_view()`` returns a :class:`SnapshotSession` — a full Session
over a read-only :class:`~repro.datamodel.versions.StoreView`; and
:class:`ConcurrentSession` multiplexes snapshot-isolated reader threads
over one live store.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.datamodel.store import ObjectStore
from repro.errors import QueryError
from repro.metrics import SessionMetrics
from repro.oid import FuncOid, Oid, Value, Variable
from repro.views.creation import CreationOutcome, execute_creation
from repro.views.id_functions import IdFunctionRegistry
from repro.views.views import ViewDef, ViewManager
from repro.xsql import ast
from repro.xsql.ddl import install_query_method
from repro.xsql.evaluator import Evaluator, NaiveEvaluator
from repro.xsql.lexer import split_statements
from repro.xsql.options import ExecutionOptions
from repro.xsql.paths import PathWalker
from repro.xsql.pipeline import CompiledQuery, QueryPipeline
from repro.xsql.result import QueryResult

__all__ = ["Session", "SnapshotSession", "ConcurrentSession"]

#: How many restriction-distinct session-persistent walkers to retain.
_WALKER_CACHE_SIZE = 8


class Session:
    """An XSQL session over one object store."""

    def __init__(
        self,
        store: Optional[ObjectStore] = None,
        max_path_var_length: int = 6,
        statement_cache_size: int = 128,
        storage=None,
    ) -> None:
        self.store = store if store is not None else ObjectStore()
        self.registry = IdFunctionRegistry()
        self.views = ViewManager(self.store, self.registry)
        self._max_path_var_length = max_path_var_length
        self._index_mode = "auto"
        self._join_mode = "hash"
        self.metrics = SessionMetrics()
        self.pipeline = QueryPipeline(self, cache_size=statement_cache_size)
        # Session-persistent walkers for columnar execution, keyed by
        # the run's restriction content.  Their generation-stamped
        # caches (path values + the operator memo) survive across runs,
        # which is where the columnar warm-run speedup comes from.
        self._columnar_walkers: (
            "OrderedDict[Optional[Tuple], PathWalker]"
        ) = OrderedDict()
        #: Storage lifecycle state (:meth:`open` / :meth:`checkpoint` /
        #: :meth:`close`).  ``None`` engine means the historical dict
        #: backend — the store's write path stays engine-free.
        self._storage_options = None
        self._engine = None
        if storage is not None:
            self.attach_storage(storage)

    # ------------------------------------------------------------------
    # engines
    # ------------------------------------------------------------------

    def evaluator(self) -> Evaluator:
        return Evaluator(
            self.store,
            id_function_instances=self.registry.instances,
            max_path_var_length=self._max_path_var_length,
            metrics=self.metrics,
        )

    def naive_evaluator(self) -> NaiveEvaluator:
        return NaiveEvaluator(
            self.store, id_function_instances=self.registry.instances
        )

    def columnar_evaluator(
        self,
        restrictions: Optional[Dict[Variable, FrozenSet[Oid]]] = None,
    ) -> Evaluator:
        """An evaluator sharing the session-persistent columnar walker.

        Walkers are cached per restriction content (the Theorem 6.1 /
        index instantiation sets differ between plans and replanning),
        LRU-capped at :data:`_WALKER_CACHE_SIZE`.  Staleness is handled
        inside the walker: every cache it holds is stamped with the
        store's (schema, statistics) generation pair, so a shared walker
        never serves results from before a write.
        """
        token: Optional[Tuple] = None
        if restrictions:
            token = tuple(
                sorted(
                    (
                        ((var.name, var.sort.value), allowed)
                        for var, allowed in restrictions.items()
                    ),
                    key=lambda item: item[0],
                )
            )
        walker = self._columnar_walkers.get(token)
        if walker is None:
            walker = PathWalker(
                self.store,
                max_path_var_length=self._max_path_var_length,
                id_function_instances=self.registry.instances,
                restrictions=restrictions,
                metrics=self.metrics,
            )
            self._columnar_walkers[token] = walker
            if len(self._columnar_walkers) > _WALKER_CACHE_SIZE:
                self._columnar_walkers.popitem(last=False)
        else:
            self._columnar_walkers.move_to_end(token)
        return Evaluator(
            self.store,
            id_function_instances=self.registry.instances,
            max_path_var_length=self._max_path_var_length,
            restrictions=restrictions,
            metrics=self.metrics,
            walker=walker,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def prepare(
        self,
        source: str,
        *,
        options: Optional[ExecutionOptions] = None,
        plan: Optional[str] = None,
        engine: Optional[str] = None,
        join_mode: Optional[str] = None,
        batch_format: Optional[str] = None,
        workers: Optional[int] = None,
        pointer_join: Optional[str] = None,
    ) -> CompiledQuery:
        """Compile one statement through the pipeline, without running it.

        Execution knobs arrive either as one
        :class:`~repro.xsql.options.ExecutionOptions` record
        (``options=``) or as the historical loose kwargs (``plan=``,
        ``engine=``, ``join_mode=``, ``batch_format=``, ``workers=``,
        ``pointer_join=``) —
        the kwargs are thin aliases that override fields of the record.

        The returned :class:`~repro.xsql.pipeline.CompiledQuery` is
        re-runnable (``compiled.run()``) and inspectable
        (``compiled.explain()``); re-runs skip parsing, typing, and
        planning.  Compilations are memoized in the session's LRU
        statement cache, keyed on the frozen options tuple, and
        transparently refreshed when DDL bumps the store's schema
        generation.
        """
        resolved = ExecutionOptions.coerce(
            options,
            plan=plan,
            engine=engine,
            join_mode=join_mode,
            batch_format=batch_format,
            workers=workers,
            pointer_join=pointer_join,
        )
        self.metrics.begin_statement()
        return self.pipeline.compile(source, options=resolved)

    def query(
        self,
        source: str,
        *,
        options: Optional[ExecutionOptions] = None,
        plan: Optional[str] = None,
        engine: Optional[str] = None,
        join_mode: Optional[str] = None,
        batch_format: Optional[str] = None,
        workers: Optional[int] = None,
        pointer_join: Optional[str] = None,
    ) -> QueryResult:
        """Execute a SELECT query (the common case).

        ``plan`` selects the conjunct planner: ``"none"`` (source order),
        ``"greedy"`` (untyped boundness reorder), ``"typed"`` (the
        Theorem 6.1 coherent plan + extent restrictions, falling back to
        greedy outside the strictly well-typed fragment), or ``"cost"``
        (the statistics-driven optimizer).  ``engine`` selects
        ``"reference"`` (the binding-stream evaluator) or ``"naive"``
        (the literal §3.4 enumerate-all-substitutions semantics).
        ``join_mode``, ``batch_format``, ``workers``, and
        ``pointer_join`` tune the reference executor; pass
        ``options=ExecutionOptions(...)`` to set everything at once (see
        :meth:`prepare`).
        """
        resolved = ExecutionOptions.coerce(
            options,
            plan=plan,
            engine=engine,
            join_mode=join_mode,
            batch_format=batch_format,
            workers=workers,
            pointer_join=pointer_join,
        )
        self.metrics.begin_statement()
        compiled = self.pipeline.compile(source, options=resolved)
        return self.pipeline.execute(compiled)

    def execute(self, source: str) -> QueryResult:
        """Parse and execute one XSQL statement; returns a result relation.

        DDL statements return a one-row status relation so scripts can be
        executed uniformly.  Equivalent to ``query(source)``; kept as the
        statement-oriented name scripts and the REPL use.
        """
        return self.query(source)

    def execute_script(self, source: str) -> List[QueryResult]:
        """Execute a ``;``-separated script, returning all results.

        Statements are split with the lexer's token scan
        (:func:`repro.xsql.lexer.split_statements`), so semicolons inside
        string literals and ``--`` comments do not terminate a statement.
        """
        return [self.execute(chunk) for chunk in split_statements(source)]

    def stats(self) -> Dict[str, Dict]:
        """A JSON-friendly snapshot of the session's pipeline metrics."""
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # versions and snapshots (MVCC)
    # ------------------------------------------------------------------

    @property
    def version(self):
        """The store's current :class:`~repro.datamodel.versions.Version`."""
        return self.store.version

    def version_status(self) -> Dict[str, int]:
        """Pins and copy-on-write chain statistics (REPL ``.snapshot``)."""
        return self.store.version_status()

    def snapshot_view(self) -> "SnapshotSession":
        """Pin the current version and return a read-only session at it.

        The returned :class:`SnapshotSession` keeps answering queries
        against the pinned state no matter how many mutations commit on
        this session afterwards; writers never block it.  Close it (or
        use it as a context manager) to release the pin so the store can
        garbage-collect the copy-on-write chains.
        """
        return SnapshotSession(self)

    # ------------------------------------------------------------------

    def _dispatch(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, (ast.Query, ast.QueryOp)):
            if isinstance(statement, ast.Query) and statement.creates_objects:
                outcome = execute_creation(
                    self.evaluator(),
                    statement,
                    functor=self.registry.fresh_functor(),
                    registry=self.registry,
                )
                return self._creation_result(outcome)
            return self.evaluator().run(statement)
        if isinstance(statement, ast.CreateView):
            view = self.views.create_view(statement, self.evaluator())
            return self._creation_result(view.outcome)
        if isinstance(statement, ast.CreateClass):
            self.store.declare_class(
                statement.name, list(statement.superclasses)
            )
            for sig in statement.signatures:
                self.store.declare_signature(
                    statement.name,
                    sig.method,
                    sig.result,
                    args=sig.args,
                    set_valued=sig.set_valued,
                )
            return _status(f"class {statement.name} created")
        if isinstance(statement, ast.AlterClass):
            install_query_method(self.store, statement, self.registry)
            return _status(
                f"method {statement.signature.method} added to "
                f"{statement.cls}"
            )
        if isinstance(statement, ast.UpdateClass):
            self.evaluator().execute_update(statement)
            return _status(f"class {statement.cls} updated")
        if isinstance(statement, ast.CreateRelation):
            self.store.declare_relation(
                statement.name, list(statement.columns)
            )
            return _status(f"relation {statement.name} created")
        if isinstance(statement, ast.InsertInto):
            return self._insert_into(statement)
        raise QueryError(f"unsupported statement {statement!r}")

    def _insert_into(self, statement: ast.InsertInto) -> QueryResult:
        """INSERT INTO a first-class relation (from VALUES or a query)."""
        relation = self.store.relation(statement.name)
        if statement.query is not None:
            result = self.evaluator().run(statement.query)
            if len(result.columns) != relation.arity:
                raise QueryError(
                    f"relation {statement.name} has arity "
                    f"{relation.arity}; the query produces "
                    f"{len(result.columns)} columns"
                )
            rows = list(result.rows())
        else:
            rows = list(statement.rows)
        for row in rows:
            self.store.insert_tuple(statement.name, row)
        return _status(f"{len(rows)} row(s) inserted into {statement.name}")

    @staticmethod
    def _creation_result(outcome: CreationOutcome) -> QueryResult:
        return QueryResult(
            columns=["oid"],
            rows=[(oid,) for oid in outcome.created],
            created=list(outcome.created),
        )

    # ------------------------------------------------------------------
    # storage lifecycle (open / checkpoint / close)
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: Optional[str] = None,
        *,
        engine=None,
        storage=None,
        sync: Optional[str] = None,
        **session_kwargs,
    ) -> "Session":
        """Open a session against a storage backend.

        The redesigned persistence entry point (successor of
        ``save_store``/``load_store`` and ``snapshot()``/``restore()``)::

            Session.open()                     # dict backend, no disk
            Session.open("company.db")         # WAL-backed log engine
            Session.open(engine="memory")      # KV mirror, no disk
            Session.open("s.json", engine="dict")   # JSON checkpoints

        ``engine`` is a backend name from
        :data:`repro.storage.BACKENDS`, an already-constructed
        :class:`~repro.storage.StorageEngine` (adopted as-is), or
        ``None`` (``"log"`` when *path* is given, else ``"dict"``).
        Alternatively pass a full
        :class:`~repro.storage.StorageOptions` as ``storage=``.

        If the backend already holds data (a WAL/checkpoint to recover,
        an existing JSON snapshot), the session adopts that state;
        otherwise the engine is seeded from the fresh store.  Remaining
        kwargs go to the :class:`Session` constructor.
        """
        from repro.storage import StorageEngine, StorageOptions

        session = cls(**session_kwargs)
        if isinstance(engine, StorageEngine):
            engine_path = path or getattr(engine, "root", None)
            options = StorageOptions(
                backend="log" if engine_path else "memory",
                path=str(engine_path) if engine_path else None,
                sync=getattr(engine, "sync_mode", None)
                or sync
                or "checkpoint",
            )
            session.attach_storage(options, engine_obj=engine)
            return session
        if storage is None:
            backend = engine if engine is not None else (
                "log" if path else "dict"
            )
            storage = StorageOptions.coerce(
                StorageOptions(backend=backend), path=path, sync=sync
            )
        session.attach_storage(storage)
        return session

    def attach_storage(self, options, engine_obj=None) -> None:
        """Attach a storage backend to this (possibly live) session.

        The workhorse behind :meth:`open` and the REPL's ``.open``: a
        previously attached engine is closed first; then, if the new
        backend already holds data, the session adopts it (replacing the
        current store), otherwise the backend is seeded from the current
        store — so ``.open`` on an empty target carries the database
        over, and on a populated one switches to it.
        """
        import os

        from repro.storage import StoreJournal, encode_store, make_engine

        options = options.validate()
        if self._engine is not None:
            self.close()
        self._storage_options = options
        engine = engine_obj if engine_obj is not None else make_engine(
            options
        )
        self._engine = engine
        if engine is None:
            # Historical dict backend: an existing JSON snapshot at the
            # path is the state to adopt; otherwise start empty.
            if options.path and os.path.exists(options.path):
                from repro.datamodel.serialize import load_store

                self.replace_store(load_store(options.path))
            return
        if len(engine):
            # The engine holds recovered state: it is the truth.
            self._adopt_engine_state()
        else:
            # Fresh engine: seed it from the (possibly pre-populated)
            # store so the mirror is complete from the first commit.
            encode_store(self.store, engine)
            self.store.set_journal(StoreJournal(engine, self.store))

    def _adopt_engine_state(self) -> None:
        """Replace the session's store with the engine's decoded state."""
        from repro.storage import StoreJournal, decode_store

        store = decode_store(self._engine)
        engine, self._engine = self._engine, None
        try:
            # replace_store must not re-seed the engine we are adopting
            # from, so it runs detached.
            self.replace_store(store)
        finally:
            self._engine = engine
        self.store.set_journal(StoreJournal(engine, self.store))

    def checkpoint(self):
        """Persist the current state at a durable point.

        * ``log`` backend — fold the WAL into the checkpoint image and
          start a fresh log; returns the resulting
          :class:`~repro.storage.CommitStamp`.
        * ``memory`` backend — nothing to persist; returns the engine's
          last commit stamp.
        * ``dict`` backend with a path — write the JSON snapshot there
          (the ``save_store`` format); returns its
          :class:`~repro.datamodel.serialize.SerializationReport`.
        * ``dict`` backend without a path — returns the snapshot
          payload dict (exactly :meth:`snapshot`).
        """
        if self._engine is not None:
            return self._engine.checkpoint()
        if self._storage_options is not None and self._storage_options.path:
            from repro.datamodel.serialize import save_store

            return save_store(self.store, self._storage_options.path)
        return self.snapshot()

    def close(self) -> None:
        """Flush and release the storage backend (idempotent).

        The session remains usable afterwards as a plain dict-backed
        session; further writes are no longer mirrored or logged.
        """
        if self._engine is not None:
            self.store.set_journal(None)
            self._engine.close()
            self._engine = None

    @property
    def storage_options(self):
        """The session's :class:`~repro.storage.StorageOptions`
        (a default dict-backend record when never opened)."""
        if self._storage_options is None:
            from repro.storage import StorageOptions

            return StorageOptions()
        return self._storage_options

    @property
    def storage_engine(self):
        """The attached :class:`~repro.storage.StorageEngine`, or None."""
        return self._engine

    def storage_status(self) -> dict:
        """A JSON-friendly snapshot of the storage backend (``.storage``)."""
        options = self.storage_options
        status = {
            "backend": options.backend,
            "path": options.path,
        }
        if self._engine is not None:
            status.update(self._engine.status())
            journal = self.store.journal
            if journal is not None:
                status["batches_committed"] = journal.batches_committed
        return status

    # ------------------------------------------------------------------
    # snapshots (poor man's transactions over the serialized state)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the stored database state (schema + data + relations).

        .. deprecated::
            Kept as a thin, warning-free alias; prefer the storage
            lifecycle — :meth:`open` / :meth:`checkpoint` /
            :meth:`close` — which adds incremental writes, WAL
            durability, and crash recovery (``docs/LANGUAGE.md`` has the
            migration table).

        The paper's model has no transactions; snapshots give scripts and
        tests a checkpoint/rollback primitive.  Computed method
        implementations are not captured (see
        :mod:`repro.datamodel.serialize`) and survive a restore untouched
        only if re-installed by the caller.
        """
        from repro.datamodel.serialize import store_to_dict

        payload, _report = store_to_dict(self.store)
        return payload

    def restore(self, payload: dict) -> None:
        """Replace the session's database with a snapshot's contents.

        .. deprecated::
            Kept as a thin, warning-free alias; prefer
            :meth:`open`-ing the saved state (see :meth:`snapshot`).

        The id-function registry is rebuilt from the restored object
        graph (not carried over from the pre-snapshot session), so ad-hoc
        functor allocation resumes past every restored ``qfN`` instead of
        colliding with it.
        """
        from repro.datamodel.serialize import store_from_dict

        self.replace_store(store_from_dict(payload))

    def replace_store(self, store: ObjectStore) -> None:
        """Swap in a different store, resetting store-derived state.

        Rebuilds the id-function registry and the view manager from the
        new store and drops every cached compilation (cached typing and
        plans refer to the old schema).  Indexes enabled on the outgoing
        store are re-enabled (back-filled) on the new one, so a
        ``restore`` does not silently downgrade indexed lookups to scans.

        With a storage engine attached, the engine is reset and
        re-seeded from the incoming store in one batch, and the journal
        moves over — the swap is itself a recoverable event.
        """
        carried = list(self.store.indexed_methods())
        self.store.set_journal(None)
        self.store = store
        if self._engine is not None:
            from repro.storage import StoreJournal, WriteBatch, encode_store

            reset = WriteBatch()
            reset.delete_range(b"\x00", b"\xff")
            self._engine.apply(reset)
            encode_store(store, self._engine)
            store.set_journal(StoreJournal(self._engine, store))
        for method in carried:
            if not store.is_indexed(method):
                store.enable_index(method)
        self.registry = IdFunctionRegistry.rebuild_from_store(store)
        self.views = ViewManager(self.store, self.registry)
        self.pipeline.clear()
        # Persistent columnar walkers hold a reference to the old store.
        self._columnar_walkers.clear()

    # ------------------------------------------------------------------
    # indexes (the public API; the raw ``store.indexes`` registry
    # accessor has been removed)
    # ------------------------------------------------------------------

    @property
    def index_mode(self) -> str:
        """How the cost planner treats inverted indexes.

        ``"auto"`` (default) lets ``plan="cost"`` enable an index when
        the estimated scan savings clear its payoff threshold;
        ``"manual"`` uses only indexes enabled explicitly; ``"off"``
        forbids index probes altogether (extent scans only).
        """
        return self._index_mode

    @index_mode.setter
    def index_mode(self, mode: str) -> None:
        if mode not in ("auto", "manual", "off"):
            raise QueryError(
                f"unknown index mode {mode!r}; choose auto, manual, or off"
            )
        if mode != self._index_mode:
            self._index_mode = mode
            # Cached cost plans embed probe/auto-enable decisions made
            # under the old policy.
            self.pipeline.clear()

    @property
    def join_mode(self) -> str:
        """How ``plan="cost"`` executes its ordered conjuncts.

        ``"hash"`` (default) runs the factored set-at-a-time operator
        pipeline (:mod:`repro.xsql.operators`): equality conjuncts
        between disjoint path operands become
        :class:`~repro.xsql.operators.HashJoin` /
        :class:`~repro.xsql.operators.SemiJoin` operators (and, when
        pointer fusion applies, :class:`~repro.xsql.operators.PointerJoin`).
        ``"nested"`` keeps the tuple-at-a-time nested-loop evaluator.
        Results are identical either way; only the execution strategy
        changes.
        """
        return self._join_mode

    @join_mode.setter
    def join_mode(self, mode: str) -> None:
        if mode not in ("hash", "nested"):
            raise QueryError(
                f"unknown join mode {mode!r}; choose hash or nested"
            )
        if mode != self._join_mode:
            self._join_mode = mode
            # Cached compilations captured the old executor choice.
            self.pipeline.clear()

    def enable_index(self, method: Union[str, Oid]) -> None:
        """Build (or keep) an inverted index on *method*'s stored cells."""
        self.store.enable_index(method)

    def disable_index(self, method: Union[str, Oid]) -> None:
        """Drop the inverted index on *method*, if one exists."""
        self.store.disable_index(method)

    def indexes(self) -> List[str]:
        """The names of the currently indexed methods, sorted."""
        return sorted(m.name for m in self.store.indexed_methods())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def explain(
        self,
        source: str,
        *,
        options: Optional[ExecutionOptions] = None,
        plan: Optional[str] = None,
        join_mode: Optional[str] = None,
        batch_format: Optional[str] = None,
        workers: Optional[int] = None,
        pointer_join: Optional[str] = None,
        format: str = "text",
        analyze: bool = False,
    ) -> str:
        """A readable account of how a query would be type-checked and run.

        Delegates to :meth:`repro.xsql.pipeline.CompiledQuery.explain` on
        the compiled statement.  ``analyze=True`` executes the query and
        includes the instrumented physical-operator tree (per-operator
        estimated vs actual rows, batches, rows per batch, cache hits,
        morsel/worker counts, wall time).
        """
        return self.prepare(
            source,
            options=options,
            plan=plan,
            join_mode=join_mode,
            batch_format=batch_format,
            workers=workers,
            pointer_join=pointer_join,
        ).explain(format=format, analyze=analyze)

    # ------------------------------------------------------------------
    # view conveniences (§4.2)
    # ------------------------------------------------------------------

    def sync_views(self) -> List[Dict[str, object]]:
        """Bring stale materialized views up to date (lazy maintenance).

        The pipeline calls this before every statement execution; it is
        a cheap no-op while no view is stale.  Returns one event dict
        per maintained view (kind, groups touched, wall seconds).
        """
        if not self.views.pending():
            return []
        return self.views.sync(self.evaluator())

    def refresh_view(self, name: str) -> ViewDef:
        return self.views.refresh(name, self.evaluator())

    def update_view(
        self, name: str, attr: str, new_values: Dict[FuncOid, Oid]
    ) -> int:
        return self.views.update_through_view(
            name, attr, new_values, self.evaluator()
        )


class SnapshotSession(Session):
    """A session pinned to one committed version of another session's store.

    Everything read-only works exactly as on the base session — queries,
    prepare/run, explain, stats — but every read sees the database as of
    the pin, even while the base session commits mutations concurrently.
    Statements that would write (UPDATE CLASS, DDL, object creation)
    raise :class:`~repro.errors.SnapshotReadOnlyError`.

    The id-function registry is shared with the base session so view
    objects (:class:`~repro.oid.FuncOid` ids minted by CREATE VIEW)
    resolve identically at the pinned state.
    """

    def __init__(self, base: Session) -> None:
        view = base.store.snapshot_view()
        super().__init__(
            store=view,
            max_path_var_length=base._max_path_var_length,
        )
        self.registry = base.registry
        self.views = ViewManager(self.store, self.registry)
        self._join_mode = base._join_mode
        self._base = base

    def close(self) -> None:
        """Release the pin (idempotent); the snapshot must not be used after."""
        super().close()
        self.store.release()

    @property
    def pinned(self) -> bool:
        return self.store.pinned

    def __enter__(self) -> "SnapshotSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ConcurrentSession:
    """Snapshot-isolated concurrent readers over one live session.

    A thin multiplexer: :meth:`snapshot` hands each reader thread its
    own pinned :class:`SnapshotSession`, and :meth:`run_concurrently`
    does the fan-out/fan-in for the common run-these-queries case.  The
    base session remains the single writer; because pinned readers take
    no locks, a writer committing thousands of mutations never blocks
    them (and vice versa — readers never delay a commit).
    """

    def __init__(self, base: Session) -> None:
        self.base = base

    def snapshot(self) -> SnapshotSession:
        """A new pinned read-only session (caller closes it)."""
        return self.base.snapshot_view()

    def run_concurrently(
        self,
        queries: Sequence[str],
        workers: int = 4,
        **query_kwargs,
    ) -> List[Tuple["object", QueryResult]]:
        """Run each query on its own snapshot across *workers* threads.

        Returns ``[(version, result), ...]`` in query order: the version
        each query was pinned at and its result.  Snapshots are pinned
        at task start, so queries submitted while the base session is
        writing observe whichever versions were current when their turn
        came — each one internally consistent.
        """
        from concurrent.futures import ThreadPoolExecutor

        def run_one(source: str):
            with self.base.snapshot_view() as snap:
                return snap.version, snap.query(source, **query_kwargs)

        if not queries:
            return []
        with ThreadPoolExecutor(max_workers=max(1, workers)) as pool:
            return list(pool.map(run_one, queries))


def _status(message: str) -> QueryResult:
    return QueryResult(columns=["status"], rows=[(Value(message),)])
