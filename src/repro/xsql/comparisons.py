"""Quantified comparisons over path-expression values (paper §3.2).

"Since path expressions represent sets, these comparators may have to be
modified with the quantifiers ``some`` or ``all``."  A comparison
``L lq-op-rq R`` holds iff

    Q_l x in value(L) . Q_r y in value(R) . x op y

where a missing quantifier defaults to ``some`` — on singleton values (the
common case the paper leaves unquantified) ``some`` and ``all`` coincide.
``all`` over an empty set is vacuously true, which is exactly the reading
query (13) relies on ("a set that contains only numerals greater than
$200,000" — an empty set qualifies); ``some`` over an empty set is false.

Set comparators ``contains``/``containsEq``/``subset``/``subsetEq`` compare
the two values as whole sets.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional

from repro.errors import QueryError
from repro.oid import Oid, Value

__all__ = ["compare", "element_compare", "ELEMENT_OPS", "SET_OPS"]


def _numeric(term: Oid) -> Optional[float]:
    if isinstance(term, Value) and isinstance(term.value, (int, float)):
        if isinstance(term.value, bool):
            return None
        return float(term.value)
    return None


def _text(term: Oid) -> Optional[str]:
    if isinstance(term, Value) and isinstance(term.value, str):
        return term.value
    return None


def element_compare(op: str, left: Oid, right: Oid) -> bool:
    """Compare two objects with one elementary comparator.

    Equality is oid equality (the language "manipulates objects, and not
    the values they encapsulate" — but literal objects *are* their values,
    so ``Value(20) == Value(20)``).  Ordering comparators apply to pairs of
    numerals or pairs of strings; an incomparable pair simply fails the
    comparison, matching the metalogical treatment of typing in §6.2 (an
    ill-typed comparison yields no answers rather than a crash).
    """
    if op == "=":
        ln, rn = _numeric(left), _numeric(right)
        if ln is not None and rn is not None:
            return ln == rn
        return left == right
    if op == "!=":
        return not element_compare("=", left, right)
    ln, rn = _numeric(left), _numeric(right)
    if ln is not None and rn is not None:
        lv, rv = ln, rn
    else:
        ls, rs = _text(left), _text(right)
        if ls is None or rs is None:
            return False
        lv, rv = ls, rs  # type: ignore[assignment]
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    if op == ">=":
        return lv >= rv
    raise QueryError(f"unknown comparator {op!r}")


ELEMENT_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})
SET_OPS: Dict[str, Callable[[FrozenSet[Oid], FrozenSet[Oid]], bool]] = {
    "contains": lambda l, r: l > r,
    "containsEq": lambda l, r: l >= r,
    "subset": lambda l, r: l < r,
    "subsetEq": lambda l, r: l <= r,
}


def compare(
    op: str,
    left: FrozenSet[Oid],
    right: FrozenSet[Oid],
    lq: Optional[str] = None,
    rq: Optional[str] = None,
) -> bool:
    """Evaluate a (possibly quantified) comparison of two value sets."""
    if op in SET_OPS:
        return SET_OPS[op](left, right)
    if op not in ELEMENT_OPS:
        raise QueryError(f"unknown comparator {op!r}")
    lq = lq or "some"
    rq = rq or "some"
    # Vacuous truth (§3.3): an ``all``-quantified side over an empty set
    # holds for every candidate, and a ``some``-quantified side over an
    # empty set never does.  The explicit early returns pin the semantics
    # query (13) relies on instead of leaving it to Python's all()/any()
    # on empty iterables.
    if not left:
        return lq == "all"
    if not right:
        return rq == "all"

    def right_holds(x: Oid) -> bool:
        if rq == "all":
            return all(element_compare(op, x, y) for y in right)
        return any(element_compare(op, x, y) for y in right)

    if lq == "all":
        return all(right_holds(x) for x in left)
    return any(right_holds(x) for x in left)
