"""Query-defined and update methods (paper §5).

``ALTER CLASS C ADD SIGNATURE M : A1, ..., Ak => R SELECT (M @ args) = value
... OID X WHERE ...`` extends class ``C`` with a new method whose
implementation *is* the query: invoking ``M`` on object ``o`` with
arguments ``a1..ak`` binds ``X = o``, unifies the argument patterns, runs
the query's FROM/WHERE, and returns the values of the SELECT expression.
Side effects happen through nested ``UPDATE CLASS`` conjuncts, evaluated
left-to-right (§5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.datamodel.methods import MethodImplementation
from repro.datamodel.store import ObjectStore
from repro.errors import QueryError
from repro.oid import Atom, Oid, Variable
from repro.views.id_functions import IdFunctionRegistry
from repro.xsql import ast
from repro.xsql.evaluator import Evaluator
from repro.xsql.paths import Bindings

__all__ = ["QueryMethod", "install_query_method"]


@dataclass
class QueryMethod(MethodImplementation):
    """A method whose implementation is an XSQL query (§5, query (12))."""

    name: Atom
    arity: int
    set_valued: bool
    query: ast.Query
    item: ast.MethodItem
    registry: Optional[IdFunctionRegistry] = None

    def invoke(
        self, store: ObjectStore, owner: Oid, args: Tuple[Oid, ...]
    ) -> FrozenSet[Oid]:
        env: Bindings = {}
        scope = self.query.oid_scope
        if scope is None:
            raise QueryError(
                f"method {self.name} has no OID scope variable"
            )
        env[scope] = owner
        if len(args) != len(self.item.args):
            return frozenset()
        for pattern, value in zip(self.item.args, args):
            if isinstance(pattern, Oid):
                if pattern != value:
                    return frozenset()
            elif isinstance(pattern, Variable):
                bound = env.get(pattern)
                if bound is None:
                    env[pattern] = value
                elif bound != value:
                    return frozenset()
            else:
                raise QueryError(
                    f"method {self.name} has an unresolved argument "
                    f"pattern {pattern!r}"
                )
        instances = self.registry.instances if self.registry else None
        evaluator = Evaluator(store, id_function_instances=instances)
        results = set()
        for satisfied_env in evaluator.env_stream(self.query, env):
            results |= evaluator.eval_operand(self.item.value, satisfied_env)
        return frozenset(results)


def install_query_method(
    store: ObjectStore,
    statement: ast.AlterClass,
    registry: Optional[IdFunctionRegistry] = None,
) -> QueryMethod:
    """Execute ``ALTER CLASS ... ADD SIGNATURE ... SELECT ...``.

    "The following method definition alters the definition of class
    Company, and the signature of the newly defined method is added to the
    signatures that are already declared in this class."
    """
    signature = statement.signature
    store.declare_signature(
        statement.cls,
        signature.method,
        signature.result,
        args=signature.args,
        set_valued=signature.set_valued,
    )
    items = [
        item
        for item in statement.query.select
        if isinstance(item, ast.MethodItem)
    ]
    if len(items) != 1:
        raise QueryError(
            "an ALTER CLASS query must SELECT exactly one "
            "(Method @ args) = value item"
        )
    item = items[0]
    if item.method != Atom(signature.method):
        raise QueryError(
            f"SELECT defines {item.method} but the signature declares "
            f"{signature.method}"
        )
    if len(item.args) != len(signature.args):
        raise QueryError(
            f"method {signature.method} declares {len(signature.args)} "
            f"argument(s) but the SELECT item has {len(item.args)}"
        )
    if statement.query.oid_scope is None:
        raise QueryError(
            "an ALTER CLASS query needs an OID <var> clause naming the "
            "scope object"
        )
    method = QueryMethod(
        name=Atom(signature.method),
        arity=len(signature.args),
        set_valued=signature.set_valued,
        query=statement.query,
        item=item,
        registry=registry,
    )
    store.define_method(statement.cls, method)
    return method
