"""The XSQL query language: lexer, parser, AST, and evaluation (paper §3–§5).

The public entry point is :class:`repro.xsql.session.Session`, which parses
and executes XSQL statements against an
:class:`~repro.datamodel.store.ObjectStore`:

* ``SELECT ... FROM ... WHERE ...`` queries with extended path expressions,
  quantified comparisons, aggregates, and nested subqueries (§3, §5);
* object-creating queries with ``OID FUNCTION OF`` (§4.1);
* ``CREATE VIEW`` definitions (§4.2);
* ``ALTER CLASS ... ADD SIGNATURE ... SELECT`` query-defined methods and
  ``UPDATE CLASS ... SET`` update methods (§5).
"""

from repro.xsql import batches, build
from repro.xsql.ast import (
    Comparison,
    MethodExpr,
    PathExpr,
    Query,
    Step,
)
from repro.xsql.options import ExecutionOptions
from repro.xsql.parser import parse_query, parse_statement
from repro.xsql.pipeline import CompiledQuery, QueryPipeline
from repro.xsql.result import QueryResult
from repro.xsql.session import Session

__all__ = [
    "Session",
    "CompiledQuery",
    "ExecutionOptions",
    "QueryPipeline",
    "QueryResult",
    "batches",
    "build",
    "parse_query",
    "parse_statement",
    "PathExpr",
    "Step",
    "MethodExpr",
    "Comparison",
    "Query",
]
