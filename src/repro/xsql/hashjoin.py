"""Set-at-a-time join execution (compatibility surface).

The factored binding-batch machinery that used to live here — disjoint
variable batches, hash/semi-join conjunct execution, the per-conjunct
merge fallback — is now reified as the physical operators in
:mod:`repro.xsql.operators` (:class:`~repro.xsql.operators.HashJoin`,
:class:`~repro.xsql.operators.SemiJoin`, and friends), which the pipeline
lowers every ``plan="cost"`` + ``join_mode="hash"`` run into directly.

This module keeps the historical public surface:

* :func:`~repro.xsql.operators.join_strategy_of` — re-exported; the
  conjunct classification is unchanged.
* :class:`HashJoinEvaluator` — an :class:`~repro.xsql.evaluator.Evaluator`
  whose top-level binding stream runs through the factored operator
  pipeline.  Results are bit-identical to the nested-loop stream by
  construction (deduplication happens once, at the end); WHERE clauses
  containing updates and correlated re-entries (``initial``) keep the
  exact lazy tuple-at-a-time stream, as before.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.xsql import ast
from repro.xsql.evaluator import Evaluator, _dedup
from repro.xsql.operators import (
    ExecContext,
    LowerSpec,
    _cross,
    join_strategy_of,
    lower_query,
)
from repro.xsql.paths import Bindings
from repro.xsql.planner import _cond_has_updates

__all__ = ["HashJoinEvaluator", "join_strategy_of"]


class HashJoinEvaluator(Evaluator):
    """Evaluator whose top-level binding stream is factored set-at-a-time.

    Only the top-level FROM × top-level conjunct pipeline changes; nested
    conditions (OR branches, NOT, subqueries) run through the inherited
    tuple-at-a-time machinery unchanged.
    """

    def env_stream(
        self, query: ast.Query, initial: Optional[Bindings] = None
    ) -> Iterator[Bindings]:
        if initial or (
            query.where is not None and _cond_has_updates(query.where)
        ):
            # Correlated subquery re-entry or side-effecting WHERE: batch
            # execution would reorder effects, so keep the exact stream.
            return super().env_stream(query, initial)
        root = lower_query(query, LowerSpec(factored=True))
        chain = root.child
        if chain is None:
            return _dedup(_cross([]))
        ctx = ExecContext(self, self._metrics)
        chain.open(ctx)
        try:
            state = chain.batches()
        finally:
            chain.close()
        return _dedup(_cross(state))
