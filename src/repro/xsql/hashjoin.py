"""Set-at-a-time join execution for ``plan="cost"`` queries.

The tuple-at-a-time :class:`~repro.xsql.evaluator.Evaluator` streams one
binding at a time through the FROM declarations and WHERE conjuncts, so an
explicit join (paper examples (12)–(13)) pays the full cross product of
the joined extents even when the planner has found a good conjunct order.
:class:`HashJoinEvaluator` keeps the binding stream *factored* instead: a
set of independent binding batches (one per group of connected variables)
whose cross product is the logical stream.  An equality conjunct between
two path operands rooted in different factors is then a hash join — build
a table on the smaller batch, probe it with the larger — and only the
matching pairs are ever materialized.

Soundness rests on two facts checked in :func:`join_strategy_of`:

* ``compare("=", L, R, lq, rq)`` with both quantifiers existential (the
  default) holds iff ``L ∩ R ≠ ∅``, and membership under Python ``==`` /
  ``hash`` coincides with the evaluator's ``element_compare`` for every
  term kind (numeric coercion included — ``Value(20) == Value(20.0)`` and
  their hashes agree).
* Factors partition the bound variables, so merging a build env with a
  probe env never conflicts and the factored stream enumerates exactly
  the envs the nested-loop stream would (deduplication happens once, at
  the end, as in :meth:`Evaluator.env_stream`).

Everything else — non-equality operators, ``all`` quantifiers, unbound
variables, updates, aggregates over shared variables — falls back to the
inherited per-env :meth:`Evaluator.eval_cond`, so results are
bit-identical to the nested-loop executor by construction.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.oid import Oid, Variable
from repro.xsql import ast
from repro.xsql.evaluator import Evaluator, _dedup
from repro.xsql.paths import Bindings
from repro.xsql.planner import _cond_has_updates

__all__ = ["HashJoinEvaluator", "join_strategy_of"]

#: Quantifiers with existential (∩ ≠ ∅) semantics under ``compare("=")``.
_EXISTENTIAL = (None, "some")


def _operand_join_vars(
    operand: ast.Operand,
) -> Optional[Tuple[Variable, ...]]:
    """The operand's free variables, when it is a plain path operand."""
    if isinstance(operand, ast.PathOperand):
        return tuple(dict.fromkeys(ast.path_variables(operand.path)))
    return None


def join_strategy_of(cond: ast.Cond) -> str:
    """Classify a conjunct for the set-at-a-time executor.

    ``"hash"``   — equality between two path operands with existential
                   quantifiers and disjoint variable sets: a hash join.
    ``"semi"``   — same shape but one side is ground: a semi-join filter
                   (hash the variable side, intersect with the constant).
    ``"nested"`` — anything else; evaluated per env, exactly as the
                   tuple-at-a-time evaluator would.
    """
    if not isinstance(cond, ast.Comparison):
        return "nested"
    if cond.op != "=":
        return "nested"
    if cond.lq not in _EXISTENTIAL or cond.rq not in _EXISTENTIAL:
        return "nested"
    lvars = _operand_join_vars(cond.lhs)
    rvars = _operand_join_vars(cond.rhs)
    if lvars is None or rvars is None:
        return "nested"
    if set(lvars) & set(rvars):
        return "nested"  # shared variable: correlation, not a join
    if lvars and rvars:
        return "hash"
    if lvars or rvars:
        return "semi"
    return "nested"  # both ground: a constant test, no join to speed up


class _Factor:
    """One independent batch of the factored binding stream."""

    __slots__ = ("vars", "envs")

    def __init__(self, vars: Set[Variable], envs: List[Bindings]) -> None:
        self.vars = vars
        self.envs = envs


class HashJoinEvaluator(Evaluator):
    """Evaluator whose top-level binding stream is factored set-at-a-time.

    Only the top-level FROM × top-level conjunct pipeline changes; nested
    conditions (OR branches, NOT, subqueries) run through the inherited
    tuple-at-a-time machinery unchanged.
    """

    def env_stream(
        self, query: ast.Query, initial: Optional[Bindings] = None
    ) -> Iterator[Bindings]:
        if initial or (
            query.where is not None and _cond_has_updates(query.where)
        ):
            # Correlated subquery re-entry or side-effecting WHERE: batch
            # execution would reorder effects, so keep the exact stream.
            return super().env_stream(query, initial)
        return self._factored_stream(query)

    # ------------------------------------------------------------------
    # the factored stream
    # ------------------------------------------------------------------

    def _factored_stream(self, query: ast.Query) -> Iterator[Bindings]:
        tracing = self._trace is not None
        stage = 0
        factors: List[_Factor] = []
        for decl in query.from_:
            touched = {decl.var}
            if isinstance(decl.cls, Variable):
                touched.add(decl.cls)
            base = self._merge_factors(factors, touched)
            envs = list(self._bind_from(decl, iter(base.envs)))
            factors.append(_Factor(base.vars | touched, envs))
            if tracing:
                stage = self._record_stage(stage, factors)
        if query.where is not None:
            conjuncts = (
                list(query.where.items)
                if isinstance(query.where, ast.AndCond)
                else [query.where]
            )
            for cond in conjuncts:
                self._apply_cond(cond, factors)
                if tracing:
                    stage = self._record_stage(stage, factors)
        return _dedup(self._cross(factors))

    def _merge_factors(
        self, factors: List[_Factor], touched: Set[Variable]
    ) -> _Factor:
        """Cross-product (and remove) every factor overlapping *touched*."""
        merged = _Factor(set(), [{}])
        remaining: List[_Factor] = []
        for factor in factors:
            if factor.vars & touched:
                merged = _Factor(
                    merged.vars | factor.vars,
                    [
                        {**left, **right}
                        for left in merged.envs
                        for right in factor.envs
                    ],
                )
            else:
                remaining.append(factor)
        factors[:] = remaining
        return merged

    def _apply_cond(self, cond: ast.Cond, factors: List[_Factor]) -> None:
        strategy = join_strategy_of(cond)
        if strategy != "nested" and self._try_setwise(
            cond, strategy, factors
        ):
            return
        # Fallback: merge whatever the conjunct touches and evaluate it
        # per env — the inherited semantics, including variable
        # enumeration for unbound operand variables.
        cond_vars = set(ast.cond_variables(cond))
        base = self._merge_factors(factors, cond_vars)
        if self._metrics is not None:
            self._metrics.count("join.filter")
        envs = [
            out for env in base.envs for out in self.eval_cond(cond, env)
        ]
        factors.append(_Factor(base.vars | cond_vars, envs))

    def _try_setwise(
        self, cond: ast.Comparison, strategy: str, factors: List[_Factor]
    ) -> bool:
        """Run *cond* as a hash/semi join; False if preconditions fail."""
        lvars = set(_operand_join_vars(cond.lhs) or ())
        rvars = set(_operand_join_vars(cond.rhs) or ())

        def owners(needed: Set[Variable]) -> Optional[List[_Factor]]:
            """Factors covering *needed*, each with it fully bound."""
            found = [f for f in factors if f.vars & needed]
            covered = set().union(*(f.vars for f in found)) if found else set()
            if not needed <= covered:
                return None  # an operand variable no factor binds yet
            for factor in found:
                want = factor.vars & needed
                if any(
                    any(var not in env for var in want)
                    for env in factor.envs
                ):
                    return None  # declared but unbound (e.g. empty walk)
            return found

        left_owners = owners(lvars)
        right_owners = owners(rvars)
        if left_owners is None or right_owners is None:
            return False
        if set(map(id, left_owners)) & set(map(id, right_owners)):
            # One factor feeds both operands: correlated, not a join.
            return False
        if strategy == "semi":
            keyed, ground_op = (
                (lvars, cond.rhs) if lvars else (rvars, cond.lhs)
            )
            base = self._merge_factors(factors, keyed)
            ground = self.eval_operand(ground_op, {})
            envs = [
                env
                for env in base.envs
                if ground
                and not ground.isdisjoint(
                    self.eval_operand(
                        cond.lhs if keyed is lvars else cond.rhs, env
                    )
                )
            ]
            factors.append(_Factor(base.vars | keyed, envs))
            if self._metrics is not None:
                self._metrics.count("join.semi")
            return True
        left = self._merge_factors(factors, lvars)
        right = self._merge_factors(factors, rvars)
        build, build_op, probe, probe_op = (
            (left, cond.lhs, right, cond.rhs)
            if len(left.envs) <= len(right.envs)
            else (right, cond.rhs, left, cond.lhs)
        )
        table: Dict[Oid, List[int]] = {}
        for index, env in enumerate(build.envs):
            for value in self.eval_operand(build_op, env):
                table.setdefault(value, []).append(index)
        envs = []
        for probe_env in probe.envs:
            matched: Set[int] = set()
            for value in self.eval_operand(probe_op, probe_env):
                matched.update(table.get(value, ()))
            for index in sorted(matched):
                envs.append({**build.envs[index], **probe_env})
        factors.append(_Factor(left.vars | right.vars, envs))
        if self._metrics is not None:
            self._metrics.count("join.hash")
        return True

    def _record_stage(self, stage: int, factors: List[_Factor]) -> int:
        """Record the logical stream size: the product of factor sizes."""
        trace = self._trace
        assert trace is not None
        while len(trace) <= stage:
            trace.append(0)
        count = 1
        for factor in factors:
            count *= len(factor.envs)
        trace[stage] = count
        return stage + 1

    def _cross(self, factors: List[_Factor]) -> Iterator[Bindings]:
        """The logical binding stream: the factors' cross product."""

        def recurse(index: int, acc: Bindings) -> Iterator[Bindings]:
            if index == len(factors):
                yield dict(acc)
                return
            for env in factors[index].envs:
                yield from recurse(index + 1, {**acc, **env})

        return recurse(0, {})
