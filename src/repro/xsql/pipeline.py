"""The staged query pipeline: parse → normalize → analyze → plan → execute.

Before this module, every ``Session.query()`` re-parsed, re-typed, and
re-planned its text from scratch.  The pipeline reifies compilation as a
first-class :class:`CompiledQuery` — cheap to re-run, inspectable via
:meth:`CompiledQuery.explain` — and memoizes it in an LRU statement cache
so repeated-query workloads pay the front half of the pipeline once.

Stages (each timed into :class:`repro.metrics.SessionMetrics`):

1. **parse** — tokenize + recursive descent (store-independent);
2. **normalize** — variable-sort unification and §5 desugaring;
3. **analyze** — the §6.2 typing spectrum (only under ``plan="typed"``,
   or lazily for ``explain()``);
4. **plan** — conjunct reordering: the untyped greedy boundness planner
   (``plan="greedy"``), the Theorem 6.1 coherent plan (``plan="typed"``,
   falling back to greedy when the query is not strictly well-typed), or
   the cost-based optimizer (``plan="cost"`` — statistics-driven join
   order and access paths, :mod:`repro.xsql.costplan`);
5. **execute** — the planned statement is *lowered* to a physical
   operator tree (:mod:`repro.xsql.operators`) and run through the one
   executor every ``plan=``/``engine=``/``join_mode`` combination
   shares: Theorem 6.1 extent restrictions become ``RestrictedScan``
   inputs under ``plan="typed"``/``"cost"``, inverted-index probes
   narrow scans further under ``plan="cost"``, and hash-joinable
   conjuncts become ``HashJoin``/``SemiJoin`` operators under
   ``join_mode="hash"``.  The instrumented tree of the latest run is
   kept on the compiled statement for ``explain(analyze=True)``.

Cache soundness: entries are keyed on ``(source,) + options.cache_key()``
(the frozen :class:`~repro.xsql.options.ExecutionOptions` tuple) and
stamped with the owning store's :class:`~repro.datamodel.versions.Version`.
Typing analysis and conjunct order depend only on the schema, so a
compiled statement goes stale only when the *schema* component of the
version moves (DDL) — plain data updates do not recompile; the one
data-dependent artifact — the extent-restriction sets of Theorem 6.1 —
is recomputed on every execution, and cost plans re-rank when the *data*
component drifts.  Replacing the store (``Session.restore``) clears the
cache outright.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.xsql import ast, operators
from repro.xsql.options import ENGINES, PLAN_MODES, ExecutionOptions
from repro.xsql.parser import normalize_statement, parse_statement_raw
from repro.xsql.result import QueryResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datamodel.versions import Version
    from repro.typing.analysis import TypingReport
    from repro.xsql.costplan import CostPlan
    from repro.xsql.session import Session

# PLAN_MODES and ENGINES moved to repro.xsql.options (the canonical
# home); re-exported here for the REPL and existing imports.
__all__ = ["CompiledQuery", "QueryPipeline", "PLAN_MODES", "ENGINES"]


@dataclass
class CompiledQuery:
    """One statement, compiled through the pipeline and re-runnable.

    Obtained from :meth:`repro.xsql.session.Session.prepare`; re-running
    skips parse/normalize/analyze/plan entirely (they are refreshed
    transparently if DDL has moved the store's schema generation).
    """

    session: "Session"
    source: str
    #: The frozen execution options this compilation is keyed on.
    options: ExecutionOptions = field(default_factory=ExecutionOptions)
    #: The normalized statement (post sort-unification and desugaring).
    statement: ast.Statement = field(repr=False, default=None)  # type: ignore[assignment]
    #: The statement with its WHERE conjunction reordered by the planner.
    planned: ast.Statement = field(repr=False, default=None)  # type: ignore[assignment]
    #: §6.2 typing report; computed under ``plan="typed"``/``"cost"`` or
    #: lazily by explain().
    report: Optional["TypingReport"] = field(repr=False, default=None)
    #: The cost-based artifact (join order, access paths, probes);
    #: computed under ``plan="cost"``, or lazily (advisory, no index
    #: auto-enabling) by :meth:`access_paths` / :meth:`explain`.
    cost_plan: Optional["CostPlan"] = field(repr=False, default=None)
    #: Actual binding counts per plan entry from the most recent run
    #: under ``plan="cost"`` (None before the first run).
    last_trace: Optional[List[int]] = field(repr=False, default=None)
    #: Instrumented snapshot (:func:`repro.xsql.operators.tree_dict`) of
    #: the physical-operator tree from the most recent run (None before
    #: the first run and for dispatched DDL/creation statements).
    last_optree: Optional[Dict[str, object]] = field(
        repr=False, default=None
    )
    #: Store version when this compile happened; the schema component
    #: decides staleness (DDL recompiles, data writes do not).
    version: Optional["Version"] = None
    _store_token: int = field(repr=False, default=-1)

    # ------------------------------------------------------------------

    def run(self) -> QueryResult:
        """Execute against the session's *current* database state."""
        return self.session.pipeline.execute(self)

    __call__ = run

    # Convenience views over the frozen options record (the historical
    # ``compiled.plan`` / ``compiled.engine`` attributes).

    @property
    def plan(self) -> str:
        return self.options.plan

    @property
    def engine(self) -> str:
        return self.options.engine

    @property
    def join_mode(self) -> str:
        """The effective join mode: the option if set, else the session's."""
        return self.options.join_mode or self.session.join_mode

    @property
    def batch_format(self) -> str:
        return self.options.batch_format

    @property
    def workers(self) -> int:
        return self.options.workers

    @property
    def is_stale(self) -> bool:
        """Has DDL (or a store swap) outdated the compiled artifacts?"""
        store = self.session.store
        return (
            id(store) != self._store_token
            or self.version is None
            or not self.version.same_schema(store.version)
        )

    @property
    def discipline(self) -> Optional[str]:
        """The §6.2 typing discipline, when analysis has run."""
        return self.report.discipline() if self.report is not None else None

    # ------------------------------------------------------------------

    def access_paths(self) -> List[Dict[str, object]]:
        """The per-entry access paths of the (possibly advisory) cost plan.

        Under ``plan="cost"`` this is the plan the executor uses.  Under
        any other plan mode an *advisory* plan is computed on demand —
        with ``index_mode="manual"`` so inspecting a query never enables
        an index as a side effect.
        """
        plan = self.session.pipeline.ensure_cost_plan(self)
        if plan is None:
            return []
        return [entry.as_dict() for entry in plan.entries]

    def explain(
        self,
        format: str = "text",
        analyze: bool = False,
        options: Optional[ExecutionOptions] = None,
    ) -> str:
        """An account of typing, join order, access paths, and estimates.

        Passing ``options=ExecutionOptions(...)`` explains (and, with
        ``analyze=True``, runs) the same source under *those* options —
        a fresh compilation through the session's pipeline — without
        touching this compiled statement.

        ``format="text"`` renders the human-readable multi-line report:
        the parsed form, the §6.2 discipline with the witnessing
        assignment and coherent plan (when one exists), the per-variable
        Theorem 6.1 instantiation-set sizes, the cost plan's join order
        and access paths with estimated (and, after a ``plan="cost"``
        run, actual) cardinalities, and the pipeline configuration.
        ``format="json"`` returns the same facts as a JSON object for
        tooling.

        ``analyze=True`` — EXPLAIN ANALYZE — *executes* the query and
        appends the instrumented physical-operator tree: per-operator
        estimated vs actual rows, input rows, batches, path-cache hits,
        and wall time.  Only plain (relation-producing) queries can be
        analyzed; WHERE clauses containing updates do apply their side
        effects, exactly as a normal run would.
        """
        if format not in ("text", "json"):
            raise QueryError(
                f"unknown explain format {format!r}; choose text or json"
            )
        if options is not None and options != self.options:
            return self.session.prepare(
                self.source, options=options
            ).explain(format=format, analyze=analyze)
        if analyze:
            statement = self.statement
            if not isinstance(statement, (ast.Query, ast.QueryOp)) or (
                isinstance(statement, ast.Query)
                and statement.creates_objects
            ):
                raise QueryError(
                    "explain(analyze=True) executes the statement; only "
                    "plain queries are supported"
                )
            self.run()
        data = self._explain_data(analyze=analyze)
        if format == "json":
            return json.dumps(data, indent=2, sort_keys=True)
        return self._render_text(data)

    def _explain_data(self, analyze: bool = False) -> Dict[str, object]:
        self.session.pipeline.ensure_report(self)
        statement = self.statement
        data: Dict[str, object] = {
            "pipeline": {
                "plan": self.plan,
                "engine": self.engine,
                "join_mode": self.join_mode,
                "batch_format": self.batch_format,
                "workers": self.workers,
                "pointer_join": self.options.pointer_join,
            },
        }
        if not isinstance(statement, ast.Query):
            data["kind"] = "statement"
            data["statement"] = str(statement)
            # UNION chains still execute through the operator tree
            # (a SetOp root), so EXPLAIN ANALYZE can report on them.
            if analyze and self.last_optree is not None:
                data["operators"] = self.last_optree
            return data
        data["kind"] = "query"
        data["statement"] = str(statement)
        report = self.report
        assert report is not None
        data["typing"] = report.discipline()
        if report.strict_witness is not None:
            assignment, plan = report.strict_witness
            data["coherent_plan"] = str(plan)
            data["assignment"] = [
                {"occurrence": str(occ), "type": str(expr)}
                for occ, expr in assignment.entries
            ]
            from repro.typing import TypedEvaluator

            optimizer = TypedEvaluator(
                self.session.store,
                id_function_instances=self.session.registry.instances,
            )
            restrictions = optimizer.extent_restrictions(
                assignment, report.typed_query, statement
            )
            data["restrictions"] = {
                str(var): len(allowed)
                for var, allowed in sorted(
                    restrictions.items(), key=lambda kv: kv[0].name
                )
            }
        elif report.unsupported_reason:
            data["note"] = report.unsupported_reason
        cost_plan = self.session.pipeline.ensure_cost_plan(self)
        if cost_plan is not None:
            cost = cost_plan.as_dict()
            if self.plan != "cost":
                cost["advisory"] = True
            trace = self.last_trace
            if trace is not None:
                entries = cost["entries"]
                # A pointer-fused FROM entry has no pipeline stage of its
                # own (the PointerJoin binds its variable), so the trace
                # aligns with the remaining entries only.
                fused_skipped = self.join_mode == "hash"
                position = 0
                for entry in entries:
                    if (
                        fused_skipped
                        and entry.get("access_path") == "pointer-fused"
                    ):
                        continue
                    if position < len(trace):
                        entry["actual_rows"] = trace[position]
                    position += 1
            data["cost"] = cost
        if analyze and self.last_optree is not None:
            data["operators"] = self.last_optree
        return data

    @staticmethod
    def _render_text(data: Dict[str, object]) -> str:
        if data["kind"] == "statement":
            lines = [f"statement: {data['statement']}"]
            tree = data.get("operators")
            if tree:
                lines.append("physical operators:")
                lines.extend(
                    "  " + line
                    for line in operators.render_tree(tree)  # type: ignore[arg-type]
                )
            return "\n".join(lines)
        lines = [f"query: {data['statement']}"]
        lines.append(f"typing: {data['typing']}")
        if "coherent_plan" in data:
            lines.append(f"coherent plan: {data['coherent_plan']}")
            for entry in data["assignment"]:  # type: ignore[union-attr]
                lines.append(
                    f"  {entry['occurrence']} : {entry['type']}"
                )
            for var, size in data.get("restrictions", {}).items():  # type: ignore[union-attr]
                lines.append(f"  instantiations of {var}: {size} oid(s)")
        elif "note" in data:
            lines.append(f"note: {data['note']}")
        cost = data.get("cost")
        if cost:
            suffix = " (advisory)" if cost.get("advisory") else ""
            lines.append(
                f"join order & access paths{suffix}: "
                f"search={cost['search']}"
            )
            for entry in cost["entries"]:
                actual = entry.get("actual_rows")
                act = f" act={actual}" if actual is not None else ""
                strategy = entry.get("join_strategy")
                join = f" join={strategy}" if strategy else ""
                lines.append(
                    f"  {entry['label']:<44s} {entry['access_path']:<16s} "
                    f"est={entry['estimated_rows']:g}{act}{join}"
                )
            if cost["probes"]:
                lines.append(
                    "  probes: " + ", ".join(cost["probes"])
                )
            if cost["auto_enabled_indexes"]:
                lines.append(
                    "  auto-enabled indexes: "
                    + ", ".join(cost["auto_enabled_indexes"])
                )
        tree = data.get("operators")
        if tree:
            lines.append("physical operators:")
            lines.extend(
                "  " + line
                for line in operators.render_tree(tree)  # type: ignore[arg-type]
            )
        pipeline = data["pipeline"]
        lines.append(
            f"pipeline: plan={pipeline['plan']} "  # type: ignore[index]
            f"engine={pipeline['engine']} "  # type: ignore[index]
            f"join_mode={pipeline['join_mode']} "  # type: ignore[index]
            f"batch_format={pipeline['batch_format']} "  # type: ignore[index]
            f"workers={pipeline['workers']} "  # type: ignore[index]
            f"pointer_join={pipeline['pointer_join']}"  # type: ignore[index]
        )
        return "\n".join(lines)


class QueryPipeline:
    """Owns the staged compiler and the LRU statement cache of a session."""

    def __init__(self, session: "Session", cache_size: int = 128) -> None:
        self.session = session
        self.cache_size = max(0, cache_size)
        self._cache: "OrderedDict[Tuple, CompiledQuery]" = OrderedDict()

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------

    def compile(
        self,
        source: str,
        plan: Optional[str] = None,
        engine: Optional[str] = None,
        *,
        options: Optional[ExecutionOptions] = None,
        join_mode: Optional[str] = None,
        batch_format: Optional[str] = None,
        workers: Optional[int] = None,
        pointer_join: Optional[str] = None,
    ) -> CompiledQuery:
        """Compile *source*, reusing a cached compilation when sound."""
        options = ExecutionOptions.coerce(
            options,
            plan=plan,
            engine=engine,
            join_mode=join_mode,
            batch_format=batch_format,
            workers=workers,
            pointer_join=pointer_join,
        )
        metrics = self.session.metrics
        key = (source,) + options.cache_key()
        cached = self._cache.get(key)
        if cached is not None:
            if cached.is_stale:
                metrics.count("cache.invalidated")
                metrics.note_last("cache", "invalidated")
                self._build(cached)
            else:
                metrics.count("cache.hit")
                metrics.note_last("cache", "hit")
            self._cache.move_to_end(key)
            return cached
        metrics.count("cache.miss")
        metrics.note_last("cache", "miss")
        compiled = CompiledQuery(
            session=self.session, source=source, options=options
        )
        self._build(compiled)
        if self.cache_size:
            self._cache[key] = compiled
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                metrics.count("cache.evicted")
        return compiled

    def _build(self, compiled: CompiledQuery) -> None:
        """Run the compile-time stages, filling *compiled* in place."""
        metrics = self.session.metrics
        store = self.session.store
        with metrics.time("parse"):
            raw = parse_statement_raw(compiled.source)
        with metrics.time("normalize"):
            statement = normalize_statement(raw)
        compiled.statement = statement
        compiled.report = None
        compiled.cost_plan = None
        compiled.last_trace = None
        compiled.last_optree = None
        if compiled.plan in ("typed", "cost") and isinstance(
            statement, ast.Query
        ):
            with metrics.time("analyze"):
                from repro.typing.analysis import analyze

                compiled.report = analyze(statement, store)
        with metrics.time("plan"):
            compiled.planned = self._plan_statement(compiled)
        # Stamped *after* planning: the cost planner may auto-enable an
        # index (a DDL bump), which must not invalidate this very compile.
        compiled.version = store.version
        compiled._store_token = id(store)

    def _plan_statement(self, compiled: CompiledQuery) -> ast.Statement:
        statement = compiled.statement
        if (
            compiled.plan == "none"
            or not isinstance(statement, ast.Query)
            or statement.creates_objects
        ):
            return statement
        report = compiled.report
        if (
            compiled.plan == "typed"
            and report is not None
            and report.strict_witness is not None
        ):
            from repro.typing import TypedEvaluator

            _assignment, exec_plan = report.strict_witness
            assert report.typed_query is not None
            return TypedEvaluator(self.session.store).reorder(
                statement, report.typed_query, exec_plan
            )
        if compiled.plan == "cost":
            planned = self._plan_cost(compiled)
            if planned is not None:
                return planned
            self.session.metrics.count("plan.cost.fallback")
        if compiled.plan == "typed":
            # Outside the strictly well-typed fragment Theorem 6.1 does
            # not apply; fall back to the untyped boundness planner.
            self.session.metrics.count("plan.typed.fallback")
        from repro.xsql.planner import GreedyPlanner

        return GreedyPlanner().reorder(statement)

    def _plan_cost(
        self, compiled: CompiledQuery
    ) -> Optional[ast.Statement]:
        """Build the cost plan, or None when the query is out of scope."""
        from repro.xsql.costplan import CostPlanner

        statement = compiled.statement
        assert isinstance(statement, ast.Query)
        planner = CostPlanner(
            self.session.store,
            index_mode=self.session.index_mode,
            pointer_mode=compiled.options.pointer_join,
        )
        if not planner.applicable(statement):
            return None
        cost_plan = planner.plan(
            statement, range_classes=self._range_classes(compiled)
        )
        compiled.cost_plan = cost_plan
        return planner.apply(statement, cost_plan)

    def _range_classes(self, compiled: CompiledQuery) -> Optional[dict]:
        """Theorem 6.1 range classes per FROM variable, when well-typed."""
        report = compiled.report
        if report is None or report.strict_witness is None:
            return None
        assert report.typed_query is not None
        from repro.datamodel.hierarchy import OBJECT_CLASS

        store = self.session.store
        assignment, _plan = report.strict_witness
        ranges: dict = {}
        for var, range_ in assignment.all_ranges(report.typed_query).items():
            classes = [
                cls
                for cls in range_.sorted_classes()
                if cls != OBJECT_CLASS and cls in store.hierarchy
            ]
            if classes:
                ranges[var] = classes
        return ranges or None

    def ensure_report(self, compiled: CompiledQuery) -> None:
        """Lazily attach the typing report (``explain`` needs it)."""
        if compiled.is_stale:
            self.session.metrics.count("cache.invalidated")
            self._build(compiled)
        if compiled.report is None and isinstance(
            compiled.statement, ast.Query
        ):
            with self.session.metrics.time("analyze"):
                from repro.typing.analysis import analyze

                compiled.report = analyze(
                    compiled.statement, self.session.store
                )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, compiled: CompiledQuery) -> QueryResult:
        """Run a compiled statement against the current database state."""
        metrics = self.session.metrics
        # Lazy view maintenance: bring stale materialized views up to
        # date before any statement reads (or further mutates) the store.
        self.session.sync_views()
        if compiled.is_stale:
            metrics.count("cache.invalidated")
            metrics.note_last("cache", "invalidated")
            self._build(compiled)
        metrics.count("statements")
        with metrics.time("execute"):
            result = self._run(compiled)
        if isinstance(result, QueryResult):
            metrics.observe("rows", len(result))
            metrics.note_last("rows", len(result))
        return result

    def _run(self, compiled: CompiledQuery) -> QueryResult:
        """Lower the planned statement to operators and execute the tree.

        Every ``plan=``/``engine=``/``join_mode`` combination flows
        through here: the modes differ only in the *lowering inputs*
        (restrictions, probe sets, cost-plan entries, factored or merged
        batches), never in the executor.
        """
        session = self.session
        statement = compiled.statement
        if compiled.engine == "naive":
            if not isinstance(statement, ast.Query):
                raise QueryError("the naive oracle runs plain queries only")
            root = operators.NestedLoop(
                statement=statement,
                detail="engine=naive: literal §3.4 enumeration",
            )
            result = operators.execute(
                root, session.naive_evaluator(), session.metrics
            )
            compiled.last_optree = operators.tree_dict(root)
            return result
        if not isinstance(statement, (ast.Query, ast.QueryOp)) or (
            isinstance(statement, ast.Query) and statement.creates_objects
        ):
            return session._dispatch(statement)
        restrictions, spec, cost_plan = self._lowering_inputs(compiled)
        if compiled.batch_format == "columnar":
            # Columnar runs share the session-persistent walker so its
            # generation-stamped caches (path values + operator memo)
            # survive across runs of any statement.
            evaluator = session.columnar_evaluator(restrictions or None)
        else:
            from repro.xsql.evaluator import Evaluator

            evaluator = Evaluator(
                session.store,
                id_function_instances=session.registry.instances,
                max_path_var_length=session._max_path_var_length,
                restrictions=restrictions or None,
                metrics=session.metrics,
            )
        root = operators.lower_statement(compiled.planned, spec)
        result = operators.execute(
            root,
            evaluator,
            session.metrics,
            batch_format=compiled.batch_format,
            workers=compiled.workers,
        )
        compiled.last_optree = operators.tree_dict(root)
        if cost_plan is not None:
            trace = operators.stage_trace(root)
            compiled.last_trace = trace
            actual = trace[-1] if trace else len(result)
            estimated = cost_plan.estimated_result_rows
            session.metrics.observe(
                "cost.estimation_error",
                abs(estimated - actual) / max(actual, 1),
            )
        return result

    def _lowering_inputs(
        self, compiled: CompiledQuery
    ) -> Tuple[Dict, "operators.LowerSpec", Optional["CostPlan"]]:
        """The data-dependent half of the plan, rebuilt on every run.

        Conjunct order and access-path choices were fixed at compile
        time; the per-variable instantiation sets (Theorem 6.1) and
        inverted-index probe results depend on the data, so they are
        recomputed here and handed to the lowering as scan restrictions.
        """
        session = self.session
        statement = compiled.statement
        if (
            compiled.plan == "cost"
            and isinstance(statement, ast.Query)
            and compiled.cost_plan is not None
        ):
            cost_plan = self._refresh_cost_plan(compiled)
            restrictions, probe_vars = self._cost_restrictions(
                compiled, cost_plan
            )
            spec = operators.LowerSpec(
                factored=compiled.join_mode == "hash",
                restrictions=restrictions,
                probe_vars=probe_vars,
                entries=cost_plan.entries,
            )
            return restrictions, spec, cost_plan
        if (
            compiled.plan == "typed"
            and isinstance(statement, ast.Query)
            and compiled.report is not None
            and compiled.report.strict_witness is not None
        ):
            restrictions = self._typed_restrictions(compiled)
            spec = operators.LowerSpec(restrictions=restrictions)
            return restrictions, spec, None
        return {}, operators.LowerSpec(), None

    def _typed_restrictions(self, compiled: CompiledQuery) -> Dict:
        """Theorem 6.1 instantiation sets for a strictly well-typed query."""
        from repro.typing import TypedEvaluator

        session = self.session
        report = compiled.report
        assert report is not None and report.strict_witness is not None
        assignment, _plan = report.strict_witness
        assert report.typed_query is not None
        assert isinstance(compiled.statement, ast.Query)
        optimizer = TypedEvaluator(
            session.store,
            id_function_instances=session.registry.instances,
        )
        restrictions = optimizer.extent_restrictions(
            assignment, report.typed_query, compiled.statement
        )
        for allowed in restrictions.values():
            session.metrics.observe("restriction", len(allowed))
        return dict(restrictions)

    def _refresh_cost_plan(self, compiled: CompiledQuery) -> "CostPlan":
        """Re-plan cheaply when only the statistics have drifted.

        If data writes (not DDL) have moved the statistics generation,
        the compiled join order may be sub-optimal but is still sound —
        re-plan without recompiling the statement.
        """
        store = self.session.store
        metrics = self.session.metrics
        cost_plan = compiled.cost_plan
        assert cost_plan is not None
        if cost_plan.version is None or not cost_plan.version.same_data(
            store.version
        ):
            metrics.count("plan.cost.replan")
            with metrics.time("plan"):
                planned = self._plan_cost(compiled)
            if planned is not None:
                compiled.planned = planned
                compiled.version = store.version
                cost_plan = compiled.cost_plan
                assert cost_plan is not None
        return cost_plan

    def _cost_restrictions(
        self, compiled: CompiledQuery, cost_plan: "CostPlan"
    ) -> Tuple[Dict, set]:
        """Theorem 6.1 sets ∩ index-probe owners, per FROM variable."""
        session = self.session
        store = session.store
        metrics = session.metrics
        statement = compiled.statement
        assert isinstance(statement, ast.Query)
        restrictions: Dict[object, frozenset] = {}
        report = compiled.report
        if report is not None and report.strict_witness is not None:
            from repro.typing import TypedEvaluator

            assignment, _plan = report.strict_witness
            assert report.typed_query is not None
            # Each Theorem 6.1 set costs a universe scan per range class
            # (``store.extent``) and is never needed for soundness, so
            # only compute the ones that can narrow an enumeration: skip
            # variables the index probes already restrict, non-FROM
            # variables (walks bind those, and the conds re-verify every
            # binding anyway), and FROM variables whose range is exactly
            # the declared class (``_bind_from`` scans that same extent).
            ranges = self._range_classes(compiled) or {}
            probed = {probe.var for probe in cost_plan.probes}
            keep = {
                decl.var
                for decl in statement.from_
                if decl.var not in probed
                and ranges.get(decl.var) not in (None, [decl.cls])
            }
            skip = frozenset(var for var in ranges if var not in keep)
            optimizer = TypedEvaluator(
                store, id_function_instances=session.registry.instances
            )
            restrictions = dict(
                optimizer.extent_restrictions(
                    assignment, report.typed_query, statement, skip=skip
                )
            )
            for allowed in restrictions.values():
                metrics.observe("restriction", len(allowed))
        probe_vars: set = set()
        for probe in cost_plan.probes:
            owners = store.lookup_by_value(
                probe.method, probe.value, probe.args
            )
            if owners is None:
                # The index vanished (or reverse lookup became unsound)
                # since planning; fall back to scanning for this var.
                metrics.count("cost.probe_unavailable")
                continue
            metrics.count("cost.probe")
            probe_vars.add(probe.var)
            existing = restrictions.get(probe.var)
            restrictions[probe.var] = (
                owners if existing is None else existing & owners
            )
        return restrictions, probe_vars

    def ensure_cost_plan(self, compiled: CompiledQuery) -> Optional["CostPlan"]:
        """The compiled cost plan, or a lazily-built advisory one.

        Advisory plans (for ``explain``/``access_paths`` outside
        ``plan="cost"``) are computed with ``index_mode="manual"`` so
        that inspection never mutates the store.
        """
        if compiled.is_stale:
            self.session.metrics.count("cache.invalidated")
            self._build(compiled)
        if compiled.cost_plan is not None:
            return compiled.cost_plan
        statement = compiled.statement
        if not isinstance(statement, ast.Query):
            return None
        from repro.xsql.costplan import CostPlanner

        planner = CostPlanner(
            self.session.store,
            index_mode="manual",
            pointer_mode=compiled.options.pointer_join,
        )
        if not planner.applicable(statement):
            return None
        self.ensure_report(compiled)
        cost_plan = planner.plan(
            statement, range_classes=self._range_classes(compiled)
        )
        if compiled.plan == "cost":
            # _plan_cost declined (e.g. it was not applicable then); keep
            # this advisory artifact off the compiled object so staleness
            # logic stays simple.
            return cost_plan
        compiled.cost_plan = cost_plan
        return cost_plan

    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached compilation (the store was replaced)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
