"""The staged query pipeline: parse → normalize → analyze → plan → execute.

Before this module, every ``Session.query()`` re-parsed, re-typed, and
re-planned its text from scratch.  The pipeline reifies compilation as a
first-class :class:`CompiledQuery` — cheap to re-run, inspectable via
:meth:`CompiledQuery.explain` — and memoizes it in an LRU statement cache
so repeated-query workloads pay the front half of the pipeline once.

Stages (each timed into :class:`repro.metrics.SessionMetrics`):

1. **parse** — tokenize + recursive descent (store-independent);
2. **normalize** — variable-sort unification and §5 desugaring;
3. **analyze** — the §6.2 typing spectrum (only under ``plan="typed"``,
   or lazily for ``explain()``);
4. **plan** — conjunct reordering: the untyped greedy boundness planner
   (``plan="greedy"``) or the Theorem 6.1 coherent plan (``plan="typed"``,
   falling back to greedy when the query is not strictly well-typed);
5. **execute** — the reference binding-stream evaluator or the literal
   §3.4 naive engine, with Theorem 6.1 extent restrictions applied under
   ``plan="typed"``.

Cache soundness: entries are keyed on ``(source, plan, engine)`` and
stamped with the owning store's ``schema_generation``.  Typing analysis
and conjunct order depend only on the schema, so DDL invalidates cached
plans while plain data updates do not; the one data-dependent artifact —
the extent-restriction sets of Theorem 6.1 — is recomputed on every
execution.  Replacing the store (``Session.restore``) clears the cache
outright.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import QueryError
from repro.xsql import ast
from repro.xsql.parser import normalize_statement, parse_statement_raw
from repro.xsql.result import QueryResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.typing.analysis import TypingReport
    from repro.xsql.session import Session

__all__ = ["CompiledQuery", "QueryPipeline", "PLAN_MODES", "ENGINES"]

#: Plan modes: ``none`` executes WHERE in source order, ``greedy`` applies
#: the untyped boundness planner, ``typed`` applies the Theorem 6.1
#: coherent plan + extent restriction (greedy fallback outside the
#: strictly well-typed fragment).
PLAN_MODES = ("none", "greedy", "typed")

#: Engines: the production binding-stream evaluator, or the literal §3.4
#: enumerate-all-substitutions oracle.
ENGINES = ("reference", "naive")


@dataclass
class CompiledQuery:
    """One statement, compiled through the pipeline and re-runnable.

    Obtained from :meth:`repro.xsql.session.Session.prepare`; re-running
    skips parse/normalize/analyze/plan entirely (they are refreshed
    transparently if DDL has moved the store's schema generation).
    """

    session: "Session"
    source: str
    plan: str
    engine: str
    #: The normalized statement (post sort-unification and desugaring).
    statement: ast.Statement = field(repr=False, default=None)  # type: ignore[assignment]
    #: The statement with its WHERE conjunction reordered by the planner.
    planned: ast.Statement = field(repr=False, default=None)  # type: ignore[assignment]
    #: §6.2 typing report; computed under ``plan="typed"`` or by explain().
    report: Optional["TypingReport"] = field(repr=False, default=None)
    #: Schema generation of the owning store when this compile happened.
    schema_generation: int = -1
    _store_token: int = field(repr=False, default=-1)

    # ------------------------------------------------------------------

    def run(self) -> QueryResult:
        """Execute against the session's *current* database state."""
        return self.session.pipeline.execute(self)

    __call__ = run

    @property
    def is_stale(self) -> bool:
        """Has DDL (or a store swap) outdated the compiled artifacts?"""
        store = self.session.store
        return (
            id(store) != self._store_token
            or store.schema_generation != self.schema_generation
        )

    @property
    def discipline(self) -> Optional[str]:
        """The §6.2 typing discipline, when analysis has run."""
        return self.report.discipline() if self.report is not None else None

    # ------------------------------------------------------------------

    def explain(self) -> str:
        """A readable account of typing, plan, and restriction sizes.

        Reports the parsed form, the §6.2 discipline with the witnessing
        assignment and coherent plan (when one exists), the per-variable
        instantiation-set sizes the Theorem 6.1 optimizer would use, and
        the pipeline configuration this statement was compiled under.
        """
        self.session.pipeline.ensure_report(self)
        statement = self.statement
        if not isinstance(statement, ast.Query):
            return f"statement: {statement}"
        lines = [f"query: {statement}"]
        report = self.report
        assert report is not None
        lines.append(f"typing: {report.discipline()}")
        if report.strict_witness is not None:
            assignment, plan = report.strict_witness
            lines.append(f"coherent plan: {plan}")
            for occ, expr in assignment.entries:
                lines.append(f"  {occ} : {expr}")
            from repro.typing import TypedEvaluator

            optimizer = TypedEvaluator(
                self.session.store,
                id_function_instances=self.session.registry.instances,
            )
            restrictions = optimizer.extent_restrictions(
                assignment, report.typed_query, statement
            )
            for var, allowed in sorted(
                restrictions.items(), key=lambda kv: kv[0].name
            ):
                lines.append(
                    f"  instantiations of {var}: {len(allowed)} oid(s)"
                )
        elif report.unsupported_reason:
            lines.append(f"note: {report.unsupported_reason}")
        lines.append(f"pipeline: plan={self.plan} engine={self.engine}")
        return "\n".join(lines)


class QueryPipeline:
    """Owns the staged compiler and the LRU statement cache of a session."""

    def __init__(self, session: "Session", cache_size: int = 128) -> None:
        self.session = session
        self.cache_size = max(0, cache_size)
        self._cache: "OrderedDict[Tuple[str, str, str], CompiledQuery]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------

    def compile(
        self, source: str, plan: str = "none", engine: str = "reference"
    ) -> CompiledQuery:
        """Compile *source*, reusing a cached compilation when sound."""
        if plan not in PLAN_MODES:
            raise QueryError(
                f"unknown plan mode {plan!r}; choose from {PLAN_MODES}"
            )
        if engine not in ENGINES:
            raise QueryError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        metrics = self.session.metrics
        key = (source, plan, engine)
        cached = self._cache.get(key)
        if cached is not None:
            if cached.is_stale:
                metrics.count("cache.invalidated")
                metrics.note_last("cache", "invalidated")
                self._build(cached)
            else:
                metrics.count("cache.hit")
                metrics.note_last("cache", "hit")
            self._cache.move_to_end(key)
            return cached
        metrics.count("cache.miss")
        metrics.note_last("cache", "miss")
        compiled = CompiledQuery(
            session=self.session, source=source, plan=plan, engine=engine
        )
        self._build(compiled)
        if self.cache_size:
            self._cache[key] = compiled
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                metrics.count("cache.evicted")
        return compiled

    def _build(self, compiled: CompiledQuery) -> None:
        """Run the compile-time stages, filling *compiled* in place."""
        metrics = self.session.metrics
        store = self.session.store
        with metrics.time("parse"):
            raw = parse_statement_raw(compiled.source)
        with metrics.time("normalize"):
            statement = normalize_statement(raw)
        compiled.statement = statement
        compiled.report = None
        if compiled.plan == "typed" and isinstance(statement, ast.Query):
            with metrics.time("analyze"):
                from repro.typing.analysis import analyze

                compiled.report = analyze(statement, store)
        with metrics.time("plan"):
            compiled.planned = self._plan_statement(compiled)
        compiled.schema_generation = store.schema_generation
        compiled._store_token = id(store)

    def _plan_statement(self, compiled: CompiledQuery) -> ast.Statement:
        statement = compiled.statement
        if (
            compiled.plan == "none"
            or not isinstance(statement, ast.Query)
            or statement.creates_objects
        ):
            return statement
        report = compiled.report
        if (
            compiled.plan == "typed"
            and report is not None
            and report.strict_witness is not None
        ):
            from repro.typing import TypedEvaluator

            _assignment, exec_plan = report.strict_witness
            assert report.typed_query is not None
            return TypedEvaluator(self.session.store).reorder(
                statement, report.typed_query, exec_plan
            )
        if compiled.plan == "typed":
            # Outside the strictly well-typed fragment Theorem 6.1 does
            # not apply; fall back to the untyped boundness planner.
            self.session.metrics.count("plan.typed.fallback")
        from repro.xsql.planner import GreedyPlanner

        return GreedyPlanner().reorder(statement)

    def ensure_report(self, compiled: CompiledQuery) -> None:
        """Lazily attach the typing report (``explain`` needs it)."""
        if compiled.is_stale:
            self.session.metrics.count("cache.invalidated")
            self._build(compiled)
        if compiled.report is None and isinstance(
            compiled.statement, ast.Query
        ):
            with self.session.metrics.time("analyze"):
                from repro.typing.analysis import analyze

                compiled.report = analyze(
                    compiled.statement, self.session.store
                )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, compiled: CompiledQuery) -> QueryResult:
        """Run a compiled statement against the current database state."""
        metrics = self.session.metrics
        if compiled.is_stale:
            metrics.count("cache.invalidated")
            metrics.note_last("cache", "invalidated")
            self._build(compiled)
        metrics.count("statements")
        with metrics.time("execute"):
            result = self._run(compiled)
        if isinstance(result, QueryResult):
            metrics.observe("rows", len(result))
            metrics.note_last("rows", len(result))
        return result

    def _run(self, compiled: CompiledQuery) -> QueryResult:
        session = self.session
        statement = compiled.statement
        if compiled.engine == "naive":
            if not isinstance(statement, ast.Query):
                raise QueryError("the naive oracle runs plain queries only")
            return session.naive_evaluator().run(statement)
        if not isinstance(statement, (ast.Query, ast.QueryOp)) or (
            isinstance(statement, ast.Query) and statement.creates_objects
        ):
            return session._dispatch(statement)
        if (
            compiled.plan == "typed"
            and isinstance(statement, ast.Query)
            and compiled.report is not None
            and compiled.report.strict_witness is not None
        ):
            return self._run_typed(compiled)
        return session.evaluator().run(compiled.planned)

    def _run_typed(self, compiled: CompiledQuery) -> QueryResult:
        """Theorem 6.1 execution: cached plan, fresh extent restrictions.

        The coherent reorder was computed at compile time (schema-only);
        the per-variable instantiation sets depend on the data, so they
        are rebuilt here on every run and their sizes recorded.
        """
        from repro.typing import TypedEvaluator
        from repro.xsql.evaluator import Evaluator

        session = self.session
        report = compiled.report
        assert report is not None and report.strict_witness is not None
        assignment, _plan = report.strict_witness
        assert report.typed_query is not None
        assert isinstance(compiled.statement, ast.Query)
        optimizer = TypedEvaluator(
            session.store,
            id_function_instances=session.registry.instances,
        )
        restrictions = optimizer.extent_restrictions(
            assignment, report.typed_query, compiled.statement
        )
        for allowed in restrictions.values():
            session.metrics.observe("restriction", len(allowed))
        evaluator = Evaluator(
            session.store,
            id_function_instances=session.registry.instances,
            max_path_var_length=session._max_path_var_length,
            restrictions=restrictions or None,
        )
        return evaluator.run(compiled.planned)

    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached compilation (the store was replaced)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
