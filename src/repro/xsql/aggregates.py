"""Aggregate functions over path-expression values (paper §3.2).

"It also makes perfect sense to allow passing path expressions as arguments
to aggregate functions, such as sum, count, average, and use the result in
comparisons."  Aggregates consume the *value* of a path (a set of oids) and
produce a single literal object.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.errors import QueryError
from repro.oid import Oid, Value

__all__ = ["AGGREGATE_NAMES", "apply_aggregate"]

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


def _numerals(values: FrozenSet[Oid], fn: str) -> List[float]:
    numbers: List[float] = []
    for term in values:
        if isinstance(term, Value) and isinstance(term.value, (int, float)) \
                and not isinstance(term.value, bool):
            numbers.append(float(term.value))
        else:
            raise QueryError(
                f"{fn} requires numeral values; got {term}"
            )
    return numbers


def _as_value(number: float) -> Value:
    if number == int(number):
        return Value(int(number))
    return Value(number)


def apply_aggregate(fn: str, values: FrozenSet[Oid]) -> Value:
    """Apply aggregate *fn* to a value set, producing one literal object.

    ``count`` works on any set; ``sum``/``avg`` need numerals; ``min`` and
    ``max`` accept either all-numeral or all-string sets.  Aggregating an
    empty set yields ``count = 0`` and ``sum = 0``; ``avg``/``min``/``max``
    of an empty set raise, since no meaningful object exists.
    """
    if fn == "count":
        return Value(len(values))
    if fn == "sum":
        return _as_value(sum(_numerals(values, fn)))
    if not values:
        raise QueryError(f"{fn} of an empty set is undefined")
    if fn == "avg":
        numbers = _numerals(values, fn)
        return _as_value(sum(numbers) / len(numbers))
    if fn in ("min", "max"):
        try:
            numbers = _numerals(values, fn)
            chosen = min(numbers) if fn == "min" else max(numbers)
            return _as_value(chosen)
        except QueryError:
            texts = sorted(
                term.value
                for term in values
                if isinstance(term, Value) and isinstance(term.value, str)
            )
            if len(texts) != len(values):
                raise
            return Value(texts[0] if fn == "min" else texts[-1])
    raise QueryError(f"unknown aggregate {fn!r}")
